//! Runs the same MAR workload on both calibrated phones (Galaxy S22 and
//! Pixel 7) and shows how HBO adapts its allocation to each SoC — the
//! point of Table I's per-device affinities: the best delegate for a model
//! is a property of the phone, not the model.
//!
//! The two per-device activations run as a sweep on the deterministic
//! parallel runner (`--threads N` / `HBO_THREADS`); results print in
//! scenario order and a `RunnerReport` JSON line closes the output.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use hbo_core::HboConfig;
use hbo_suite::prelude::*;
use marsim::runner::{self, SweepJob};
use nnmodel::ModelZoo;

fn main() {
    let mut scenarios = vec![ScenarioSpec::sc1_cf1()];
    let mut s22 = ScenarioSpec::sc1_cf1();
    s22.device = DeviceProfile::galaxy_s22();
    s22.name = "SC1-CF1 (S22)".to_owned();
    scenarios.push(s22);

    // Both devices' activations are independent: one sweep, pinned to the
    // example's historic seed so the printed numbers stay put.
    let jobs: Vec<SweepJob> = scenarios
        .iter()
        .map(|spec| SweepJob::seeded(spec.name.clone(), spec.clone(), HboConfig::default(), 11))
        .collect();
    let sweep = runner::run_sweep("device_comparison", jobs, 11, runner::threads_from_args());

    for (spec, outcome) in scenarios.iter().zip(&sweep.outcomes) {
        let zoo = ModelZoo::for_device(&spec.device.name);
        println!("== {} on {} ==", spec.name, spec.device.name);
        println!("static affinities (isolated best delegate per model):");
        for task in &spec.tasks {
            let m = zoo.get(&task.model).expect("model in zoo");
            let (d, l) = m.best_delegate();
            println!("  {:<22} -> {d} ({l:.1} ms isolated)", m.name());
        }

        let run = &outcome.run;
        println!(
            "HBO under load:  x = {:.2}, allocation = {}",
            run.best.point.x,
            run.best
                .point
                .allocation
                .iter()
                .map(|d| d.letter())
                .collect::<String>()
        );
        println!(
            "  quality {:.3}, normalized latency {:.3}, cost {:.3}\n",
            run.best.quality, run.best.epsilon, run.best.cost
        );
    }
    println!(
        "Note how the same taskset lands on different delegates per device —\n\
         the S22's NNAPI accepts models the Pixel 7's rejects (Table I NA cells),\n\
         and contention shifts the best choice away from the static affinity."
    );
    println!("{}", sweep.report.to_json());
}
