//! Deterministic tracing: record one edge-offloaded HBO activation as a
//! Chrome trace-event file and open it in Perfetto.
//!
//! ```text
//! cargo run --release --example trace_session [PATH]
//! ```
//!
//! The activation runs a four-client MAR session with **Edge** in the
//! allocation space, with a [`simcore::trace::ChromeTraceSink`] installed
//! across every layer of the stack. The written file (default
//! `trace_session.json`) loads directly in <https://ui.perfetto.dev> or
//! `chrome://tracing` and shows, on separate tracks:
//!
//! * `soc:*` — per-slot job spans on each simulated processor, plus
//!   queue-depth counters;
//! * `edgelink:*` — per-flow uplink/downlink transfer spans (including
//!   retransmits) and server-lane compute spans;
//! * `hbo` — one span per control window with the chosen allocation,
//!   triangle ratio, measured quality, and normalized latency;
//! * `bo` — the optimizer's per-suggestion fit/score spans.
//!
//! All timestamps are *simulated* time, so the file is byte-identical on
//! every run — and recording it changes none of the activation's outputs.

use std::cell::RefCell;
use std::rc::Rc;

use hbo_suite::prelude::*;
use marsim::edge::{run_edge_hbo_traced, EdgeSpec};
use simcore::trace::{chrome_trace_json, chrome_trace_stats, ChromeTraceSink, TraceJob, Tracer};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_session.json".to_owned());

    let spec = ScenarioSpec::sc1_cf2().with_edge(EdgeSpec::wifi(4).with_uplink_mbps(25.0));
    let config = HboConfig {
        n_initial: 3,
        iterations: 6,
        ..HboConfig::default()
    };

    let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
    let run = run_edge_hbo_traced(&spec, &config, 2024, Tracer::with_sink(Rc::clone(&sink)));

    let job = TraceJob {
        name: format!("{} edge session", spec.name),
        buffer: sink.borrow().snapshot(),
    };
    let json = chrome_trace_json(&[job]);
    std::fs::write(&path, &json).expect("write trace file");

    let stats = chrome_trace_stats(&json).expect("trace must be valid Chrome JSON");
    println!(
        "best: x={:.2} alloc={} cost={:+.3}",
        run.best.point.x,
        run.best
            .point
            .allocation
            .iter()
            .map(|d| d.letter())
            .collect::<String>(),
        run.best.cost
    );
    println!(
        "\n{} events ({} spans, {} counters) written to {path}",
        stats.events, stats.spans, stats.counters
    );
    for (cat, n) in &stats.span_cats {
        println!("  {cat:<10} {n:>6} spans");
    }
    println!("\nopen in https://ui.perfetto.dev or chrome://tracing");
}
