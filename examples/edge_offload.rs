//! Edge offloading: a four-client MAR session whose allocation flips from
//! on-device to the edge server as the wireless uplink improves.
//!
//! ```text
//! cargo run --release --example edge_offload
//! ```
//!
//! Each bandwidth runs one HBO activation with **Edge** as a fourth
//! allocation target (the link + shared server are simulated by the
//! `edgelink` crate). On a starved uplink HBO keeps the AI tasks on the
//! phone and pays with triangle decimation; once the uplink is fast
//! enough, offloading frees the SoC and the scene can keep more quality.

use hbo_suite::prelude::*;
use marsim::edge::{run_edge_hbo, EdgeSpec};

fn main() {
    let base = ScenarioSpec::sc1_cf2();
    let config = HboConfig::default();
    println!(
        "scenario {}, 4 clients sharing one edge server\n",
        base.name
    );
    println!(
        "{:>12}  {:>10}  {:>6}  {:>8}  {:>8}  {:>8}",
        "uplink", "allocation", "x", "quality", "epsilon", "reward"
    );
    for mbps in [2.0, 10.0, 50.0, 200.0] {
        let spec = base
            .clone()
            .with_edge(EdgeSpec::wifi(4).with_uplink_mbps(mbps));
        let run = run_edge_hbo(&spec, &config, 2024);
        let best = &run.best;
        let alloc: String = best.point.allocation.iter().map(|d| d.letter()).collect();
        let edge_share = best
            .point
            .allocation
            .iter()
            .filter(|&&d| d == Delegate::Edge)
            .count();
        println!(
            "{:>9} Mbps  {:>10}  {:>6.2}  {:>8.3}  {:>8.3}  {:>8.3}   ({edge_share}/{} tasks on edge)",
            mbps,
            alloc,
            best.point.x,
            best.quality,
            best.epsilon,
            hbo_core::reward(best.quality, best.epsilon, config.w),
            best.point.allocation.len(),
        );
    }
    println!("\nallocation letters: C=CPU G=GPU N=NNAPI E=edge server");
}
