//! Demonstrates the Section VI extension: a lookup table memoizing
//! `(taskset, T_max, distance)` conditions → chosen configurations, so
//! that a fast-paced app can reuse a stored solution instead of paying for
//! a fresh Bayesian activation when it re-enters familiar conditions.
//!
//! ```text
//! cargo run --release --example lookup_table
//! ```

use hbo_core::{HboConfig, LookupKey, LookupTable, StoredConfig};
use hbo_suite::prelude::*;

fn key_for(app: &MarApp, spec: &ScenarioSpec) -> LookupKey {
    let taskset = LookupKey::fingerprint_taskset(app.task_names().into_iter());
    LookupKey::quantize(
        taskset,
        app.scene().total_max_triangles().max(1),
        spec.user_distance,
    )
}

fn main() {
    let spec = ScenarioSpec::sc2_cf1();
    let mut table = LookupTable::new();

    // First visit to these conditions: pay for a full activation and store
    // the solution.
    let run = marsim::experiment::run_hbo(&spec, &HboConfig::default(), 5);
    let mut app = MarApp::new(&spec);
    app.place_all_objects();
    let key = key_for(&app, &spec);
    table.store(
        key,
        StoredConfig {
            c: run.best.point.c.clone(),
            x: run.best.point.x,
            allocation: run.best.point.allocation.clone(),
            reward: -run.best.cost,
        },
    );
    println!(
        "activation ran {} iterations, stored config (x={:.2}, reward {:.3}) under {:?}",
        run.records.len(),
        run.best.point.x,
        -run.best.cost,
        key
    );

    // The user leaves and comes back to *almost* the same conditions
    // (slightly different distance): fuzzy lookup skips the activation.
    let mut spec2 = spec.clone();
    spec2.user_distance = spec.user_distance * 1.15;
    let mut app2 = MarApp::new(&spec2);
    app2.place_all_objects();
    let probe = key_for(&app2, &spec2);
    match table.find_similar(&probe) {
        Some(stored) => {
            app2.set_allocation(&stored.allocation);
            app2.set_triangle_ratio(stored.x);
            app2.run_for_secs(1.0);
            let m = app2.measure_for_secs(2.0);
            println!(
                "revisit: reused stored config without activating — reward {:.3} \
                 (stored {:.3}); saved {} exploration periods",
                m.reward(2.5),
                stored.reward,
                run.records.len()
            );
        }
        None => println!("revisit: no similar condition stored, would activate"),
    }
}
