//! Regenerates quality-model parameters offline, exactly as eAR's server
//! does in the paper's Fig. 3: decimate a mesh to a grid of ratios, render
//! full and decimated versions at several distances with the software
//! rasterizer, score each pair with GMSD, and least-squares fit the
//! `(a, b, c, d)` parameters of Eq. (1).
//!
//! The scenario catalogs in `arscene::scenarios` carry constants of the
//! same shape, produced by this pipeline on proxy meshes.
//!
//! ```text
//! cargo run --release --example fit_quality_model
//! ```

use arscene::fit::{fit_params, measure_degradation};
use arscene::mesh::Mesh;
use arscene::quality::DegradationModel;

fn main() {
    let ratios = [0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 1.0];
    let distances = [1.5, 2.5, 4.0];

    for (name, mesh) in [
        ("sphere (smooth, oversampled)", Mesh::uv_sphere(48, 48)),
        ("torus (curved, holes)", Mesh::torus(0.35, 40, 28)),
        ("rock (irregular, high detail)", Mesh::rock(7, 40, 40)),
    ] {
        println!("== {name}: {} triangles ==", mesh.triangle_count());
        let samples = measure_degradation(&mesh, &ratios, &distances, 128);
        let (params, stats) = fit_params(&samples);
        println!(
            "fitted Eq.(1): a={:+.3} b={:+.3} c={:+.3} d={:.2}  (SSE {:.4} over {} samples)",
            params.a, params.b, params.c, params.d, stats.sse, stats.n
        );
        let model = DegradationModel::new(params);
        print!("degradation at D=2.0:");
        for r in [0.2, 0.5, 0.8, 1.0] {
            print!("  R={r}: {:.3}", model.degradation(r, 2.0));
        }
        println!("\n");
    }
    println!(
        "Expected shape: error falls as R rises and as distance grows; smooth\n\
         oversampled meshes tolerate decimation far better than irregular ones —\n\
         which is exactly why HBO's sensitivity-weighted distribution pays off."
    );
}
