//! Quickstart: run one HBO activation on the paper's most challenging
//! scenario (SC1-CF1) and print what the framework decided.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbo_suite::prelude::*;

fn main() {
    // The scenario: the SC1 virtual-object set (Table II, ~1.19 M
    // triangles) with the six-task CF1 AI taskset on a Pixel 7.
    let scenario = ScenarioSpec::sc1_cf1();

    // Baseline measurement: everything at full quality on the static
    // best-isolated-latency allocation.
    let mut app = MarApp::new(&scenario);
    app.place_all_objects();
    app.run_for_secs(1.0);
    let before = app.measure_for_secs(2.0);
    println!(
        "before HBO: quality {:.3}, normalized AI latency {:.3}, reward {:.3}",
        before.quality,
        before.epsilon,
        before.reward(2.5)
    );

    // One HBO activation: 5 random initial configurations + 15 Bayesian
    // iterations (the paper's budget).
    let config = HboConfig::default();
    let run = marsim::experiment::run_hbo(&scenario, &config, 42);
    let best = &run.best;
    println!(
        "\nHBO chose: triangle ratio x = {:.2}, allocation = {:?}",
        best.point.x,
        best.point
            .allocation
            .iter()
            .zip(app.task_names())
            .map(|(d, n)| format!("{n}->{d}"))
            .collect::<Vec<_>>()
    );
    println!(
        "converged to cost {:.3} after {} of {} iterations",
        best.cost,
        run.iterations_to_converge(),
        run.records.len()
    );

    // Apply it and re-measure.
    app.apply(&best.point);
    app.run_for_secs(1.0);
    let after = app.measure_for_secs(2.0);
    println!(
        "\nafter HBO:  quality {:.3}, normalized AI latency {:.3}, reward {:.3}",
        after.quality,
        after.epsilon,
        after.reward(2.5)
    );
    println!(
        "latency improved {:.1}x at a quality cost of {:.1}%",
        (1.0 + before.epsilon) / (1.0 + after.epsilon),
        100.0 * (before.quality - after.quality)
    );
}
