//! A fast-paced AR game session — the scenario Section VI flags as HBO's
//! weak spot — and the lookup-table remedy in action.
//!
//! The player patrols between a near and a far vantage point every half
//! minute. Plain event-based HBO re-explores on every swing; with the
//! lookup table, each vantage point is explored once and then recalled.
//!
//! ```text
//! cargo run --release --example gaming_patrol
//! ```

use hbo_core::HboConfig;
use hbo_suite::prelude::*;
use marsim::timeline::{run_activation_study, PolicyKind};

fn main() {
    let spec = ScenarioSpec::sc1_cf2();
    let config = HboConfig {
        n_initial: 3,
        iterations: 5,
        ..HboConfig::default()
    };
    let placements: Vec<f64> = (0..9).map(|i| 2.0 + 2.0 * i as f64).collect();
    let mut moves = Vec::new();
    let (mut t, mut far) = (30.0, true);
    while t < 280.0 {
        moves.push((t, if far { 2.4 } else { 1.0 }));
        far = !far;
        t += 30.0;
    }

    for (label, policy) in [
        ("plain event-based HBO", PolicyKind::EventBased),
        ("lookup-assisted HBO", PolicyKind::LookupAssisted),
    ] {
        let trace = run_activation_study(&spec, &config, policy, &placements, &moves, 300.0, 3);
        let exploring = trace.samples.iter().filter(|s| s.during_activation).count();
        let steady: Vec<f64> = trace
            .samples
            .iter()
            .filter(|s| !s.during_activation)
            .map(|s| s.reward)
            .collect();
        println!(
            "{label}: {} full activations, {} lookup reuses, {:.0}% exploring, steady reward {:+.3}",
            trace.activations.len(),
            trace.reuses.len(),
            100.0 * exploring as f64 / trace.samples.len() as f64,
            steady.iter().sum::<f64>() / steady.len().max(1) as f64,
        );
    }
    println!(
        "\nThe patrol revisits the same two vantage points, so the lookup table\n\
         (keyed on taskset, T_max, and quantized distance) turns almost every\n\
         re-activation into an instant configuration recall."
    );
}
