//! The paper's motivating deployment (Section VI): an AR-enabled
//! presentation where a teacher places exhibits one at a time and students
//! watch from their seats. Objects arrive over minutes, the audience
//! barely moves — exactly the regime where HBO's event-based activation
//! shines: it re-optimizes only when a placement actually hurts
//! performance.
//!
//! ```text
//! cargo run --release --example classroom_presentation
//! ```

use hbo_core::HboConfig;
use hbo_suite::prelude::*;
use marsim::timeline::{run_activation_study, PolicyKind};

fn main() {
    // A lesson with ten exhibits: mostly light props, with one detailed
    // anatomy model late in the lesson.
    let mut scenario = ScenarioSpec::sc2_cf1();
    scenario.objects = vec![
        arscene::scenarios::CatalogEntry {
            name: "anatomy-model",
            count: 1,
            triangles: 160_000,
            params: arscene::QualityParams::new(1.09, -2.83, 1.74, 1.0),
            distance_factor: 1.0,
        },
        arscene::scenarios::CatalogEntry {
            name: "exhibit",
            count: 9,
            triangles: 9_000,
            params: arscene::QualityParams::new(1.00, -2.20, 1.20, 1.0),
            distance_factor: 1.1,
        },
    ];
    scenario.name = "classroom".to_owned();

    // Exhibits appear every ~30 s; near the end the teacher walks to the
    // back of the room.
    let placements: Vec<f64> = (0..10).map(|i| 5.0 + 30.0 * i as f64).collect();
    let config = HboConfig {
        n_initial: 3,
        iterations: 7,
        ..HboConfig::default()
    };
    let trace = run_activation_study(
        &scenario,
        &config,
        PolicyKind::EventBased,
        &placements,
        &[(330.0, 3.0)],
        380.0,
        7,
    );

    println!("lesson timeline ({} reward samples):", trace.samples.len());
    for (t, reason) in &trace.activations {
        println!("  t={t:>5.0}s  HBO activation ({reason:?})");
    }
    for t in &trace.distance_changes {
        println!("  t={t:>5.0}s  teacher walked to the back of the room");
    }
    let exploring = trace.samples.iter().filter(|s| s.during_activation).count();
    println!(
        "\n{} activations over {:.0} s; {:.0}% of the lesson spent exploring.",
        trace.activations.len(),
        380.0,
        100.0 * exploring as f64 / trace.samples.len() as f64
    );
    let steady: Vec<f64> = trace
        .samples
        .iter()
        .filter(|s| !s.during_activation)
        .map(|s| s.reward)
        .collect();
    println!(
        "steady-state reward: mean {:.3} over {} samples",
        steady.iter().sum::<f64>() / steady.len() as f64,
        steady.len()
    );
}
