//! The Bayesian-optimization loop: suggest → evaluate → observe.

use simcore::rand::RngCore;
use simcore::trace::{ArgValue, Tracer, TrackId};
use simcore::SimTime;

use crate::acquisition::Acquisition;
use crate::gp::{GaussianProcess, PruneBounds};
use crate::kernel::Kernel;
use crate::space::SampleSpace;

/// Grid cells of the tabulated kernel bounds the pruned scan uses.
const PRUNE_CELLS: usize = 256;

/// The prune table covers distances up to this many length scales; the
/// kernels are ≈ 0 beyond it, and the bracket falls back to `[0, k(r_max)]`
/// there anyway.
const PRUNE_RANGE_SCALES: f64 = 8.0;

/// Candidates per pruned-scan block: survivors of the bound checks are
/// batch-predicted block by block, and the skip threshold advances at
/// block boundaries.
const SCAN_BLOCK: usize = 64;

/// Configuration of a [`BoOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoConfig {
    /// Surrogate kernel (paper: Matérn 5/2, ℓ = 1).
    pub kernel: Kernel,
    /// Observation-noise variance of the surrogate.
    pub noise_var: f64,
    /// Acquisition function (paper: EI).
    pub acquisition: Acquisition,
    /// Random initial designs before the surrogate takes over (paper: 5).
    pub n_initial: usize,
    /// Global random candidates scored per suggestion.
    pub n_candidates: usize,
    /// Local perturbations of the incumbent scored per suggestion.
    pub n_local: usize,
    /// Width of the local perturbations.
    pub local_scale: f64,
    /// Worker threads for the acquisition-scoring pass (1 = serial). The
    /// score of a candidate is a pure function of the candidate and the
    /// fitted surrogate, and [`simcore::pool`] returns results in input
    /// order, so any thread count produces bit-identical suggestions.
    pub threads: usize,
    /// Candidate pruning for the serial scoring pass: skip the full
    /// posterior for candidates whose cheap mean lower bound
    /// ([`GaussianProcess::mu_lower_bound`]) proves they cannot beat the
    /// running best acquisition score. Suggestions are bit-identical with
    /// pruning on or off (the strictly-greater argmax would discard those
    /// candidates anyway), but the default stays `false` so every pinned
    /// figure stream runs the historical code path. Only EI supports a
    /// prune threshold, and only `threads == 1` scans serially; in any
    /// other configuration the flag is ignored.
    pub prune: bool,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            kernel: Kernel::paper_default(),
            noise_var: 2e-3,
            acquisition: Acquisition::default(),
            n_initial: 5,
            n_candidates: 1024,
            n_local: 256,
            local_scale: 0.15,
            threads: 1,
            prune: false,
        }
    }
}

impl BoConfig {
    /// The configuration a warm-started session refines a cached converged
    /// configuration with: the design already contains a near-optimal
    /// seed, so the acquisition pass needs only a local refinement cloud —
    /// 4× fewer candidates than the cold default — plus candidate pruning.
    /// Cold (pinned) paths never use this.
    pub fn warm_default() -> Self {
        BoConfig {
            n_candidates: 256,
            n_local: 64,
            prune: true,
            ..BoConfig::default()
        }
    }
}

/// Sequential Bayesian optimizer minimizing a black-box cost over a
/// constrained [`SampleSpace`]. See the crate docs for an example.
///
/// The GP surrogate is *persistent*: [`Self::observe`] streams each new
/// observation into it, and [`Self::suggest`] extends the existing
/// Cholesky factor by one row in `O(K²)` instead of rebuilding and
/// refitting the whole model in `O(K³)` per call.
#[derive(Debug, Clone)]
pub struct BoOptimizer<S> {
    space: S,
    config: BoConfig,
    observations: Vec<(Vec<f64>, f64)>,
    surrogate: GaussianProcess,
    /// Tabulated kernel bounds for the pruned scan, built lazily on the
    /// first pruned suggest (the kernel never changes over an optimizer's
    /// lifetime, so the table survives [`Self::reset`]).
    prune_bounds: Option<PruneBounds>,
    /// Candidates the pruned scan skipped since construction.
    prune_skips: u64,
    tracer: Tracer,
    trace_track: Option<TrackId>,
    trace_now: SimTime,
}

impl<S: SampleSpace> BoOptimizer<S> {
    /// Creates an optimizer with no observations.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for zero candidates.
    pub fn new(space: S, config: BoConfig) -> Self {
        assert!(
            config.n_candidates + config.n_local > 0,
            "need at least one candidate per suggestion"
        );
        BoOptimizer {
            space,
            config,
            observations: Vec::new(),
            surrogate: GaussianProcess::new(config.kernel, config.noise_var),
            prune_bounds: None,
            prune_skips: 0,
            tracer: Tracer::disabled(),
            trace_track: None,
            trace_now: SimTime::ZERO,
        }
    }

    /// Installs a tracer and registers the optimizer's `bo suggest` track.
    ///
    /// The optimizer runs in wall time, outside the simulation clock, so
    /// trace records are stamped with the simulated time last supplied via
    /// [`Self::set_trace_now`] (typically the start of the HBO window that
    /// triggered the suggestion). Tracing never touches the RNG stream:
    /// suggestions are bit-identical with tracing on or off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.trace_track = Some(tracer.register_track("bo", "bo suggest"));
        self.tracer = tracer;
    }

    /// Sets the simulated timestamp applied to subsequent trace records.
    pub fn set_trace_now(&mut self, now: SimTime) {
        self.trace_now = now;
    }

    /// The sample space.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &BoConfig {
        &self.config
    }

    /// Number of observations recorded so far.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// All `(point, cost)` observations in insertion order — the dataset
    /// `D` of the paper.
    pub fn history(&self) -> &[(Vec<f64>, f64)] {
        &self.observations
    }

    /// The best (lowest-cost) observation so far.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.observations
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(z, c)| (z.as_slice(), *c))
    }

    /// Proposes the next point to evaluate.
    ///
    /// During the first `n_initial` calls this is a random feasible design;
    /// afterwards the GP surrogate is fitted to the history and the
    /// acquisition function is maximized over a cloud of global samples
    /// plus local perturbations of the incumbent. Falls back to random
    /// sampling if the surrogate cannot be fitted.
    pub fn suggest(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        if self.observations.len() < self.config.n_initial {
            let z = self.space.sample(rng);
            self.trace_instant("random design", &z, f64::NAN);
            return z;
        }
        // Refit the persistent surrogate: a no-op if nothing was observed
        // since the last suggest, an O(K²) factor extension per new
        // observation otherwise.
        let fit_ok = self.surrogate.fit().is_ok();
        self.trace_span(
            "fit",
            &[
                ("observations", ArgValue::from(self.observations.len())),
                ("ok", ArgValue::from(u64::from(fit_ok))),
            ],
        );
        if !fit_ok {
            let z = self.space.sample(rng);
            self.trace_instant("fit fallback", &z, f64::NAN);
            return z;
        }
        let f_best = self.surrogate.best_observed().expect("non-empty history");
        let incumbent = self
            .best()
            .map(|(z, _)| z.to_vec())
            .expect("non-empty history");

        // Generate every candidate first (consuming the RNG stream exactly
        // as the interleaved loop used to), then score the whole batch.
        let total = self.config.n_candidates + self.config.n_local;
        let mut candidates = Vec::with_capacity(total);
        for i in 0..total {
            candidates.push(if i < self.config.n_candidates {
                self.space.sample(rng)
            } else {
                self.space.perturb(&incumbent, self.config.local_scale, rng)
            });
        }
        let acquisition = self.config.acquisition;
        let (best_idx, best_score) = if self.config.prune && self.config.threads <= 1 {
            self.scan_pruned(&candidates, f_best)
        } else if self.config.threads > 1 {
            // Each score is a pure function of its candidate and the
            // (immutable) fitted surrogate, and pool::map returns results
            // in input order — so the fan-out is order-independent by
            // construction and bit-identical to the serial pass.
            let surrogate = &self.surrogate;
            let scores =
                simcore::pool::map_chunked(self.config.threads, 64, &candidates, |_, z| {
                    let (mu, var) = surrogate.predict(z);
                    acquisition.score(mu, var, f_best)
                });
            argmax_strict(&scores)
        } else {
            let scores: Vec<f64> = self
                .surrogate
                .predict_batch(&candidates)
                .into_iter()
                .map(|(mu, var)| acquisition.score(mu, var, f_best))
                .collect();
            argmax_strict(&scores)
        };
        self.trace_span(
            "score",
            &[
                ("candidates", ArgValue::from(total)),
                ("best_acq", ArgValue::from(best_score)),
            ],
        );
        let chosen = candidates.swap_remove(best_idx);
        self.trace_instant("chosen", &chosen, best_score);
        chosen
    }

    /// The serial acquisition scan with candidate pruning: before paying
    /// for a candidate's full posterior (one `exp` per observation plus a
    /// triangular solve), run two escalating bound checks built from the
    /// tabulated kernel brackets:
    ///
    /// 1. a transcendental-free lower bound on the posterior mean against
    ///    the EI threshold above which no variance up to the prior can
    ///    beat the running best score, and
    /// 2. for candidates that survive, the acquisition evaluated at
    ///    `(mu lower bound, per-candidate variance upper bound)` — EI is
    ///    monotone decreasing in the mean and increasing in the variance,
    ///    so this is a per-candidate score ceiling at the cost of a single
    ///    `Φ`/`φ` pair (the per-candidate variance bound conditions on the
    ///    nearest observation and is far tighter than the prior near the
    ///    sampled region).
    ///
    /// Survivors of both checks are scored through
    /// [`GaussianProcess::predict_batch`] in blocks, keeping the batch
    /// path's buffer reuse and multi-RHS solve; skip decisions within a
    /// block use the running best from the previous block boundary, which
    /// is only ever *more* conservative. A skipped candidate provably
    /// scores no higher than the running best, the batch predictor is
    /// bit-identical to the scalar one, and the strictly-greater argmax
    /// keeps the earlier index on ties — so the chosen candidate is
    /// bit-identical to the full scan's.
    ///
    /// Returns `(best index, best score)`.
    fn scan_pruned(&mut self, candidates: &[Vec<f64>], f_best: f64) -> (usize, f64) {
        if self.prune_bounds.is_none() {
            let kernel = *self.surrogate.kernel();
            self.prune_bounds = Some(PruneBounds::new(
                &kernel,
                PRUNE_CELLS,
                PRUNE_RANGE_SCALES * kernel.length_scale(),
            ));
        }
        // Take the table out so the scan can borrow the surrogate freely.
        let bounds = self.prune_bounds.take().expect("just built");
        let acquisition = self.config.acquisition;
        let var_ub = self.surrogate.variance_upper_bound();
        let (mu, var) = self.surrogate.predict(&candidates[0]);
        let mut best_idx = 0;
        let mut best_score = acquisition.score(mu, var, f_best);
        let mut threshold = acquisition.prune_threshold(var_ub, f_best, best_score);
        let mut skips = 0u64;
        let mut chunk: Vec<&[f64]> = Vec::with_capacity(SCAN_BLOCK);
        let mut block_bounds: Vec<(f64, f64)> = Vec::with_capacity(SCAN_BLOCK);
        let mut survivor_cols: Vec<usize> = Vec::with_capacity(SCAN_BLOCK);
        let mut preds: Vec<(f64, f64)> = Vec::with_capacity(SCAN_BLOCK);
        for block_start in (1..candidates.len()).step_by(SCAN_BLOCK) {
            let block_end = (block_start + SCAN_BLOCK).min(candidates.len());
            chunk.clear();
            chunk.extend(candidates[block_start..block_end].iter().map(Vec::as_slice));
            self.surrogate
                .posterior_bounds_block(&chunk, &bounds, &mut block_bounds);
            survivor_cols.clear();
            for (off, &(mu_lb, var_ub_z)) in block_bounds.iter().enumerate() {
                if mu_lb >= threshold {
                    skips += 1;
                    continue;
                }
                // Second stage: the per-candidate score ceiling. The 1e-9
                // inflation absorbs floating-point non-monotonicity of the
                // score evaluation between the bound point and any
                // dominated (mu, var) — EI is non-negative, so inflating
                // the ceiling is always conservative.
                let ceiling = acquisition.score(mu_lb, var_ub_z.min(var_ub), f_best);
                if ceiling * (1.0 + 1e-9) < best_score {
                    skips += 1;
                    continue;
                }
                survivor_cols.push(off);
            }
            if survivor_cols.is_empty() {
                continue;
            }
            self.surrogate
                .predict_block_columns(chunk.len(), &survivor_cols, &mut preds);
            let mut improved = false;
            for (&off, &(mu, var)) in survivor_cols.iter().zip(preds.iter()) {
                let score = acquisition.score(mu, var, f_best);
                if score > best_score {
                    best_idx = block_start + off;
                    best_score = score;
                    improved = true;
                }
            }
            // A tighter incumbent tightens the threshold too (once per
            // block: the threshold inversion bisects, so re-running it on
            // every improvement would dominate the scan).
            if improved {
                threshold = acquisition.prune_threshold(var_ub, f_best, best_score);
            }
        }
        self.prune_bounds = Some(bounds);
        self.prune_skips += skips;
        (best_idx, best_score)
    }

    /// Candidates the pruned scan has skipped since construction (0 unless
    /// [`BoConfig::prune`] is active).
    pub fn prune_skips(&self) -> u64 {
        self.prune_skips
    }

    /// Emits a zero-duration span on the `bo suggest` track (no-op when the
    /// tracer is disabled).
    fn trace_span(&self, name: &str, args: &[(&'static str, ArgValue)]) {
        if let Some(track) = self.trace_track {
            if self.tracer.is_enabled() {
                self.tracer.complete(
                    self.trace_now,
                    simcore::SimDuration::from_nanos(0),
                    track,
                    "bo",
                    name,
                    args,
                );
            }
        }
    }

    /// Emits an instant on the `bo suggest` track carrying the proposed
    /// point (no-op when the tracer is disabled).
    fn trace_instant(&self, name: &str, z: &[f64], acq: f64) {
        if let Some(track) = self.trace_track {
            if self.tracer.is_enabled() {
                let point = z
                    .iter()
                    .map(|v| format!("{v:.4}"))
                    .collect::<Vec<_>>()
                    .join(",");
                self.tracer.instant(
                    self.trace_now,
                    track,
                    "bo",
                    name,
                    &[
                        ("point", ArgValue::from(point)),
                        ("acq", ArgValue::from(acq)),
                    ],
                );
            }
        }
    }

    /// Records the measured cost of a point (line 26 of Algorithm 1:
    /// `D ← D ∪ {(c, x, φ)}`).
    ///
    /// # Panics
    ///
    /// Panics if the point is infeasible (beyond a small tolerance), its
    /// dimension is wrong, or the cost is not finite.
    pub fn observe(&mut self, z: Vec<f64>, cost: f64) {
        assert!(cost.is_finite(), "non-finite cost: {cost}");
        assert!(
            self.space.contains(&z, 1e-6),
            "infeasible observation: {z:?}"
        );
        self.surrogate.add_observation(z.clone(), cost);
        self.observations.push((z, cost));
    }

    /// The persistent GP surrogate (fitted lazily by [`Self::suggest`]).
    pub fn surrogate(&self) -> &GaussianProcess {
        &self.surrogate
    }

    /// Clears the history (a fresh activation starts a new dataset `D`),
    /// including the persistent surrogate and its fitted factor.
    pub fn reset(&mut self) {
        self.observations.clear();
        self.surrogate = GaussianProcess::new(self.config.kernel, self.config.noise_var);
    }
}

/// Index and value of the maximum score, keeping the *first* of tied
/// values — the tie-breaking rule the pinned suggestion streams (and the
/// pruned scan's correctness argument) rely on.
fn argmax_strict(scores: &[f64]) -> (usize, f64) {
    let mut best_idx = 0;
    for (i, score) in scores.iter().enumerate().skip(1) {
        if *score > scores[best_idx] {
            best_idx = i;
        }
    }
    (best_idx, scores[best_idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{BoxSpace, SimplexBoxSpace};
    use simcore::rand::SeedableRng;

    fn rng(seed: u64) -> simcore::rand::StdRng {
        simcore::rand::StdRng::seed_from_u64(seed)
    }

    fn run_quadratic(seed: u64, iters: usize) -> f64 {
        let space = BoxSpace::new(vec![(0.0, 1.0), (0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        let mut r = rng(seed);
        for _ in 0..iters {
            let z = bo.suggest(&mut r);
            let cost = (z[0] - 0.7).powi(2) + (z[1] - 0.2).powi(2);
            bo.observe(z, cost);
        }
        bo.best().unwrap().1
    }

    #[test]
    fn minimizes_a_quadratic() {
        // BO over 25 evaluations should land close to the optimum.
        let best = run_quadratic(11, 25);
        assert!(best < 0.02, "best cost {best}");
    }

    #[test]
    fn beats_pure_random_search() {
        // With an equal budget, BO should usually beat random sampling on
        // a smooth function. Compare means over a few seeds.
        let mut bo_total = 0.0;
        let mut rand_total = 0.0;
        for seed in 0..5 {
            bo_total += run_quadratic(seed, 20);
            let space = BoxSpace::new(vec![(0.0, 1.0), (0.0, 1.0)]);
            let mut r = rng(seed + 100);
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let z = space.sample(&mut r);
                best = best.min((z[0] - 0.7).powi(2) + (z[1] - 0.2).powi(2));
            }
            rand_total += best;
        }
        assert!(
            bo_total < rand_total,
            "BO total {bo_total} should beat random {rand_total}"
        );
    }

    #[test]
    fn initial_phase_is_random_design() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        let mut r = rng(0);
        for i in 0..BoConfig::default().n_initial {
            let z = bo.suggest(&mut r);
            bo.observe(z, i as f64);
        }
        assert_eq!(bo.len(), 5);
        assert_eq!(bo.history().len(), 5);
    }

    #[test]
    fn works_on_the_hbo_simplex_space() {
        // Minimize a cost that prefers c ≈ (0.2, 0.3, 0.5), x ≈ 0.8.
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        let mut r = rng(42);
        let target = [0.2, 0.3, 0.5, 0.8];
        for _ in 0..30 {
            let z = bo.suggest(&mut r);
            let cost: f64 = z.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum();
            bo.observe(z, cost);
        }
        let (best, cost) = bo.best().unwrap();
        assert!(cost < 0.08, "cost {cost}, best {best:?}");
    }

    #[test]
    fn best_cost_is_monotone_in_history_prefix() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        let mut r = rng(9);
        let mut best_so_far = f64::INFINITY;
        for _ in 0..15 {
            let z = bo.suggest(&mut r);
            let cost = (z[0] - 0.5).abs();
            bo.observe(z, cost);
            let reported = bo.best().unwrap().1;
            best_so_far = best_so_far.min(cost);
            assert_eq!(reported, best_so_far);
        }
    }

    #[test]
    fn reset_clears_the_dataset() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        bo.observe(vec![0.5], 1.0);
        assert!(!bo.is_empty());
        bo.reset();
        assert!(bo.is_empty());
        assert!(bo.best().is_none());
    }

    #[test]
    fn reset_clears_the_persistent_surrogate_and_reenters_random_design() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        let mut r = rng(3);
        // Drive past the random-design phase so the surrogate gets fitted.
        for _ in 0..BoConfig::default().n_initial + 2 {
            let z = bo.suggest(&mut r);
            let cost = (z[0] - 0.4).powi(2);
            bo.observe(z, cost);
        }
        // The surrogate is fitted as of the last surrogate-backed suggest
        // (the trailing observe streams in one not-yet-fitted point).
        bo.suggest(&mut r);
        assert!(bo.surrogate().is_fitted());
        assert_eq!(bo.surrogate().len(), bo.len());
        bo.reset();
        assert!(bo.surrogate().is_empty());
        assert!(!bo.surrogate().is_fitted());
        // Back in the random-design phase: the next suggestion is a plain
        // space sample — it consumes exactly the draws sample() would.
        let mut expected_rng = rng(77);
        let mut actual_rng = rng(77);
        let expected = BoxSpace::new(vec![(0.0, 1.0)]).sample(&mut expected_rng);
        assert_eq!(bo.suggest(&mut actual_rng), expected);
    }

    /// Full BO runs on the HBO simplex with the given config; returns the
    /// suggested-point stream.
    #[cfg(not(feature = "fast-exp"))]
    fn simplex_trace(config: BoConfig, seed: u64, iters: usize) -> Vec<Vec<f64>> {
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut bo = BoOptimizer::new(space, config);
        let mut r = rng(seed);
        let mut trace = Vec::new();
        for _ in 0..iters {
            let z = bo.suggest(&mut r);
            let cost = z[1] - z[3];
            bo.observe(z.clone(), cost);
            trace.push(z);
        }
        trace
    }

    // The unpruned serial arm scores through `predict_batch`, which under
    // `fast-exp` is deliberately a few ULP off the scalar path the pruned
    // arm uses — so exact equality only holds in the default build.
    #[cfg(not(feature = "fast-exp"))]
    #[test]
    fn pruned_scan_is_bit_identical_to_the_full_scan() {
        for seed in [3, 21, 99] {
            let pruned = simplex_trace(
                BoConfig {
                    prune: true,
                    ..BoConfig::default()
                },
                seed,
                12,
            );
            let full = simplex_trace(BoConfig::default(), seed, 12);
            assert_eq!(pruned, full, "seed {seed}");
        }
    }

    #[test]
    fn pruning_actually_skips_candidates() {
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut bo = BoOptimizer::new(
            space,
            BoConfig {
                prune: true,
                ..BoConfig::default()
            },
        );
        let mut r = rng(21);
        for _ in 0..12 {
            let z = bo.suggest(&mut r);
            let cost = z[1] - z[3];
            bo.observe(z, cost);
        }
        // 7 surrogate-backed suggests × 1280 candidates: a useful fraction
        // must be pruned, or the fast path is dead weight.
        let scanned = 7 * 1280;
        assert!(
            bo.prune_skips() > scanned / 4,
            "only {} of {} candidates pruned",
            bo.prune_skips(),
            scanned
        );
    }

    #[test]
    fn warm_default_shrinks_the_candidate_cloud() {
        let warm = BoConfig::warm_default();
        let cold = BoConfig::default();
        assert!(warm.prune);
        assert_eq!(warm.n_candidates * 4, cold.n_candidates);
        assert_eq!(warm.n_local * 4, cold.n_local);
        // Everything else matches the paper configuration.
        assert_eq!(warm.kernel, cold.kernel);
        assert_eq!(warm.acquisition, cold.acquisition);
        assert_eq!(warm.n_initial, cold.n_initial);
    }

    #[cfg(not(feature = "fast-exp"))]
    #[test]
    fn pooled_scoring_matches_serial_bitwise() {
        let run = |threads: usize| {
            let space = SimplexBoxSpace::new(3, 0.2, 1.0);
            let mut bo = BoOptimizer::new(
                space,
                BoConfig {
                    threads,
                    ..BoConfig::default()
                },
            );
            let mut r = rng(21);
            let mut trace = Vec::new();
            for _ in 0..12 {
                let z = bo.suggest(&mut r);
                let cost = z[1] - z[3];
                bo.observe(z.clone(), cost);
                trace.push(z);
            }
            trace
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn tracing_does_not_change_suggestions_and_captures_spans() {
        use simcore::trace::{ChromeTraceSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let run = |traced: bool| {
            let space = BoxSpace::new(vec![(0.0, 1.0), (0.0, 1.0)]);
            let mut bo = BoOptimizer::new(space, BoConfig::default());
            let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
            if traced {
                bo.set_tracer(Tracer::with_sink(Rc::clone(&sink)));
            }
            let mut r = rng(17);
            let mut points = Vec::new();
            for i in 0..8 {
                bo.set_trace_now(SimTime::ZERO + simcore::SimDuration::from_millis_f64(i as f64));
                let z = bo.suggest(&mut r);
                let cost = (z[0] - 0.3).powi(2) + z[1];
                bo.observe(z.clone(), cost);
                points.push(z);
            }
            let snapshot = sink.borrow().snapshot();
            (points, snapshot)
        };
        let (plain, empty) = run(false);
        let (traced, buffer) = run(true);
        assert_eq!(plain, traced, "tracing must not perturb the RNG stream");
        assert!(empty.records.is_empty());
        // 5 random-design instants, then 3 surrogate suggests each emitting
        // fit span + score span + chosen instant.
        assert_eq!(buffer.records.len(), 5 + 3 * 3);
        assert!(buffer
            .records
            .iter()
            .any(|r| r.cat == "bo" && r.name == "fit"));
        assert!(buffer
            .records
            .iter()
            .any(|r| r.cat == "bo" && r.name == "chosen"));
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_observation_panics() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        bo.observe(vec![7.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_cost_panics() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut bo = BoOptimizer::new(space, BoConfig::default());
        bo.observe(vec![0.5], f64::NAN);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let space = SimplexBoxSpace::new(3, 0.2, 1.0);
            let mut bo = BoOptimizer::new(space, BoConfig::default());
            let mut r = rng(seed);
            for _ in 0..10 {
                let z = bo.suggest(&mut r);
                let cost = z[0];
                bo.observe(z, cost);
            }
            bo.best().unwrap().0.to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
