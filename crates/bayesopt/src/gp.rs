//! Gaussian-process regression (Rasmussen & Williams, Algorithm 2.1).

use crate::kernel::Kernel;
use crate::linalg::{Cholesky, NotPositiveDefinite};

/// Jitter ladder added to the Gram diagonal until Cholesky succeeds.
const JITTERS: [f64; 4] = [0.0, 1e-10, 1e-8, 1e-6];

/// Candidates per block in [`GaussianProcess::predict_batch`]: wide enough
/// to hide the forward-substitution divide latency across independent
/// candidates, small enough that the cross-covariance block stays in L1.
const PREDICT_BLOCK: usize = 8;

/// A Gaussian-process posterior over an unknown function, built from noisy
/// observations `(z_i, y_i)`.
///
/// Targets are internally *standardized* (centered on their mean and
/// scaled by their standard deviation) before fitting, so the unit signal
/// variance of the kernel matches the data regardless of the cost scale —
/// without this, one pathological configuration with a huge cost would
/// make the surrogate useless for ranking the sane ones.
///
/// # Example
///
/// ```
/// use bayesopt::{GaussianProcess, Kernel};
///
/// let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
/// for i in 0..5 {
///     let z = i as f64 / 4.0;
///     gp.add_observation(vec![z], (z - 0.5).powi(2));
/// }
/// gp.fit().unwrap();
/// let (mu, var) = gp.predict(&[0.5]);
/// assert!(mu < 0.1);                // near the minimum
/// let (_, var_far) = gp.predict(&[5.0]);
/// assert!(var_far > 10.0 * var);    // far from data = far less certain
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise_var: f64,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Packed lower-triangular pairwise Euclidean distances (diagonal
    /// included, always zero), maintained incrementally by
    /// [`Self::add_observation`]. The kernel family is stationary, so this
    /// is the only input-dependent quantity the Gram matrix needs — the
    /// jitter ladder and every `fit_length_scale` candidate reuse it
    /// instead of recomputing `O(K²)` kernel evaluations per attempt.
    dist: Vec<f64>,
    // Fitted state.
    chol: Option<Cholesky>,
    /// Number of leading observations the factor covers. When
    /// `fitted < xs.len()`, [`Self::fit`] extends the factor by the new
    /// rows in `O(K²)` each instead of refactorizing in `O(K³)`.
    fitted: usize,
    /// Index into [`JITTERS`] of the rung the current factor was built at.
    jitter_idx: usize,
    alpha: Vec<f64>,
    /// Standardized targets `(y − ȳ)/s` cached by [`Self::fit`] and reused
    /// by [`Self::log_marginal_likelihood`].
    centered: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
    // Scratch buffers reused across `predict_batch` candidates.
    k_star_buf: Vec<f64>,
    v_buf: Vec<f64>,
    /// Distance block laid down by [`Self::posterior_bounds_block`] and
    /// consumed by [`Self::predict_block_columns`].
    dist_buf: Vec<f64>,
}

/// Index of the first entry of row `i` in a packed lower triangle.
#[inline]
fn row_start(i: usize) -> usize {
    i * (i + 1) / 2
}

impl GaussianProcess {
    /// Creates an empty GP with observation-noise variance `noise_var`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var` is negative or not finite.
    pub fn new(kernel: Kernel, noise_var: f64) -> Self {
        assert!(
            noise_var.is_finite() && noise_var >= 0.0,
            "invalid noise variance: {noise_var}"
        );
        GaussianProcess {
            kernel,
            noise_var,
            xs: Vec::new(),
            ys: Vec::new(),
            dist: Vec::new(),
            chol: None,
            fitted: 0,
            jitter_idx: 0,
            alpha: Vec::new(),
            centered: Vec::new(),
            y_mean: 0.0,
            y_scale: 1.0,
            k_star_buf: Vec::new(),
            v_buf: Vec::new(),
            dist_buf: Vec::new(),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the GP has no observations.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Adds an observation; invalidates the fit until [`Self::fit`] is
    /// called again. The pairwise-distance cache is extended in `O(K·d)`,
    /// and the next [`Self::fit`] extends the existing Cholesky factor
    /// instead of refactorizing from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not finite, or `z`'s dimension differs from the
    /// existing observations.
    pub fn add_observation(&mut self, z: Vec<f64>, y: f64) {
        assert!(y.is_finite(), "non-finite target: {y}");
        if let Some(first) = self.xs.first() {
            assert_eq!(first.len(), z.len(), "dimension mismatch");
        }
        for x in &self.xs {
            self.dist.push(Kernel::distance(x, &z));
        }
        self.dist.push(0.0);
        self.xs.push(z);
        self.ys.push(y);
    }

    /// The cached distance between observations `i` and `j`.
    #[inline]
    fn dist_between(&self, i: usize, j: usize) -> f64 {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        self.dist[row_start(hi) + lo]
    }

    /// The Gram-matrix entry `(i, j)` at jitter rung `jitter_idx`.
    #[inline]
    fn gram_entry(&self, i: usize, j: usize, jitter: f64) -> f64 {
        self.kernel.eval_from_distance(self.dist_between(i, j))
            + if i == j { self.noise_var + jitter } else { 0.0 }
    }

    /// Fits the posterior: factorizes `K + σ²_n I` and precomputes
    /// `α = (K + σ²_n I)⁻¹ (y − ȳ)`, escalating diagonal jitter if the
    /// Gram matrix is numerically singular (e.g. duplicated inputs).
    ///
    /// When a previous fit covers a prefix of the observations (the BO
    /// loop adds one point per iteration), the factor is *extended* by the
    /// new rows in `O(K²)` each instead of refactorized in `O(K³)` — the
    /// result is bit-identical to a from-scratch fit, because the leading
    /// block of a Cholesky factor depends only on the leading block of the
    /// matrix, and a from-scratch fit fails the same low jitter rungs the
    /// prefix fit already failed (the failing pivot lives in the prefix).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if even the largest jitter fails.
    ///
    /// # Panics
    ///
    /// Panics if there are no observations.
    pub fn fit(&mut self) -> Result<(), NotPositiveDefinite> {
        let n = self.xs.len();
        assert!(n > 0, "cannot fit a GP with no observations");
        if self.fitted == n && self.chol.is_some() {
            return Ok(()); // nothing changed since the last fit
        }
        self.y_mean = self.ys.iter().sum::<f64>() / n as f64;
        let var = self
            .ys
            .iter()
            .map(|y| (y - self.y_mean) * (y - self.y_mean))
            .sum::<f64>()
            / n as f64;
        self.y_scale = var.sqrt().max(1e-9);
        self.centered.clear();
        self.centered
            .extend(self.ys.iter().map(|y| (y - self.y_mean) / self.y_scale));

        // Incremental path: extend the existing factor by the new rows at
        // the rung it was built at. A failed pivot means a from-scratch
        // fit at this rung would fail at the same row, so fall through to
        // the full ladder.
        if let Some(mut chol) = self.chol.take() {
            if self.fitted > 0 && self.fitted < n {
                let jitter = JITTERS[self.jitter_idx];
                let mut ok = true;
                for i in self.fitted..n {
                    let row: Vec<f64> = (0..=i).map(|j| self.gram_entry(i, j, jitter)).collect();
                    if chol.extend(&row).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.alpha = chol.solve(&self.centered);
                    self.chol = Some(chol);
                    self.fitted = n;
                    return Ok(());
                }
            }
        }

        // Full ladder: the kernel values come from the cached distances,
        // so each rung only rewrites the diagonal.
        let mut gram: Vec<f64> = self
            .dist
            .iter()
            .map(|&r| self.kernel.eval_from_distance(r))
            .collect();
        for (idx, jitter) in JITTERS.iter().enumerate() {
            let diag = self.kernel.eval_from_distance(0.0) + (self.noise_var + jitter);
            for i in 0..n {
                gram[row_start(i) + i] = diag;
            }
            if let Ok(chol) = Cholesky::new_packed(n, &gram) {
                self.alpha = chol.solve(&self.centered);
                self.chol = Some(chol);
                self.fitted = n;
                self.jitter_idx = idx;
                return Ok(());
            }
        }
        self.fitted = 0;
        Err(NotPositiveDefinite)
    }

    /// True if the model is fitted to *all* observations and ready to
    /// predict.
    pub fn is_fitted(&self) -> bool {
        self.chol.is_some() && self.fitted == self.xs.len()
    }

    /// Posterior mean and variance at `z` (Eq. 6 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn predict(&self, z: &[f64]) -> (f64, f64) {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let k_star: Vec<f64> = self.xs.iter().map(|x| self.kernel.eval(x, z)).collect();
        let mu = self.y_mean + self.y_scale * crate::linalg::dot(&k_star, &self.alpha);
        let v = chol.solve_lower(&k_star);
        // k(z, z) = σ²_φ exactly for the stationary family.
        let var = self.kernel.signal_var() - crate::linalg::dot(&v, &v);
        (mu, (var.max(0.0)) * self.y_scale * self.y_scale)
    }

    /// Posterior mean and variance at every point of `zs` — the batched
    /// form of [`Self::predict`] the acquisition-scoring pass uses.
    ///
    /// Bit-identical to calling `predict` per point — every per-candidate
    /// arithmetic operation happens in the same order — but candidates are
    /// processed in blocks of [`PREDICT_BLOCK`]: the cross-covariance block
    /// and the multi-RHS forward substitution
    /// ([`Cholesky::solve_lower_multi_into`]) interleave independent
    /// candidates, so the per-row divide chain that serializes the scalar
    /// solve pipelines across the block, and the `k_star` / solve buffers
    /// are allocated once for the whole batch instead of twice per
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn predict_batch<Z: AsRef<[f64]>>(&mut self, zs: &[Z]) -> Vec<(f64, f64)> {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let n = self.xs.len();
        let signal_var = self.kernel.signal_var();
        let mut out = Vec::with_capacity(zs.len());
        for chunk in zs.chunks(PREDICT_BLOCK) {
            let w = chunk.len();
            // Row-major n×w cross-covariance block: row i holds
            // k(x_i, z_c) for every candidate c of the chunk. Distances
            // land first and the kernel is applied in place — keeping the
            // exp-bearing kernel pass out of the distance loop lets the
            // latter vectorize.
            self.k_star_buf.clear();
            self.k_star_buf.resize(n * w, 0.0);
            for (i, x) in self.xs.iter().enumerate() {
                let row = &mut self.k_star_buf[i * w..(i + 1) * w];
                for (c, z) in chunk.iter().enumerate() {
                    row[c] = Kernel::distance(x, z.as_ref());
                }
            }
            self.kernel.eval_from_distance_batch(&mut self.k_star_buf);
            chol.solve_lower_multi_into(&self.k_star_buf, w, &mut self.v_buf);
            for c in 0..w {
                // Same accumulation order as linalg::dot (ascending i),
                // so the sums match the scalar path bit for bit.
                let mut k_dot_alpha = 0.0;
                let mut v_dot_v = 0.0;
                for i in 0..n {
                    k_dot_alpha += self.k_star_buf[i * w + c] * self.alpha[i];
                    let v = self.v_buf[i * w + c];
                    v_dot_v += v * v;
                }
                let mu = self.y_mean + self.y_scale * k_dot_alpha;
                let var = signal_var - v_dot_v;
                out.push((mu, (var.max(0.0)) * self.y_scale * self.y_scale));
            }
        }
        out
    }

    /// A conservative lower bound on the posterior *mean* at `z`, built
    /// from the tabulated kernel bounds in `bounds` — pure distance
    /// arithmetic plus one table lookup per observation, no
    /// transcendentals. Always `≤ predict(z).0`; the candidate-pruning
    /// pass uses it to discard candidates whose Expected Improvement
    /// provably cannot beat the running best without paying for the full
    /// kernel evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn mu_lower_bound(&self, z: &[f64], bounds: &PruneBounds) -> f64 {
        self.posterior_bounds(z, bounds).0
    }

    /// `(mu lower bound, variance upper bound)` at `z` in one pass over
    /// the observations — the candidate-pruning pass's cheap probe.
    ///
    /// The mean bound is [`Self::mu_lower_bound`]'s. The variance bound
    /// conditions on the single *nearest* observation (conditioning on
    /// more data only shrinks posterior variance):
    /// `var(z) ≤ σ²_φ − k(x_i, z)² / (σ²_φ + σ²_n)`, evaluated with the
    /// tabulated kernel *lower* bracket (kernel values are positive, so a
    /// smaller `k` only loosens the bound) and the jitter rung the factor
    /// was built at. Both values carry the `y_scale²` output scaling, so
    /// they bound [`Self::predict`]'s returns directly.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn posterior_bounds(&self, z: &[f64], bounds: &PruneBounds) -> (f64, f64) {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let mut acc = 0.0;
        let mut k_lo_max = 0.0f64;
        for (x, &a) in self.xs.iter().zip(&self.alpha) {
            let (k_lo, k_hi) = bounds.bracket(Kernel::distance(x, z));
            // Positive weight: the smallest kernel value minimizes the
            // term; negative weight: the largest does.
            acc += if a >= 0.0 { a * k_lo } else { a * k_hi };
            if k_lo > k_lo_max {
                k_lo_max = k_lo;
            }
        }
        let mu = self.y_mean + self.y_scale * acc;
        // Absorb the floating-point reordering between this sum and the
        // dot product in `predict` (n ≤ tens of observations, so the true
        // rounding gap is orders of magnitude below this slack).
        let mu_lb = mu - 1e-9 * (1.0 + mu.abs());
        let signal = self.kernel.signal_var();
        let denom = signal + self.noise_var + JITTERS[self.jitter_idx];
        let var_ub = (signal - k_lo_max * k_lo_max / denom).max(0.0) * self.y_scale * self.y_scale;
        (mu_lb, var_ub * (1.0 + 1e-9) + 1e-15)
    }

    /// Blocked form of [`Self::posterior_bounds`]: appends one
    /// `(mu lower bound, variance upper bound)` pair per candidate of
    /// `chunk` to `out` (cleared first), identical in value to the scalar
    /// call per point.
    ///
    /// Like [`Self::predict_batch`], the n×w distance block lands first in
    /// a reused buffer — the distance pass (including its `sqrt`) then
    /// vectorizes across the candidates of the block instead of crawling
    /// the observation `Vec`s one candidate at a time — and the bracket
    /// lookups run as a second pass over the block.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn posterior_bounds_block(
        &mut self,
        chunk: &[&[f64]],
        bounds: &PruneBounds,
        out: &mut Vec<(f64, f64)>,
    ) {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let n = self.xs.len();
        let w = chunk.len();
        out.clear();
        self.dist_buf.clear();
        self.dist_buf.resize(n * w, 0.0);
        for (i, x) in self.xs.iter().enumerate() {
            let row = &mut self.dist_buf[i * w..(i + 1) * w];
            for (c, z) in chunk.iter().enumerate() {
                row[c] = Kernel::distance(x, z);
            }
        }
        let signal = self.kernel.signal_var();
        let denom = signal + self.noise_var + JITTERS[self.jitter_idx];
        for c in 0..w {
            let mut acc = 0.0;
            let mut k_lo_max = 0.0f64;
            for i in 0..n {
                let (k_lo, k_hi) = bounds.bracket(self.dist_buf[i * w + c]);
                let a = self.alpha[i];
                acc += if a >= 0.0 { a * k_lo } else { a * k_hi };
                if k_lo > k_lo_max {
                    k_lo_max = k_lo;
                }
            }
            let mu = self.y_mean + self.y_scale * acc;
            let mu_lb = mu - 1e-9 * (1.0 + mu.abs());
            let var_ub =
                (signal - k_lo_max * k_lo_max / denom).max(0.0) * self.y_scale * self.y_scale;
            out.push((mu_lb, var_ub * (1.0 + 1e-9) + 1e-15));
        }
    }

    /// Posterior mean and variance for the selected columns `cols` of the
    /// distance block laid down by the *last* [`Self::posterior_bounds_block`]
    /// call, which must have covered the same `w` candidates.
    ///
    /// Bit-identical to [`Self::predict`] on the corresponding points —
    /// the kernel and solve see exactly the distances the bounds pass
    /// computed, in the same per-candidate order — but the block's
    /// distances are reused instead of recomputed, so a pruned-scan
    /// survivor pays the distance pass once, not twice.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted, or (debug builds) if the distance
    /// block does not match `w` or a column index is out of range.
    pub fn predict_block_columns(&mut self, w: usize, cols: &[usize], out: &mut Vec<(f64, f64)>) {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let n = self.xs.len();
        debug_assert_eq!(self.dist_buf.len(), n * w, "stale distance block");
        let s = cols.len();
        out.clear();
        if s == 0 {
            return;
        }
        self.k_star_buf.clear();
        self.k_star_buf.resize(n * s, 0.0);
        for i in 0..n {
            let row = &self.dist_buf[i * w..(i + 1) * w];
            let dst = &mut self.k_star_buf[i * s..(i + 1) * s];
            for (j, &c) in cols.iter().enumerate() {
                dst[j] = row[c];
            }
        }
        self.kernel.eval_from_distance_batch(&mut self.k_star_buf);
        chol.solve_lower_multi_into(&self.k_star_buf, s, &mut self.v_buf);
        let signal_var = self.kernel.signal_var();
        for c in 0..s {
            // Same accumulation order as linalg::dot (ascending i), so the
            // sums match the scalar path bit for bit.
            let mut k_dot_alpha = 0.0;
            let mut v_dot_v = 0.0;
            for i in 0..n {
                k_dot_alpha += self.k_star_buf[i * s + c] * self.alpha[i];
                let v = self.v_buf[i * s + c];
                v_dot_v += v * v;
            }
            let mu = self.y_mean + self.y_scale * k_dot_alpha;
            let var = signal_var - v_dot_v;
            out.push((mu, (var.max(0.0)) * self.y_scale * self.y_scale));
        }
    }

    /// A uniform upper bound on the posterior *variance* anywhere: the
    /// prior variance `σ²_φ · s²` (conditioning on data only shrinks it).
    pub fn variance_upper_bound(&self) -> f64 {
        self.kernel.signal_var() * self.y_scale * self.y_scale
    }

    /// The observed inputs.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// The observed targets.
    pub fn targets(&self) -> &[f64] {
        &self.ys
    }

    /// The smallest observed target (the incumbent for minimization).
    pub fn best_observed(&self) -> Option<f64> {
        self.ys.iter().copied().min_by(f64::total_cmp)
    }

    /// The log marginal likelihood of the (standardized) targets under the
    /// fitted model — Rasmussen & Williams Eq. (2.30):
    /// `−½ yᵀα − Σ log L_ii − (n/2) log 2π`. Used to compare kernel
    /// hyperparameters on the same data.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn log_marginal_likelihood(&self) -> f64 {
        assert!(self.is_fitted(), "GP not fitted: call fit()");
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let n = self.ys.len() as f64;
        // `centered` is cached by fit(), which is the only place y_mean /
        // y_scale are written — re-standardizing here would silently rely
        // on them staying in sync with the factor.
        let data_fit = -0.5 * crate::linalg::dot(&self.centered, &self.alpha);
        let complexity = -0.5 * chol.log_det();
        data_fit + complexity - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Refits the GP at each candidate length scale (holding the kernel
    /// family and signal variance fixed) and keeps the one maximizing the
    /// log marginal likelihood — the standard type-II MLE hyperparameter
    /// selection, on a grid for robustness.
    ///
    /// Returns the chosen length scale.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if no candidate produces a valid
    /// factorization.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the GP has no observations.
    pub fn fit_length_scale(&mut self, candidates: &[f64]) -> Result<f64, NotPositiveDefinite> {
        assert!(!candidates.is_empty(), "need candidate length scales");
        let mut best: Option<(f64, f64)> = None; // (lml, scale)
        for &scale in candidates {
            self.set_kernel(self.kernel.with_length_scale(scale));
            if self.fit().is_err() {
                continue;
            }
            let lml = self.log_marginal_likelihood();
            if best.is_none_or(|(b, _)| lml > b) {
                best = Some((lml, scale));
            }
        }
        let (_, scale) = best.ok_or(NotPositiveDefinite)?;
        self.set_kernel(self.kernel.with_length_scale(scale));
        self.fit()?;
        Ok(scale)
    }

    /// Swaps the kernel and invalidates the fitted factor — the cached
    /// pairwise distances stay valid (they are hyperparameter-free), but
    /// the Gram matrix and everything derived from it do not.
    fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
        self.chol = None;
        self.fitted = 0;
    }
}

/// Tabulated monotone bounds on a stationary kernel, used by the
/// candidate-pruning pass to bracket `k(r)` with one array lookup instead
/// of an `exp`.
///
/// Every kernel in this family is non-increasing in the distance `r`
/// (property-tested in [`crate::kernel`]), so on a grid with step `h`,
/// `k((j+1)h) ≤ k(r) ≤ k(jh)` for `r ∈ [jh, (j+1)h)`. Beyond `r_max` the
/// lower bound is 0 and the upper bound is `k(r_max)`. A hair of slack
/// (`1e-12`) is added on both sides so the bracket survives the kernels'
/// own floating-point monotonicity fuzz.
#[derive(Debug, Clone)]
pub struct PruneBounds {
    /// `table[j] = k(j · step)` for `j = 0..=cells`.
    table: Vec<f64>,
    inv_step: f64,
    cells: usize,
}

/// Monotonicity slack mirroring the kernel property tests.
const BRACKET_SLACK: f64 = 1e-12;

impl PruneBounds {
    /// Tabulates `kernel` on `cells + 1` grid points over `[0, r_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero or `r_max` is not strictly positive.
    pub fn new(kernel: &Kernel, cells: usize, r_max: f64) -> Self {
        assert!(cells >= 1, "need at least one cell");
        assert!(r_max > 0.0 && r_max.is_finite(), "invalid r_max: {r_max}");
        let step = r_max / cells as f64;
        let table = (0..=cells)
            .map(|j| kernel.eval_from_distance(step * j as f64))
            .collect();
        PruneBounds {
            table,
            inv_step: cells as f64 / r_max,
            cells,
        }
    }

    /// `(lower, upper)` bounds on `k(r)`.
    #[inline]
    pub fn bracket(&self, r: f64) -> (f64, f64) {
        let j = ((r * self.inv_step) as usize).min(self.cells);
        let hi = self.table[j] + BRACKET_SLACK;
        let lo = if j < self.cells {
            (self.table[j + 1] - BRACKET_SLACK).max(0.0)
        } else {
            0.0
        };
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted_on(f: impl Fn(f64) -> f64, points: &[f64]) -> GaussianProcess {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-8);
        for &z in points {
            gp.add_observation(vec![z], f(z));
        }
        gp.fit().unwrap();
        gp
    }

    #[test]
    fn interpolates_training_points() {
        let gp = fitted_on(|z| z.sin(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        for &z in &[0.0, 0.5, 1.0, 1.5, 2.0] {
            let (mu, var) = gp.predict(&[z]);
            assert!((mu - z.sin()).abs() < 1e-3, "mu({z}) = {mu}");
            assert!(var < 1e-3, "var({z}) = {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fitted_on(|z| z, &[0.0, 0.2, 0.4]);
        let (_, near) = gp.predict(&[0.2]);
        let (_, far) = gp.predict(&[4.0]);
        assert!(far > near * 100.0, "near={near}, far={far}");
        // Far from data, the mean reverts towards the prior (ȳ).
        let (mu_far, _) = gp.predict(&[100.0]);
        assert!((mu_far - 0.2).abs() < 1e-6);
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 0.0);
        gp.add_observation(vec![1.0, 2.0], 3.0);
        gp.add_observation(vec![1.0, 2.0], 3.1);
        assert!(gp.fit().is_ok());
        let (mu, _) = gp.predict(&[1.0, 2.0]);
        assert!((mu - 3.05).abs() < 0.1);
    }

    #[test]
    fn best_observed_tracks_minimum() {
        let gp = fitted_on(|z| (z - 1.0).powi(2), &[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(gp.best_observed(), Some(0.0));
        assert_eq!(gp.len(), 4);
        assert!(!gp.is_empty());
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.predict(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_panic() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.add_observation(vec![0.0, 1.0], 0.0);
    }

    #[test]
    fn lml_prefers_the_matching_length_scale() {
        // Data drawn from a smooth slow function: a longer length scale
        // should win over a tiny one.
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..12 {
            let z = i as f64 * 0.2;
            gp.add_observation(vec![z], (0.5 * z).sin());
        }
        let chosen = gp.fit_length_scale(&[0.05, 0.3, 1.0, 3.0]).unwrap();
        assert!(chosen >= 1.0, "chosen = {chosen}");
        assert!(gp.is_fitted());
    }

    #[test]
    fn lml_is_finite_and_comparable() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..6 {
            gp.add_observation(vec![i as f64], (i as f64).cos());
        }
        gp.fit().unwrap();
        let a = gp.log_marginal_likelihood();
        assert!(a.is_finite());
    }

    #[test]
    fn adding_observation_invalidates_fit() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.fit().unwrap();
        assert!(gp.is_fitted());
        gp.add_observation(vec![1.0], 1.0);
        assert!(!gp.is_fitted());
    }

    /// Relative agreement check with an absolute floor for near-zero
    /// values (posterior variance at training points is ~0).
    fn rel_close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn incremental_extend_agrees_with_from_scratch_refit() {
        use simcore::check::{self, f64s, vec as cvec};
        use simcore::prop_assert;
        // Random observation streams in 3-D: fit after an initial prefix,
        // then stream the rest in one at a time, refitting (= extending)
        // after each. Every posterior must agree with a from-scratch fit
        // to ≤1e-8 relative on both mean and variance. Points are drawn
        // from a coarse lattice so duplicates are common — which drives
        // the fit through the jitter ladder.
        check::check(
            "incremental_extend_agrees_with_from_scratch_refit",
            (
                cvec(cvec(f64s(-4.0..4.0), 3..=3), 6..14),
                cvec(f64s(-2.0..2.0), 3..=3),
            ),
            |(points, query)| {
                let lattice: Vec<Vec<f64>> = points
                    .iter()
                    .map(|p| p.iter().map(|v| (v * 2.0).round() / 2.0).collect())
                    .collect();
                let mut inc = GaussianProcess::new(Kernel::paper_default(), 0.0);
                for (i, p) in lattice.iter().take(4).enumerate() {
                    inc.add_observation(p.clone(), (i as f64 * 0.7).sin());
                }
                inc.fit().unwrap();
                for (i, p) in lattice.iter().enumerate().skip(4) {
                    inc.add_observation(p.clone(), (i as f64 * 0.7).sin());
                    inc.fit().unwrap(); // extends the factor incrementally
                    let mut scratch = GaussianProcess::new(Kernel::paper_default(), 0.0);
                    for (j, q) in lattice.iter().take(i + 1).enumerate() {
                        scratch.add_observation(q.clone(), (j as f64 * 0.7).sin());
                    }
                    scratch.fit().unwrap();
                    let (mu_i, var_i) = inc.predict(query);
                    let (mu_s, var_s) = scratch.predict(query);
                    prop_assert!(
                        rel_close(mu_i, mu_s, 1e-8),
                        "mean diverged at n={}: {mu_i} vs {mu_s}",
                        i + 1
                    );
                    prop_assert!(
                        rel_close(var_i, var_s, 1e-8),
                        "variance diverged at n={}: {var_i} vs {var_s}",
                        i + 1
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn incremental_extend_through_the_jitter_ladder_is_bit_identical() {
        // Duplicated inputs with zero noise force the jitter ladder; the
        // extended factor must still match a from-scratch refit exactly.
        let pts = [
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
        ];
        let mut inc = GaussianProcess::new(Kernel::paper_default(), 0.0);
        for (i, p) in pts.iter().take(3).enumerate() {
            inc.add_observation(p.clone(), i as f64);
        }
        inc.fit().unwrap();
        for (i, p) in pts.iter().enumerate().skip(3) {
            inc.add_observation(p.clone(), i as f64);
            inc.fit().unwrap();
        }
        let mut scratch = GaussianProcess::new(Kernel::paper_default(), 0.0);
        for (i, p) in pts.iter().enumerate() {
            scratch.add_observation(p.clone(), i as f64);
        }
        scratch.fit().unwrap();
        for q in [[0.3, 0.3], [0.8, 0.1], [0.5, 0.5]] {
            let (mu_i, var_i) = inc.predict(&q);
            let (mu_s, var_s) = scratch.predict(&q);
            assert_eq!(mu_i.to_bits(), mu_s.to_bits(), "mean at {q:?}");
            assert_eq!(var_i.to_bits(), var_s.to_bits(), "variance at {q:?}");
        }
    }

    // Under `fast-exp`, `predict_batch` intentionally diverges from the
    // scalar path by a couple of ULP — the tolerance test below covers
    // that configuration instead.
    #[cfg(not(feature = "fast-exp"))]
    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..15 {
            let z = i as f64 * 0.3;
            gp.add_observation(vec![z, (z * 2.0).cos()], z.sin());
        }
        gp.fit().unwrap();
        let queries: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![i as f64 * 0.07, (i as f64 * 0.11).sin()])
            .collect();
        let batch = gp.predict_batch(&queries);
        for (q, &(mu_b, var_b)) in queries.iter().zip(&batch) {
            let (mu, var) = gp.predict(q);
            assert_eq!(mu.to_bits(), mu_b.to_bits());
            assert_eq!(var.to_bits(), var_b.to_bits());
        }
    }

    #[cfg(feature = "fast-exp")]
    #[test]
    fn predict_batch_tracks_predict_within_tolerance_under_fast_exp() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..15 {
            let z = i as f64 * 0.3;
            gp.add_observation(vec![z, (z * 2.0).cos()], z.sin());
        }
        gp.fit().unwrap();
        let queries: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![i as f64 * 0.07, (i as f64 * 0.11).sin()])
            .collect();
        let batch = gp.predict_batch(&queries);
        for (q, &(mu_b, var_b)) in queries.iter().zip(&batch) {
            let (mu, var) = gp.predict(q);
            assert!(rel_close(mu, mu_b, 1e-10), "mean {mu} vs {mu_b}");
            assert!(rel_close(var, var_b, 1e-10), "variance {var} vs {var_b}");
        }
    }

    #[test]
    fn prune_bounds_bracket_the_kernel() {
        use simcore::check::{self, f64s};
        use simcore::prop_assert;
        let kernels = [
            Kernel::paper_default(),
            Kernel::Matern12 {
                length_scale: 0.7,
                signal_var: 1.3,
            },
            Kernel::Rbf {
                length_scale: 2.0,
                signal_var: 0.5,
            },
        ];
        check::check("prune_bounds_bracket_the_kernel", f64s(0.0..12.0), |&r| {
            for k in &kernels {
                let bounds = PruneBounds::new(k, 256, 8.0 * k.length_scale());
                let (lo, hi) = bounds.bracket(r);
                let exact = k.eval_from_distance(r);
                prop_assert!(
                    lo <= exact && exact <= hi,
                    "{k:?} at r = {r}: [{lo}, {hi}] misses {exact}"
                );
            }
            Ok(())
        });
    }

    #[test]
    fn mu_lower_bound_never_exceeds_the_posterior_mean() {
        use simcore::check::{self, f64s, vec as cvec};
        use simcore::prop_assert;
        check::check(
            "mu_lower_bound_never_exceeds_the_posterior_mean",
            (
                cvec(cvec(f64s(0.0..1.0), 3..=3), 5..12),
                cvec(f64s(0.0..1.0), 3..=3),
            ),
            |(points, query)| {
                let mut gp = GaussianProcess::new(Kernel::paper_default(), 2e-3);
                for (i, p) in points.iter().enumerate() {
                    gp.add_observation(p.clone(), (i as f64 * 0.9).sin());
                }
                gp.fit().unwrap();
                let bounds = PruneBounds::new(gp.kernel(), 256, 8.0);
                let (mu, var) = gp.predict(query);
                prop_assert!(
                    gp.mu_lower_bound(query, &bounds) <= mu,
                    "bound above the mean at {query:?}"
                );
                prop_assert!(var <= gp.variance_upper_bound() + 1e-12);
                Ok(())
            },
        );
    }

    #[test]
    fn posterior_bounds_dominate_the_posterior_and_blocked_form_matches() {
        use simcore::check::{self, f64s, vec as cvec};
        use simcore::prop_assert;
        check::check(
            "posterior_bounds_dominate_the_posterior_and_blocked_form_matches",
            (
                cvec(cvec(f64s(0.0..1.0), 3..=3), 5..12),
                cvec(cvec(f64s(0.0..1.0), 3..=3), 1..9),
            ),
            |(points, queries)| {
                let mut gp = GaussianProcess::new(Kernel::paper_default(), 2e-3);
                for (i, p) in points.iter().enumerate() {
                    gp.add_observation(p.clone(), (i as f64 * 0.9).sin());
                }
                gp.fit().unwrap();
                let bounds = PruneBounds::new(gp.kernel(), 256, 8.0);
                let chunk: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
                let mut blocked = Vec::new();
                gp.posterior_bounds_block(&chunk, &bounds, &mut blocked);
                prop_assert!(blocked.len() == queries.len());
                for (q, &(mu_lb_b, var_ub_b)) in queries.iter().zip(&blocked) {
                    let (mu_lb, var_ub) = gp.posterior_bounds(q, &bounds);
                    prop_assert!(
                        mu_lb == mu_lb_b && var_ub == var_ub_b,
                        "blocked bounds diverge from scalar at {q:?}"
                    );
                    let (mu, var) = gp.predict(q);
                    prop_assert!(mu_lb <= mu, "mean bound above the mean at {q:?}");
                    prop_assert!(
                        var <= var_ub,
                        "variance {var} above its bound {var_ub} at {q:?}"
                    );
                }
                // Selecting every other column out of the block must
                // reproduce the scalar predictions — bit for bit on the
                // exact-exp path, within tolerance under `fast-exp` (the
                // column path evaluates the kernel through the batched
                // polynomial like `predict_batch`, the scalar through
                // libm's exp).
                let cols: Vec<usize> = (0..queries.len()).step_by(2).collect();
                let mut preds = Vec::new();
                gp.predict_block_columns(queries.len(), &cols, &mut preds);
                for (&c, &(mu_c, var_c)) in cols.iter().zip(&preds) {
                    let (mu, var) = gp.predict(&queries[c]);
                    #[cfg(not(feature = "fast-exp"))]
                    prop_assert!(
                        mu == mu_c && var == var_c,
                        "column predict diverges from scalar at column {c}"
                    );
                    #[cfg(feature = "fast-exp")]
                    prop_assert!(
                        rel_close(mu, mu_c, 1e-9) && rel_close(var, var_c, 1e-9),
                        "column predict drifts from scalar at column {c}: \
                         ({mu}, {var}) vs ({mu_c}, {var_c})"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn fit_length_scale_still_works_after_incremental_fits() {
        // Interleave extends with a hyperparameter search: set_kernel must
        // invalidate the factor so stale kernels never leak into it.
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..8 {
            gp.add_observation(vec![i as f64 * 0.25], (0.4 * i as f64).sin());
        }
        gp.fit().unwrap();
        gp.add_observation(vec![2.125], 0.6);
        gp.fit().unwrap(); // incremental
        let chosen = gp.fit_length_scale(&[0.1, 1.0, 4.0]).unwrap();
        assert!(gp.is_fitted());
        assert_eq!(gp.kernel().length_scale(), chosen);
        // And extends keep working after the kernel swap.
        gp.add_observation(vec![2.375], 0.7);
        gp.fit().unwrap();
        assert!(gp.is_fitted());
        assert!(gp.predict(&[1.0]).1.is_finite());
    }
}
