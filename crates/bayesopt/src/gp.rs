//! Gaussian-process regression (Rasmussen & Williams, Algorithm 2.1).

use crate::kernel::Kernel;
use crate::linalg::{Cholesky, Matrix, NotPositiveDefinite};

/// Jitter ladder added to the Gram diagonal until Cholesky succeeds.
const JITTERS: [f64; 4] = [0.0, 1e-10, 1e-8, 1e-6];

/// A Gaussian-process posterior over an unknown function, built from noisy
/// observations `(z_i, y_i)`.
///
/// Targets are internally *standardized* (centered on their mean and
/// scaled by their standard deviation) before fitting, so the unit signal
/// variance of the kernel matches the data regardless of the cost scale —
/// without this, one pathological configuration with a huge cost would
/// make the surrogate useless for ranking the sane ones.
///
/// # Example
///
/// ```
/// use bayesopt::{GaussianProcess, Kernel};
///
/// let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
/// for i in 0..5 {
///     let z = i as f64 / 4.0;
///     gp.add_observation(vec![z], (z - 0.5).powi(2));
/// }
/// gp.fit().unwrap();
/// let (mu, var) = gp.predict(&[0.5]);
/// assert!(mu < 0.1);                // near the minimum
/// let (_, var_far) = gp.predict(&[5.0]);
/// assert!(var_far > 10.0 * var);    // far from data = far less certain
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise_var: f64,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    // Fitted state.
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
}

impl GaussianProcess {
    /// Creates an empty GP with observation-noise variance `noise_var`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var` is negative or not finite.
    pub fn new(kernel: Kernel, noise_var: f64) -> Self {
        assert!(
            noise_var.is_finite() && noise_var >= 0.0,
            "invalid noise variance: {noise_var}"
        );
        GaussianProcess {
            kernel,
            noise_var,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            y_mean: 0.0,
            y_scale: 1.0,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the GP has no observations.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        self.kernel_ref()
    }

    fn kernel_ref(&self) -> &Kernel {
        &self.kernel
    }

    /// Adds an observation; invalidates the fit until [`Self::fit`] is
    /// called again.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not finite, or `z`'s dimension differs from the
    /// existing observations.
    pub fn add_observation(&mut self, z: Vec<f64>, y: f64) {
        assert!(y.is_finite(), "non-finite target: {y}");
        if let Some(first) = self.xs.first() {
            assert_eq!(first.len(), z.len(), "dimension mismatch");
        }
        self.xs.push(z);
        self.ys.push(y);
        self.chol = None;
    }

    /// Fits the posterior: factorizes `K + σ²_n I` and precomputes
    /// `α = (K + σ²_n I)⁻¹ (y − ȳ)`, escalating diagonal jitter if the
    /// Gram matrix is numerically singular (e.g. duplicated inputs).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if even the largest jitter fails.
    ///
    /// # Panics
    ///
    /// Panics if there are no observations.
    pub fn fit(&mut self) -> Result<(), NotPositiveDefinite> {
        let n = self.xs.len();
        assert!(n > 0, "cannot fit a GP with no observations");
        self.y_mean = self.ys.iter().sum::<f64>() / n as f64;
        let var = self
            .ys
            .iter()
            .map(|y| (y - self.y_mean) * (y - self.y_mean))
            .sum::<f64>()
            / n as f64;
        self.y_scale = var.sqrt().max(1e-9);
        let centered: Vec<f64> = self
            .ys
            .iter()
            .map(|y| (y - self.y_mean) / self.y_scale)
            .collect();
        for jitter in JITTERS {
            let gram = Matrix::from_fn(n, n, |r, c| {
                self.kernel.eval(&self.xs[r], &self.xs[c])
                    + if r == c { self.noise_var + jitter } else { 0.0 }
            });
            if let Ok(chol) = Cholesky::new(&gram) {
                self.alpha = chol.solve(&centered);
                self.chol = Some(chol);
                return Ok(());
            }
        }
        Err(NotPositiveDefinite)
    }

    /// True if the model is fitted and ready to predict.
    pub fn is_fitted(&self) -> bool {
        self.chol.is_some()
    }

    /// Posterior mean and variance at `z` (Eq. 6 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn predict(&self, z: &[f64]) -> (f64, f64) {
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let k_star: Vec<f64> = self.xs.iter().map(|x| self.kernel.eval(x, z)).collect();
        let mu = self.y_mean + self.y_scale * crate::linalg::dot(&k_star, &self.alpha);
        let v = chol.solve_lower(&k_star);
        let var = self.kernel.eval(z, z) - crate::linalg::dot(&v, &v);
        (mu, (var.max(0.0)) * self.y_scale * self.y_scale)
    }

    /// The observed inputs.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// The observed targets.
    pub fn targets(&self) -> &[f64] {
        &self.ys
    }

    /// The smallest observed target (the incumbent for minimization).
    pub fn best_observed(&self) -> Option<f64> {
        self.ys.iter().copied().min_by(f64::total_cmp)
    }

    /// The log marginal likelihood of the (standardized) targets under the
    /// fitted model — Rasmussen & Williams Eq. (2.30):
    /// `−½ yᵀα − Σ log L_ii − (n/2) log 2π`. Used to compare kernel
    /// hyperparameters on the same data.
    ///
    /// # Panics
    ///
    /// Panics if the GP is not fitted.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let chol = self.chol.as_ref().expect("GP not fitted: call fit()");
        let n = self.ys.len() as f64;
        let centered: Vec<f64> = self
            .ys
            .iter()
            .map(|y| (y - self.y_mean) / self.y_scale)
            .collect();
        let data_fit = -0.5 * crate::linalg::dot(&centered, &self.alpha);
        let complexity = -0.5 * chol.log_det();
        data_fit + complexity - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Refits the GP at each candidate length scale (holding the kernel
    /// family and signal variance fixed) and keeps the one maximizing the
    /// log marginal likelihood — the standard type-II MLE hyperparameter
    /// selection, on a grid for robustness.
    ///
    /// Returns the chosen length scale.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if no candidate produces a valid
    /// factorization.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or the GP has no observations.
    pub fn fit_length_scale(&mut self, candidates: &[f64]) -> Result<f64, NotPositiveDefinite> {
        assert!(!candidates.is_empty(), "need candidate length scales");
        let mut best: Option<(f64, f64)> = None; // (lml, scale)
        for &scale in candidates {
            assert!(scale > 0.0 && scale.is_finite(), "invalid length scale");
            self.kernel = match self.kernel {
                Kernel::Matern12 { signal_var, .. } => Kernel::Matern12 {
                    length_scale: scale,
                    signal_var,
                },
                Kernel::Matern32 { signal_var, .. } => Kernel::Matern32 {
                    length_scale: scale,
                    signal_var,
                },
                Kernel::Matern52 { signal_var, .. } => Kernel::Matern52 {
                    length_scale: scale,
                    signal_var,
                },
                Kernel::Rbf { signal_var, .. } => Kernel::Rbf {
                    length_scale: scale,
                    signal_var,
                },
            };
            if self.fit().is_err() {
                continue;
            }
            let lml = self.log_marginal_likelihood();
            if best.is_none_or(|(b, _)| lml > b) {
                best = Some((lml, scale));
            }
        }
        let (_, scale) = best.ok_or(NotPositiveDefinite)?;
        self.kernel = match self.kernel {
            Kernel::Matern12 { signal_var, .. } => Kernel::Matern12 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Matern32 { signal_var, .. } => Kernel::Matern32 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Matern52 { signal_var, .. } => Kernel::Matern52 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Rbf { signal_var, .. } => Kernel::Rbf {
                length_scale: scale,
                signal_var,
            },
        };
        self.fit()?;
        Ok(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted_on(f: impl Fn(f64) -> f64, points: &[f64]) -> GaussianProcess {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-8);
        for &z in points {
            gp.add_observation(vec![z], f(z));
        }
        gp.fit().unwrap();
        gp
    }

    #[test]
    fn interpolates_training_points() {
        let gp = fitted_on(|z| z.sin(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        for &z in &[0.0, 0.5, 1.0, 1.5, 2.0] {
            let (mu, var) = gp.predict(&[z]);
            assert!((mu - z.sin()).abs() < 1e-3, "mu({z}) = {mu}");
            assert!(var < 1e-3, "var({z}) = {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fitted_on(|z| z, &[0.0, 0.2, 0.4]);
        let (_, near) = gp.predict(&[0.2]);
        let (_, far) = gp.predict(&[4.0]);
        assert!(far > near * 100.0, "near={near}, far={far}");
        // Far from data, the mean reverts towards the prior (ȳ).
        let (mu_far, _) = gp.predict(&[100.0]);
        assert!((mu_far - 0.2).abs() < 1e-6);
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 0.0);
        gp.add_observation(vec![1.0, 2.0], 3.0);
        gp.add_observation(vec![1.0, 2.0], 3.1);
        assert!(gp.fit().is_ok());
        let (mu, _) = gp.predict(&[1.0, 2.0]);
        assert!((mu - 3.05).abs() < 0.1);
    }

    #[test]
    fn best_observed_tracks_minimum() {
        let gp = fitted_on(|z| (z - 1.0).powi(2), &[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(gp.best_observed(), Some(0.0));
        assert_eq!(gp.len(), 4);
        assert!(!gp.is_empty());
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.predict(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_panic() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.add_observation(vec![0.0, 1.0], 0.0);
    }

    #[test]
    fn lml_prefers_the_matching_length_scale() {
        // Data drawn from a smooth slow function: a longer length scale
        // should win over a tiny one.
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..12 {
            let z = i as f64 * 0.2;
            gp.add_observation(vec![z], (0.5 * z).sin());
        }
        let chosen = gp.fit_length_scale(&[0.05, 0.3, 1.0, 3.0]).unwrap();
        assert!(chosen >= 1.0, "chosen = {chosen}");
        assert!(gp.is_fitted());
    }

    #[test]
    fn lml_is_finite_and_comparable() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-4);
        for i in 0..6 {
            gp.add_observation(vec![i as f64], (i as f64).cos());
        }
        gp.fit().unwrap();
        let a = gp.log_marginal_likelihood();
        assert!(a.is_finite());
    }

    #[test]
    fn adding_observation_invalidates_fit() {
        let mut gp = GaussianProcess::new(Kernel::paper_default(), 1e-6);
        gp.add_observation(vec![0.0], 0.0);
        gp.fit().unwrap();
        assert!(gp.is_fitted());
        gp.add_observation(vec![1.0], 1.0);
        assert!(!gp.is_fitted());
    }
}
