//! A polynomial `exp` approximation for the kernel batch paths.
//!
//! [`fast_exp`] is the classic Cephes `exp`: split `x = n·ln2 + g` with a
//! two-part ln2 reduction, evaluate a degree-(2,3) rational approximation
//! of `exp(g)` on `|g| ≤ ln2/2`, and scale by `2ⁿ` built directly from
//! IEEE-754 exponent bits. No table lookups, no data-dependent branches in
//! the reduced range — the loop over a candidate block vectorizes where
//! the libm `exp` call does not.
//!
//! Accuracy over the kernel's argument range (`[−8, 0]` for the Matérn
//! family at the distances the simplex spaces produce) is a couple of ULP
//! — measured, not assumed, by `fast_exp_stays_within_ulp_budget` below,
//! which runs in every configuration. The module is always compiled; only
//! the *use* inside [`crate::Kernel::eval_from_distance_batch`] is gated
//! behind the `fast-exp` cargo feature, so the default build keeps every
//! pinned figure byte-identical.

/// Numerator coefficients of the Cephes rational approximation, highest
/// order first: `P(g²)` with `p(g) = g · P(g²)`.
const P: [f64; 3] = [
    1.261_771_930_748_105_908_78e-4,
    3.029_944_077_074_419_613e-2,
    9.999_999_999_999_999_999_1e-1,
];

/// Denominator coefficients, highest order first: `Q(g²)`.
const Q: [f64; 4] = [
    3.001_985_051_386_644_550_42e-6,
    2.524_483_403_496_841_041_92e-3,
    2.272_655_482_081_550_287_66e-1,
    2.000_000_000_000_000_000_05,
];

/// `log₂ e`, used to pick the power-of-two exponent `n`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;

/// High half of `ln 2` (exact in ~20 bits, so `n · C1` is exact for the
/// `n` range that matters).
const C1: f64 = 6.931_457_519_531_25e-1;

/// Low half of `ln 2`: `ln 2 − C1`.
const C2: f64 = 1.428_606_820_309_417_232_12e-6;

/// Approximates `e^x` to within a few ULP.
///
/// Out-of-range inputs saturate (`+∞` above ~709, `0` below ~−708) and a
/// NaN input propagates, matching `f64::exp` behavior at the granularity
/// the kernels care about (their arguments are `−q ≤ 0`, bounded by the
/// sample space diameter).
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -708.0 {
        return 0.0;
    }
    // n = round(x / ln 2); floor(t + 0.5) is round-half-up, fine here.
    let n = (LOG2_E * x + 0.5).floor();
    // g = x − n·ln2 in two exact-ish steps: |g| ≤ ln2/2 ≈ 0.3466.
    let g = (x - n * C1) - n * C2;
    let gg = g * g;
    // exp(g) ≈ 1 + 2·g·P(g²) / (Q(g²) − g·P(g²)).
    let p = g * (P[2] + gg * (P[1] + gg * P[0]));
    let q = Q[3] + gg * (Q[2] + gg * (Q[1] + gg * Q[0]));
    let e = 1.0 + 2.0 * p / (q - p);
    // Scale by 2ⁿ: build the power of two straight from exponent bits.
    e * f64::from_bits(((n as i64 + 1023) as u64) << 52)
}

/// ULP distance between two finite same-sign doubles (0 when bit-equal).
///
/// Exposed so the accuracy tests and EXPERIMENTS.md measurement share one
/// definition.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(
        a.is_finite() && b.is_finite() && a.is_sign_positive() == b.is_sign_positive(),
        "ulp_distance needs finite same-sign inputs: {a} vs {b}"
    );
    a.to_bits().abs_diff(b.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s};
    use simcore::prop_assert;

    /// The budget EXPERIMENTS.md quotes: measured max over the kernel
    /// argument range is 2 ULP, asserted here with no slack.
    const MAX_ULP_KERNEL_RANGE: u64 = 2;

    #[test]
    fn fast_exp_stays_within_ulp_budget() {
        // Dense deterministic scan of the kernel's argument range
        // [−8, 0]: Matérn arguments are −q = −√5·r/ℓ with r bounded by
        // the simplex-space diameter (< 3 for every configured space).
        let mut worst = 0u64;
        let mut worst_x = 0.0;
        let n = 200_000;
        for i in 0..=n {
            let x = -8.0 * (i as f64) / (n as f64);
            let d = ulp_distance(fast_exp(x), x.exp());
            if d > worst {
                worst = d;
                worst_x = x;
            }
        }
        assert!(
            worst <= MAX_ULP_KERNEL_RANGE,
            "max ULP error {worst} at x = {worst_x} exceeds the documented budget"
        );
        // The budget is tight, not padded: the scan actually reaches it.
        assert_eq!(worst, MAX_ULP_KERNEL_RANGE, "EXPERIMENTS.md table is stale");
    }

    #[test]
    fn fast_exp_is_accurate_over_a_wide_range() {
        // Outside the kernel range the approximation is still a few ULP.
        check::check("fast_exp_wide_range", f64s(-600.0..600.0), |&x| {
            let d = ulp_distance(fast_exp(x), x.exp());
            prop_assert!(d <= 4, "fast_exp({x}) off by {d} ULP");
            Ok(())
        });
    }

    #[test]
    fn fast_exp_handles_edges() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(800.0), f64::INFINITY);
        assert_eq!(fast_exp(-800.0), 0.0);
        assert!(fast_exp(f64::NAN).is_nan());
        // Monotone on a coarse grid (no reduction seam glitches).
        let mut prev = fast_exp(-20.0);
        for i in 1..=400 {
            let x = -20.0 + i as f64 * 0.05;
            let v = fast_exp(x);
            assert!(v >= prev, "non-monotone at x = {x}");
            prev = v;
        }
    }
}
