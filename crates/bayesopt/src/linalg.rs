//! Minimal dense linear algebra: just enough for Gaussian-process
//! regression (symmetric positive-definite systems via Cholesky).

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.data[r * self.cols + c] * x[c])
                    .sum()
            })
            .collect()
    }

    /// True if `|self - other|` is entrywise below `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with solvers for `A x = b`.
///
/// # Example
///
/// ```
/// use bayesopt::linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 0.5 });
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve(&[1.0, 1.0]);
/// let b = a.mul_vec(&x);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if a pivot is not strictly positive
    /// (the usual fix in GP code is to add jitter to the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * yk;
            }
            y[i] = sum / self.l.get(i, i);
        }
        y
    }

    /// Solves `Lᵀ x = y` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solves `A x = b` (i.e. `L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A|`, cheap from the factor's diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean distance between two equal-length points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s, vec as cvec};
    use simcore::prop_assert;

    #[test]
    fn identity_solves_trivially() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!((chol.log_det()).abs() < 1e-12);
    }

    #[test]
    fn known_factorization() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 2.0], [2.0, 3.0]][r][c]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.l().get(0, 0) - 2.0).abs() < 1e-12);
        assert!((chol.l().get(1, 0) - 1.0).abs() < 1e-12);
        assert!((chol.l().get(1, 1) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((chol.log_det() - (8.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn not_pd_is_an_error() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert!(matches!(Cholesky::new(&a), Err(NotPositiveDefinite)));
    }

    #[test]
    fn singular_is_an_error() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn mul_vec_works() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Matrix::identity(2)).is_empty());
    }

    /// Builds a random SPD matrix `A = B Bᵀ + n·I` from a flat seed vector.
    fn spd_from(values: &[f64], n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |r, c| values[r * n + c]);
        Matrix::from_fn(n, n, |r, c| {
            let mut s = 0.0;
            for k in 0..n {
                s += b.get(r, k) * b.get(c, k);
            }
            s + if r == c { n as f64 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_round_trips() {
        check::check(
            "cholesky_round_trips",
            (cvec(f64s(-3.0..3.0), 16..=16), cvec(f64s(-5.0..5.0), 4..=4)),
            |(values, b)| {
                let a = spd_from(values, 4);
                let chol = Cholesky::new(&a).unwrap();
                // L Lᵀ == A
                let l = chol.l();
                let recon =
                    Matrix::from_fn(4, 4, |r, c| (0..4).map(|k| l.get(r, k) * l.get(c, k)).sum());
                prop_assert!(recon.approx_eq(&a, 1e-9));
                // A x == b after solve.
                let x = chol.solve(b);
                let back = a.mul_vec(&x);
                for (u, v) in back.iter().zip(b) {
                    prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn solve_lower_upper_consistency() {
        check::check(
            "solve_lower_upper_consistency",
            (cvec(f64s(-2.0..2.0), 9..=9), cvec(f64s(-5.0..5.0), 3..=3)),
            |(values, b)| {
                let a = spd_from(values, 3);
                let chol = Cholesky::new(&a).unwrap();
                let y = chol.solve_lower(b);
                // L y == b
                let back: Vec<f64> = (0..3)
                    .map(|i| (0..=i).map(|k| chol.l().get(i, k) * y[k]).sum())
                    .collect();
                for (u, v) in back.iter().zip(b) {
                    prop_assert!((u - v).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
