//! Minimal dense linear algebra: just enough for Gaussian-process
//! regression (symmetric positive-definite systems via Cholesky).

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.data[r * self.cols + c] * x[c])
                    .sum()
            })
            .collect()
    }

    /// True if `|self - other|` is entrywise below `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix, with solvers for `A x = b`.
///
/// The factor is stored as a packed row-major lower triangle (row `i`
/// holds `i + 1` entries, diagonal last), which makes the rank-1
/// [`Cholesky::extend`] an `O(n²)` append instead of an `O(n³)`
/// refactorization — the GP surrogate grows by one observation per BO
/// iteration, and only the new row of `L` actually changes.
///
/// # Example
///
/// ```
/// use bayesopt::linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 0.5 });
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve(&[1.0, 1.0]);
/// let b = a.mul_vec(&x);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Packed lower triangle of `L`: row `i` occupies
    /// `data[i(i+1)/2 .. i(i+1)/2 + i + 1]`.
    data: Vec<f64>,
}

#[inline]
fn row_start(i: usize) -> usize {
    i * (i + 1) / 2
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if a pivot is not strictly positive
    /// (the usual fix in GP code is to add jitter to the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
        let n = a.rows();
        let mut data = vec![0.0; row_start(n)];
        for i in 0..n {
            let ri = row_start(i);
            for j in 0..=i {
                let rj = row_start(j);
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= data[ri + k] * data[rj + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    data[ri + j] = sum.sqrt();
                } else {
                    data[ri + j] = sum / data[rj + j];
                }
            }
        }
        Ok(Cholesky { n, data })
    }

    /// Factorizes a symmetric matrix given as a packed row-major lower
    /// triangle (row `i` holds entries `(i,0) … (i,i)`, the same layout the
    /// factor uses). Reads exactly the entries [`Cholesky::new`] reads from
    /// a dense [`Matrix`], in the same order, so the two constructors are
    /// bit-identical on the same data.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] like [`Cholesky::new`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n(n+1)/2`.
    pub fn new_packed(n: usize, a: &[f64]) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(
            a.len(),
            row_start(n),
            "packed triangle has n(n+1)/2 entries"
        );
        let mut data = vec![0.0; row_start(n)];
        for i in 0..n {
            let ri = row_start(i);
            for j in 0..=i {
                let rj = row_start(j);
                let mut sum = a[ri + j];
                for k in 0..j {
                    sum -= data[ri + k] * data[rj + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    data[ri + j] = sum.sqrt();
                } else {
                    data[ri + j] = sum / data[rj + j];
                }
            }
        }
        Ok(Cholesky { n, data })
    }

    /// Appends one row/column to the factored matrix: given the new row
    /// `[A_{n,0}, …, A_{n,n-1}, A_{n,n}]` of the extended `A`, computes the
    /// matching row of `L` in `O(n²)` by forward substitution. The
    /// existing factor is untouched (the leading block of `L` depends only
    /// on the leading block of `A`), so the result is *bit-identical* to
    /// refactorizing the extended matrix from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefinite`] if the new diagonal pivot is not
    /// strictly positive; the factor is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim() + 1`.
    pub fn extend(&mut self, row: &[f64]) -> Result<(), NotPositiveDefinite> {
        let n = self.n;
        assert_eq!(row.len(), n + 1, "extend needs a row of dim() + 1 entries");
        let base = row_start(n);
        self.data.reserve(n + 1);
        for j in 0..=n {
            let rj = row_start(j);
            let mut sum = row[j];
            for k in 0..j {
                sum -= self.data[base + k] * self.data[rj + k];
            }
            if j == n {
                if sum <= 0.0 || !sum.is_finite() {
                    self.data.truncate(base);
                    return Err(NotPositiveDefinite);
                }
                self.data.push(sum.sqrt());
            } else {
                self.data.push(sum / self.data[rj + j]);
            }
        }
        self.n = n + 1;
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The lower-triangular factor `L`, materialized as a dense matrix.
    pub fn l(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |r, c| {
            if c <= r {
                self.data[row_start(r) + c]
            } else {
                0.0
            }
        })
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y);
        y
    }

    /// [`Self::solve_lower`] into a caller-owned buffer, so hot loops
    /// (batched GP prediction scores thousands of candidates per suggest)
    /// allocate once instead of once per solve.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        y.clear();
        y.resize(n, 0.0);
        for i in 0..n {
            let ri = row_start(i);
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.data[ri + k] * y[k];
            }
            y[i] = sum / self.data[ri + i];
        }
    }

    /// Solves `L Y = B` for `width` right-hand sides at once, with `b` and
    /// `y` stored row-major (`b[i * width + c]` is entry `i` of RHS `c`).
    ///
    /// Performs, per RHS, exactly the operations of [`Self::solve_lower`]
    /// in the same order — the results are bit-identical — but interleaves
    /// the independent columns so the forward-substitution division chain
    /// pipelines and vectorizes instead of serializing on one divide per
    /// row. On the batched acquisition-scoring pass this is the difference
    /// between latency-bound and throughput-bound.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `b.len() != dim() * width`.
    pub fn solve_lower_multi_into(&self, b: &[f64], width: usize, y: &mut Vec<f64>) {
        assert!(width > 0, "need at least one right-hand side");
        assert_eq!(b.len(), self.n * width, "dimension mismatch");
        // Compile-time width lets the column loops fully unroll; 8 is
        // the block width the GP scoring pass uses.
        match width {
            8 => self.solve_lower_multi_const::<8>(b, y),
            4 => self.solve_lower_multi_const::<4>(b, y),
            _ => self.solve_lower_multi_dyn(b, width, y),
        }
    }

    fn solve_lower_multi_const<const W: usize>(&self, b: &[f64], y: &mut Vec<f64>) {
        let n = self.n;
        y.clear();
        y.resize(n * W, 0.0);
        for i in 0..n {
            let ri = row_start(i);
            let (done, rest) = y.split_at_mut(i * W);
            let yi: &mut [f64] = &mut rest[..W];
            yi.copy_from_slice(&b[i * W..(i + 1) * W]);
            for k in 0..i {
                let l = self.data[ri + k];
                let yk = &done[k * W..(k + 1) * W];
                for c in 0..W {
                    yi[c] -= l * yk[c];
                }
            }
            let d = self.data[ri + i];
            for v in yi.iter_mut() {
                *v /= d;
            }
        }
    }

    fn solve_lower_multi_dyn(&self, b: &[f64], width: usize, y: &mut Vec<f64>) {
        let n = self.n;
        y.clear();
        y.resize(n * width, 0.0);
        for i in 0..n {
            let ri = row_start(i);
            let (done, rest) = y.split_at_mut(i * width);
            let yi = &mut rest[..width];
            yi.copy_from_slice(&b[i * width..(i + 1) * width]);
            for k in 0..i {
                let l = self.data[ri + k];
                let yk = &done[k * width..(k + 1) * width];
                for c in 0..width {
                    yi[c] -= l * yk[c];
                }
            }
            let d = self.data[ri + i];
            for v in yi.iter_mut() {
                *v /= d;
            }
        }
    }

    /// Solves `Lᵀ x = y` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_upper_into(y, &mut x);
        x
    }

    /// [`Self::solve_upper`] into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_upper_into(&self, y: &[f64], x: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(y.len(), n, "dimension mismatch");
        x.clear();
        x.resize(n, 0.0);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.data[row_start(k) + i] * xk;
            }
            x[i] = sum / self.data[row_start(i) + i];
        }
    }

    /// Solves `A x = b` (i.e. `L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A|`, cheap from the factor's diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.data[row_start(i) + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean distance between two equal-length points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s, vec as cvec};
    use simcore::prop_assert;

    #[test]
    fn identity_solves_trivially() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!((chol.log_det()).abs() < 1e-12);
    }

    #[test]
    fn known_factorization() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_fn(2, 2, |r, c| [[4.0, 2.0], [2.0, 3.0]][r][c]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.l().get(0, 0) - 2.0).abs() < 1e-12);
        assert!((chol.l().get(1, 0) - 1.0).abs() < 1e-12);
        assert!((chol.l().get(1, 1) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((chol.log_det() - (8.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn not_pd_is_an_error() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert!(matches!(Cholesky::new(&a), Err(NotPositiveDefinite)));
    }

    #[test]
    fn singular_is_an_error() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn mul_vec_works() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Matrix::identity(2)).is_empty());
    }

    /// Builds a random SPD matrix `A = B Bᵀ + n·I` from a flat seed vector.
    fn spd_from(values: &[f64], n: usize) -> Matrix {
        let b = Matrix::from_fn(n, n, |r, c| values[r * n + c]);
        Matrix::from_fn(n, n, |r, c| {
            let mut s = 0.0;
            for k in 0..n {
                s += b.get(r, k) * b.get(c, k);
            }
            s + if r == c { n as f64 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_round_trips() {
        check::check(
            "cholesky_round_trips",
            (cvec(f64s(-3.0..3.0), 16..=16), cvec(f64s(-5.0..5.0), 4..=4)),
            |(values, b)| {
                let a = spd_from(values, 4);
                let chol = Cholesky::new(&a).unwrap();
                // L Lᵀ == A
                let l = chol.l();
                let recon =
                    Matrix::from_fn(4, 4, |r, c| (0..4).map(|k| l.get(r, k) * l.get(c, k)).sum());
                prop_assert!(recon.approx_eq(&a, 1e-9));
                // A x == b after solve.
                let x = chol.solve(b);
                let back = a.mul_vec(&x);
                for (u, v) in back.iter().zip(b) {
                    prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn extend_matches_from_scratch_bitwise() {
        check::check(
            "extend_matches_from_scratch_bitwise",
            cvec(f64s(-3.0..3.0), 25..=25),
            |values| {
                let full = spd_from(values, 5);
                // Factor the leading 4x4 block, then extend by row 4.
                let lead = Matrix::from_fn(4, 4, |r, c| full.get(r, c));
                let mut chol = Cholesky::new(&lead).unwrap();
                let row: Vec<f64> = (0..5).map(|j| full.get(4, j)).collect();
                chol.extend(&row).unwrap();
                let scratch = Cholesky::new(&full).unwrap();
                let packed: Vec<f64> = (0..5)
                    .flat_map(|r| (0..=r).map(move |c| (r, c)))
                    .map(|(r, c)| full.get(r, c))
                    .collect();
                let from_packed = Cholesky::new_packed(5, &packed).unwrap();
                // Bit-identical, not just approximately equal: the same
                // floating-point operations run in the same order.
                for r in 0..5 {
                    for c in 0..=r {
                        prop_assert!(
                            chol.l().get(r, c).to_bits() == scratch.l().get(r, c).to_bits(),
                            "L[{r}][{c}] differs: {} vs {}",
                            chol.l().get(r, c),
                            scratch.l().get(r, c)
                        );
                        prop_assert!(
                            from_packed.l().get(r, c).to_bits() == scratch.l().get(r, c).to_bits(),
                            "packed L[{r}][{c}] differs"
                        );
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn extend_failure_leaves_factor_unchanged() {
        let a = Matrix::identity(2);
        let mut chol = Cholesky::new(&a).unwrap();
        let before = chol.l();
        // New row makes the extended matrix singular: [1,0],[0,1],[1,0;·]
        // with diagonal 1.0 gives pivot 1 - 1 = 0.
        assert!(chol.extend(&[1.0, 0.0, 1.0]).is_err());
        assert_eq!(chol.dim(), 2);
        assert!(chol.l().approx_eq(&before, 0.0));
        // The factor still works after the failed extend.
        assert_eq!(chol.solve(&[2.0, 3.0]), vec![2.0, 3.0]);
        // And a valid extend still succeeds.
        assert!(chol.extend(&[0.5, 0.5, 2.0]).is_ok());
        assert_eq!(chol.dim(), 3);
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = spd_from(&vec![1.0; 9], 3);
        let chol = Cholesky::new(&a).unwrap();
        let mut y = vec![99.0; 7]; // wrong size on purpose
        chol.solve_lower_into(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, chol.solve_lower(&[1.0, 2.0, 3.0]));
        let mut x = Vec::new();
        chol.solve_upper_into(&y, &mut x);
        assert_eq!(x, chol.solve_upper(&y));
    }

    #[test]
    fn solve_lower_multi_is_bitwise_the_scalar_solve_per_column() {
        check::check(
            "solve_lower_multi_is_bitwise_the_scalar_solve_per_column",
            (
                cvec(f64s(-2.0..2.0), 16..=16),
                cvec(f64s(-5.0..5.0), 20..=20),
            ),
            |(values, rhs)| {
                let a = spd_from(values, 4);
                let chol = Cholesky::new(&a).unwrap();
                // rhs holds 5 right-hand sides of length 4, column-major
                // per candidate: b[i * 5 + c] is entry i of RHS c.
                let mut y = Vec::new();
                chol.solve_lower_multi_into(rhs, 5, &mut y);
                for c in 0..5 {
                    let b: Vec<f64> = (0..4).map(|i| rhs[i * 5 + c]).collect();
                    let scalar = chol.solve_lower(&b);
                    for i in 0..4 {
                        prop_assert!(
                            y[i * 5 + c].to_bits() == scalar[i].to_bits(),
                            "column {c} row {i}: {} != {}",
                            y[i * 5 + c],
                            scalar[i]
                        );
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn solve_lower_upper_consistency() {
        check::check(
            "solve_lower_upper_consistency",
            (cvec(f64s(-2.0..2.0), 9..=9), cvec(f64s(-5.0..5.0), 3..=3)),
            |(values, b)| {
                let a = spd_from(values, 3);
                let chol = Cholesky::new(&a).unwrap();
                let y = chol.solve_lower(b);
                // L y == b
                let back: Vec<f64> = (0..3)
                    .map(|i| (0..=i).map(|k| chol.l().get(i, k) * y[k]).sum())
                    .collect();
                for (u, v) in back.iter().zip(b) {
                    prop_assert!((u - v).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
