//! Acquisition functions for minimization.
//!
//! The paper (Section IV-C) selects **Expected Improvement** after finding
//! probability of improvement "too conservative during exploration" and
//! lower confidence bound in need of a hand-tuned exploration parameter;
//! all three are implemented so the ablation bench can reproduce that
//! comparison.

/// Standard normal probability density function.
pub fn normal_pdf(u: f64) -> f64 {
    (-0.5 * u * u).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function, via the
/// Abramowitz–Stegun 7.1.26 rational approximation of `erf` (absolute
/// error < 1.5e-7).
pub fn normal_cdf(u: f64) -> f64 {
    0.5 * (1.0 + erf(u / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// An acquisition function scoring candidate points for *minimization*:
/// larger scores are more promising.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent (the paper's choice).
    ExpectedImprovement {
        /// Exploration margin ξ subtracted from the incumbent.
        xi: f64,
    },
    /// Probability of improving on the incumbent.
    ProbabilityOfImprovement {
        /// Exploration margin ξ.
        xi: f64,
    },
    /// Negated lower confidence bound `-(μ - κσ)`.
    LowerConfidenceBound {
        /// Exploration weight κ.
        kappa: f64,
    },
}

impl Default for Acquisition {
    /// EI with a small exploration margin, as configured in the paper.
    fn default() -> Self {
        Acquisition::ExpectedImprovement { xi: 0.01 }
    }
}

impl Acquisition {
    /// Scores a candidate with posterior `(mu, var)` against the incumbent
    /// (best observed cost) `f_best`. Higher is better.
    pub fn score(&self, mu: f64, var: f64, f_best: f64) -> f64 {
        let sigma = var.max(0.0).sqrt();
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                let improvement = f_best - mu - xi;
                if sigma < 1e-12 {
                    return improvement.max(0.0);
                }
                let u = improvement / sigma;
                improvement * normal_cdf(u) + sigma * normal_pdf(u)
            }
            Acquisition::ProbabilityOfImprovement { xi } => {
                if sigma < 1e-12 {
                    return if f_best - mu - xi > 0.0 { 1.0 } else { 0.0 };
                }
                normal_cdf((f_best - mu - xi) / sigma)
            }
            Acquisition::LowerConfidenceBound { kappa } => -(mu - kappa * sigma),
        }
    }

    /// The smallest posterior mean that provably cannot beat `best_score`:
    /// for Expected Improvement, every candidate whose mean is at least
    /// the returned threshold satisfies `score(mu, var, f_best) ≤
    /// best_score` for *any* variance in `[0, var_ub]`. The pruning pass
    /// pairs this with [`crate::GaussianProcess::mu_lower_bound`] to skip
    /// full kernel evaluation for hopeless candidates.
    ///
    /// Returns `f64::INFINITY` (prune nothing) for the other acquisition
    /// variants and for any input where a conservative threshold cannot be
    /// established.
    ///
    /// Why it is safe: EI factors as `σ · h(u)` with
    /// `h(u) = u·Φ(u) + φ(u)` strictly increasing and
    /// `u = (f_best − mu − ξ)/σ`. EI is also non-decreasing in `σ`
    /// (`∂EI/∂σ = φ(u) ≥ 0`), so bounding with `σ_ub = √var_ub` is
    /// conservative. Bisection maintains `h(lo) ≤ best_score/σ_ub` — only
    /// the verified end of the bracket is returned — hence `mu ≥
    /// f_best − ξ − σ_ub·lo` implies `u ≤ lo` and
    /// `EI ≤ σ_ub·h(lo) ≤ best_score`. Because `h(u) ≥ max(u, 0)`, the
    /// same threshold also covers `score`'s degenerate `σ < 1e-12` branch
    /// (`max(f_best − mu − ξ, 0)`).
    pub fn prune_threshold(&self, var_ub: f64, f_best: f64, best_score: f64) -> f64 {
        let Acquisition::ExpectedImprovement { xi } = *self else {
            return f64::INFINITY;
        };
        if !(best_score.is_finite() && best_score >= 0.0)
            || !(var_ub.is_finite() && var_ub >= 0.0)
            || !f_best.is_finite()
        {
            return f64::INFINITY;
        }
        let sigma = var_ub.sqrt();
        if sigma < 1e-12 {
            // Every candidate hits the degenerate branch: the score is
            // exactly max(f_best − mu − ξ, 0).
            return f_best - xi - best_score;
        }
        let target = best_score / sigma;
        let h = |u: f64| u * normal_cdf(u) + normal_pdf(u);
        // h(−40) is astronomically small; if even that exceeds the target
        // (best_score ≈ 0 with a huge σ_ub), give up rather than chase it.
        let mut lo = -40.0;
        if h(lo) > target {
            return f64::INFINITY;
        }
        // h(u) ≥ u, so hi > target brackets from above; the max(2, ·)
        // keeps the bracket sane for tiny targets.
        let mut hi = (1.1 * target + 2.0).max(2.0);
        if h(hi) <= target {
            return f64::INFINITY; // broken bracket: refuse to prune
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if h(mid) <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        f_best - xi - sigma * lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s};
    use simcore::prop_assert;

    #[test]
    fn cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn pdf_reference_values() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!((normal_pdf(1.0) - 0.241_970_72).abs() < 1e-7);
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_sigma() {
        let acq = Acquisition::ExpectedImprovement { xi: 0.0 };
        let better = acq.score(0.2, 0.04, 1.0);
        let worse = acq.score(0.8, 0.04, 1.0);
        assert!(better > worse);
    }

    #[test]
    fn ei_prefers_uncertainty_at_equal_mean() {
        let acq = Acquisition::ExpectedImprovement { xi: 0.0 };
        let certain = acq.score(1.0, 1e-6, 1.0);
        let uncertain = acq.score(1.0, 0.25, 1.0);
        assert!(uncertain > certain);
    }

    #[test]
    fn ei_zero_sigma_degenerates_to_plain_improvement() {
        let acq = Acquisition::ExpectedImprovement { xi: 0.0 };
        assert_eq!(acq.score(0.3, 0.0, 1.0), 0.7);
        assert_eq!(acq.score(2.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn pi_is_more_conservative_than_ei_on_big_uncertain_gains() {
        // A candidate far above the incumbent but hugely uncertain: EI
        // still gives it credit, PI essentially none — the behaviour that
        // made the paper call PI "too conservative during exploration".
        let (mu, var, best) = (2.0, 4.0, 1.0);
        let ei = Acquisition::ExpectedImprovement { xi: 0.0 }.score(mu, var, best);
        let pi = Acquisition::ProbabilityOfImprovement { xi: 0.0 }.score(mu, var, best);
        assert!(ei > 0.1);
        assert!(pi < 0.5);
    }

    #[test]
    fn lcb_trades_mean_against_sigma_via_kappa() {
        let greedy = Acquisition::LowerConfidenceBound { kappa: 0.0 };
        let explorer = Acquisition::LowerConfidenceBound { kappa: 10.0 };
        // Greedy prefers the lower mean; the explorer prefers the high-σ one.
        assert!(greedy.score(0.5, 1.0, 0.0) < greedy.score(0.4, 0.0, 0.0));
        assert!(explorer.score(0.5, 1.0, 0.0) > explorer.score(0.4, 0.0, 0.0));
    }

    #[test]
    fn ei_and_pi_are_nonnegative() {
        check::check(
            "ei_and_pi_are_nonnegative",
            (f64s(-5.0..5.0), f64s(0.0..4.0), f64s(-5.0..5.0)),
            |&(mu, var, best)| {
                let ei = Acquisition::ExpectedImprovement { xi: 0.0 }.score(mu, var, best);
                let pi = Acquisition::ProbabilityOfImprovement { xi: 0.0 }.score(mu, var, best);
                prop_assert!(ei >= -1e-12);
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&pi));
                Ok(())
            },
        );
    }

    #[test]
    fn prune_threshold_is_conservative_for_ei() {
        // Any candidate mean at or above the threshold must score no
        // better than best_score — for every variance up to var_ub,
        // including the degenerate σ ≈ 0 branch.
        check::check(
            "prune_threshold_is_conservative_for_ei",
            (
                f64s(-3.0..3.0), // f_best
                f64s(0.0..4.0),  // var_ub
                f64s(0.0..2.0),  // best_score
                f64s(0.0..5.0),  // mean offset above the threshold
                f64s(0.0..1.0),  // variance fraction of var_ub
            ),
            |&(f_best, var_ub, best_score, above, var_frac)| {
                let acq = Acquisition::default();
                let t = acq.prune_threshold(var_ub, f_best, best_score);
                if !t.is_finite() {
                    return Ok(()); // "never prune" is always safe
                }
                let mu = t + above;
                for var in [0.0, var_frac * var_ub, var_ub] {
                    let s = acq.score(mu, var, f_best);
                    prop_assert!(
                        s <= best_score + 1e-9,
                        "mu {mu} var {var}: score {s} beats best {best_score} \
                         past threshold {t}"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn prune_threshold_is_not_vacuous() {
        // A realistic mid-optimization state must produce a finite
        // threshold that actually admits the good candidates.
        let acq = Acquisition::default();
        let t = acq.prune_threshold(0.04, 0.5, 0.05);
        assert!(t.is_finite());
        // A mean clearly below f_best still scores above 0.05 and must
        // not be pruned.
        assert!(t > 0.3, "threshold {t} prunes promising candidates");
    }

    #[test]
    fn prune_threshold_refuses_non_ei_variants() {
        for acq in [
            Acquisition::ProbabilityOfImprovement { xi: 0.01 },
            Acquisition::LowerConfidenceBound { kappa: 1.0 },
        ] {
            assert_eq!(acq.prune_threshold(1.0, 0.5, 0.1), f64::INFINITY);
        }
    }

    #[test]
    fn cdf_is_monotone() {
        check::check(
            "cdf_is_monotone",
            (f64s(-6.0..6.0), f64s(-6.0..6.0)),
            |&(a, b)| {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
                Ok(())
            },
        );
    }

    #[test]
    fn erf_symmetry() {
        check::check("erf_symmetry", f64s(-4.0..4.0), |&x| {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            Ok(())
        });
    }
}
