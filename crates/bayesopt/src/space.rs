//! Constrained sample spaces.
//!
//! HBO's optimization variables (Section IV-C) are the resource-usage
//! vector `c` — constrained to the probability simplex (Constraints 8–9) —
//! joined with the triangle-count ratio `x ∈ [R_min, 1]` (Constraint 10).
//! [`SimplexBoxSpace`] models exactly that; [`BoxSpace`] covers plain
//! box-bounded problems (used by tests and the BNT baseline with no
//! triangle dimension).

use simcore::rand::Rng;

/// A constrained space of candidate points that the optimizer can sample
/// from, locally perturb within, and project onto.
pub trait SampleSpace {
    /// Dimension of points in this space.
    fn dim(&self) -> usize;

    /// Draws a uniform-ish random feasible point.
    fn sample(&self, rng: &mut dyn simcore::rand::RngCore) -> Vec<f64>;

    /// Draws a feasible point near `base` (Gaussian perturbation of width
    /// `scale`, projected back onto the feasible set).
    fn perturb(&self, base: &[f64], scale: f64, rng: &mut dyn simcore::rand::RngCore) -> Vec<f64> {
        let mut z: Vec<f64> = base.iter().map(|&v| v + scale * gaussian(rng)).collect();
        self.project(&mut z);
        z
    }

    /// Projects `z` onto the feasible set in place.
    fn project(&self, z: &mut [f64]);

    /// True if `z` satisfies the constraints within `tol`.
    fn contains(&self, z: &[f64], tol: f64) -> bool;
}

/// Standard normal via Box–Muller (object-safe: takes `&mut dyn RngCore`).
fn gaussian(rng: &mut dyn simcore::rand::RngCore) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// An axis-aligned box `∏ [lo_i, hi_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxSpace {
    bounds: Vec<(f64, f64)>,
}

impl BoxSpace {
    /// Creates a box from per-dimension `(lo, hi)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if empty or any `lo > hi`.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        assert!(!bounds.is_empty(), "box needs at least one dimension");
        for &(lo, hi) in &bounds {
            assert!(
                lo <= hi && lo.is_finite() && hi.is_finite(),
                "bad bound ({lo}, {hi})"
            );
        }
        BoxSpace { bounds }
    }

    /// The per-dimension bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }
}

impl SampleSpace for BoxSpace {
    fn dim(&self) -> usize {
        self.bounds.len()
    }

    fn sample(&self, rng: &mut dyn simcore::rand::RngCore) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
            .collect()
    }

    fn project(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.dim(), "dimension mismatch");
        for (v, &(lo, hi)) in z.iter_mut().zip(&self.bounds) {
            *v = v.clamp(lo, hi);
        }
    }

    fn contains(&self, z: &[f64], tol: f64) -> bool {
        z.len() == self.dim()
            && z.iter()
                .zip(&self.bounds)
                .all(|(&v, &(lo, hi))| v >= lo - tol && v <= hi + tol)
    }
}

/// HBO's joint space: the first `simplex_dim` coordinates form a
/// probability simplex (`c`, Constraints 8–9) and one trailing coordinate
/// is box-bounded (`x`, Constraint 10).
///
/// `simplex_dim` is the number of allocatable resources: 3 for the
/// paper's on-device space (CPU/GPU/NNAPI), 4 when the edge tier is in
/// play (`Delegate::Edge` becomes one more simplex coordinate — the share
/// of tasks offloaded — rather than a separate optimizer; see DESIGN.md
/// §6).
///
/// # Example
///
/// ```
/// use bayesopt::space::{SampleSpace, SimplexBoxSpace};
/// use simcore::rand::SeedableRng;
///
/// let space = SimplexBoxSpace::new(3, 0.2, 1.0);
/// let mut rng = simcore::rand::StdRng::seed_from_u64(0);
/// let z = space.sample(&mut rng);
/// let c_sum: f64 = z[..3].iter().sum();
/// assert!((c_sum - 1.0).abs() < 1e-9);
/// assert!(z[3] >= 0.2 && z[3] <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexBoxSpace {
    simplex_dim: usize,
    x_lo: f64,
    x_hi: f64,
}

impl SimplexBoxSpace {
    /// Creates the space: `simplex_dim` resources plus one ratio in
    /// `[x_lo, x_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `simplex_dim == 0` or the ratio bounds are invalid.
    pub fn new(simplex_dim: usize, x_lo: f64, x_hi: f64) -> Self {
        assert!(simplex_dim > 0, "need at least one resource");
        assert!(
            x_lo.is_finite() && x_hi.is_finite() && 0.0 <= x_lo && x_lo <= x_hi,
            "bad ratio bounds ({x_lo}, {x_hi})"
        );
        SimplexBoxSpace {
            simplex_dim,
            x_lo,
            x_hi,
        }
    }

    /// Number of simplex (resource) coordinates.
    pub fn simplex_dim(&self) -> usize {
        self.simplex_dim
    }

    /// Splits a point into its `(c, x)` parts.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    pub fn split<'a>(&self, z: &'a [f64]) -> (&'a [f64], f64) {
        assert_eq!(z.len(), self.dim(), "dimension mismatch");
        (&z[..self.simplex_dim], z[self.simplex_dim])
    }
}

impl SampleSpace for SimplexBoxSpace {
    fn dim(&self) -> usize {
        self.simplex_dim + 1
    }

    fn sample(&self, rng: &mut dyn simcore::rand::RngCore) -> Vec<f64> {
        // Uniform on the simplex: normalized standard exponentials
        // (Dirichlet(1, …, 1)).
        let mut z: Vec<f64> = (0..self.simplex_dim)
            .map(|_| -(rng.gen_range(f64::EPSILON..1.0f64)).ln())
            .collect();
        let sum: f64 = z.iter().sum();
        for v in &mut z {
            *v /= sum;
        }
        let x = if self.x_lo == self.x_hi {
            self.x_lo
        } else {
            rng.gen_range(self.x_lo..self.x_hi)
        };
        z.push(x);
        z
    }

    fn project(&self, z: &mut [f64]) {
        assert_eq!(z.len(), self.dim(), "dimension mismatch");
        // Clamp negatives, renormalize onto the simplex.
        let c = &mut z[..self.simplex_dim];
        let mut sum = 0.0;
        for v in c.iter_mut() {
            *v = v.max(0.0);
            sum += *v;
        }
        if sum <= 0.0 {
            let uniform = 1.0 / self.simplex_dim as f64;
            for v in c.iter_mut() {
                *v = uniform;
            }
        } else {
            for v in c.iter_mut() {
                *v /= sum;
            }
        }
        let x = &mut z[self.simplex_dim];
        *x = x.clamp(self.x_lo, self.x_hi);
    }

    fn contains(&self, z: &[f64], tol: f64) -> bool {
        if z.len() != self.dim() {
            return false;
        }
        let (c, x) = self.split(z);
        let sum: f64 = c.iter().sum();
        c.iter().all(|&v| (-tol..=1.0 + tol).contains(&v))
            && (sum - 1.0).abs() <= tol
            && x >= self.x_lo - tol
            && x <= self.x_hi + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s, vec as cvec};
    use simcore::prop_assert;
    use simcore::rand::SeedableRng;

    fn rng(seed: u64) -> simcore::rand::StdRng {
        simcore::rand::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn box_samples_stay_inside() {
        let space = BoxSpace::new(vec![(0.0, 1.0), (-2.0, 2.0)]);
        let mut r = rng(1);
        for _ in 0..100 {
            let z = space.sample(&mut r);
            assert!(space.contains(&z, 0.0), "{z:?}");
        }
    }

    #[test]
    fn box_project_clamps() {
        let space = BoxSpace::new(vec![(0.0, 1.0)]);
        let mut z = vec![3.0];
        space.project(&mut z);
        assert_eq!(z, vec![1.0]);
    }

    #[test]
    fn degenerate_box_dimension() {
        let space = BoxSpace::new(vec![(0.5, 0.5)]);
        let mut r = rng(2);
        assert_eq!(space.sample(&mut r), vec![0.5]);
    }

    #[test]
    fn simplex_samples_satisfy_constraints() {
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut r = rng(3);
        for _ in 0..200 {
            let z = space.sample(&mut r);
            assert!(space.contains(&z, 1e-9), "{z:?}");
        }
    }

    #[test]
    fn simplex_perturb_stays_feasible() {
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut r = rng(4);
        let base = space.sample(&mut r);
        for _ in 0..200 {
            let z = space.perturb(&base, 0.3, &mut r);
            assert!(space.contains(&z, 1e-9), "{z:?}");
        }
    }

    #[test]
    fn project_handles_all_negative_c() {
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut z = vec![-1.0, -2.0, -0.5, 0.0];
        space.project(&mut z);
        assert!(space.contains(&z, 1e-9));
        // Falls back to the uniform allocation.
        assert!((z[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_returns_c_and_x() {
        let space = SimplexBoxSpace::new(2, 0.0, 1.0);
        let (c, x) = space.split(&[0.3, 0.7, 0.5]);
        assert_eq!(c, &[0.3, 0.7]);
        assert_eq!(x, 0.5);
    }

    #[test]
    fn simplex_samples_cover_the_space() {
        // The sampler should not collapse to a corner: across many draws
        // every coordinate should sometimes dominate.
        let space = SimplexBoxSpace::new(3, 0.2, 1.0);
        let mut r = rng(5);
        let mut max_seen = [0.0f64; 3];
        for _ in 0..500 {
            let z = space.sample(&mut r);
            for i in 0..3 {
                max_seen[i] = max_seen[i].max(z[i]);
            }
        }
        for (i, m) in max_seen.iter().enumerate() {
            assert!(*m > 0.7, "coordinate {i} never dominated: max {m}");
        }
    }

    #[test]
    #[should_panic(expected = "bad ratio bounds")]
    fn inverted_ratio_bounds_panic() {
        SimplexBoxSpace::new(3, 0.9, 0.2);
    }

    #[test]
    fn four_resource_simplex_for_the_edge_tier() {
        // The edge-extended HBO space: 4 simplex coordinates + ratio.
        let space = SimplexBoxSpace::new(4, 0.2, 1.0);
        assert_eq!(space.dim(), 5);
        assert_eq!(space.simplex_dim(), 4);
        let mut r = rng(6);
        for _ in 0..200 {
            let z = space.sample(&mut r);
            assert!(space.contains(&z, 1e-9), "{z:?}");
            let sum: f64 = z[..4].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            let z2 = space.perturb(&z, 0.3, &mut r);
            assert!(space.contains(&z2, 1e-9), "{z2:?}");
        }
    }

    #[test]
    fn simplex_projection_is_idempotent() {
        check::check(
            "simplex_projection_is_idempotent",
            cvec(f64s(-2.0..2.0), 4..=4),
            |raw| {
                let space = SimplexBoxSpace::new(3, 0.2, 1.0);
                let mut z = raw.clone();
                space.project(&mut z);
                prop_assert!(space.contains(&z, 1e-9));
                let mut z2 = z.clone();
                space.project(&mut z2);
                for (a, b) in z.iter().zip(&z2) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
                Ok(())
            },
        );
    }
}
