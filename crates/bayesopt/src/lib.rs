//! Bayesian optimization over Gaussian-process surrogates, from scratch.
//!
//! The paper implements its optimizer with scikit-optimize (`skopt`); this
//! crate is the Rust equivalent, built exactly to the paper's
//! configuration (Section IV-C):
//!
//! * a Gaussian-process surrogate with the **Matérn 5/2** kernel (Eq. 7,
//!   length scale `ℓ = 1`),
//! * the **Expected Improvement** acquisition function (with probability
//!   of improvement and lower confidence bound also available, which the
//!   paper evaluated and rejected),
//! * known constraints (8)–(10): the resource-usage vector `c` lives on
//!   the probability simplex and the triangle ratio `x` in
//!   `[R_min, 1]` — handled by the constrained sample spaces in
//!   [`space`].
//!
//! The numerical core is a small dense linear-algebra module
//! ([`linalg`]: Cholesky factorization and triangular solves) — no
//! external math dependencies.
//!
//! # Example
//!
//! ```
//! use bayesopt::{BoConfig, BoOptimizer, space::BoxSpace};
//! use simcore::rand::SeedableRng;
//!
//! // Minimize (z - 0.3)^2 on [0, 1].
//! let space = BoxSpace::new(vec![(0.0, 1.0)]);
//! let mut bo = BoOptimizer::new(space, BoConfig::default());
//! let mut rng = simcore::rand::StdRng::seed_from_u64(7);
//! for _ in 0..25 {
//!     let z = bo.suggest(&mut rng);
//!     let cost = (z[0] - 0.3) * (z[0] - 0.3);
//!     bo.observe(z, cost);
//! }
//! let (best, _) = bo.best().unwrap();
//! assert!((best[0] - 0.3).abs() < 0.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod fastexp;
pub mod gp;
pub mod kernel;
pub mod linalg;
mod optimizer;
pub mod space;

pub use acquisition::Acquisition;
pub use gp::{GaussianProcess, PruneBounds};
pub use kernel::Kernel;
pub use optimizer::{BoConfig, BoOptimizer};
pub use space::SampleSpace;
