//! Covariance kernels for the Gaussian-process surrogate.

use crate::linalg::euclidean;

/// A stationary covariance kernel `k(z, z')`.
///
/// The paper uses **Matérn with ν = 5/2** (Eq. 7) with length scale
/// `ℓ = 1`; the other members of the family (ν = 1/2, 3/2, ∞ = RBF) are
/// provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Matérn ν = 1/2 (exponential kernel): very rough functions.
    Matern12 {
        /// Length scale `ℓ`.
        length_scale: f64,
        /// Signal variance `σ²_φ`.
        signal_var: f64,
    },
    /// Matérn ν = 3/2.
    Matern32 {
        /// Length scale `ℓ`.
        length_scale: f64,
        /// Signal variance `σ²_φ`.
        signal_var: f64,
    },
    /// Matérn ν = 5/2 — the paper's choice (Eq. 7).
    Matern52 {
        /// Length scale `ℓ`.
        length_scale: f64,
        /// Signal variance `σ²_φ`.
        signal_var: f64,
    },
    /// Squared exponential (RBF): infinitely smooth functions.
    Rbf {
        /// Length scale `ℓ`.
        length_scale: f64,
        /// Signal variance `σ²_φ`.
        signal_var: f64,
    },
}

impl Kernel {
    /// The paper's configuration: Matérn 5/2 with `ℓ = 1`, unit signal
    /// variance.
    pub fn paper_default() -> Self {
        Kernel::Matern52 {
            length_scale: 1.0,
            signal_var: 1.0,
        }
    }

    /// The same kernel family and signal variance with a new length scale
    /// — the hyperparameter that type-II MLE grid search varies.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn with_length_scale(self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "invalid length scale: {scale}"
        );
        match self {
            Kernel::Matern12 { signal_var, .. } => Kernel::Matern12 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Matern32 { signal_var, .. } => Kernel::Matern32 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Matern52 { signal_var, .. } => Kernel::Matern52 {
                length_scale: scale,
                signal_var,
            },
            Kernel::Rbf { signal_var, .. } => Kernel::Rbf {
                length_scale: scale,
                signal_var,
            },
        }
    }

    /// The kernel's length scale.
    pub fn length_scale(&self) -> f64 {
        match *self {
            Kernel::Matern12 { length_scale, .. }
            | Kernel::Matern32 { length_scale, .. }
            | Kernel::Matern52 { length_scale, .. }
            | Kernel::Rbf { length_scale, .. } => length_scale,
        }
    }

    /// The kernel's signal variance (its value at distance zero).
    pub fn signal_var(&self) -> f64 {
        match *self {
            Kernel::Matern12 { signal_var, .. }
            | Kernel::Matern32 { signal_var, .. }
            | Kernel::Matern52 { signal_var, .. }
            | Kernel::Rbf { signal_var, .. } => signal_var,
        }
    }

    /// Evaluates `k(a, b)`.
    ///
    /// Every kernel in this family is *stationary*: the covariance depends
    /// on `a` and `b` only through their Euclidean distance, so `eval` is
    /// exactly [`Kernel::distance`] followed by
    /// [`Kernel::eval_from_distance`]. Callers that evaluate several
    /// kernels (or several hyperparameter settings) over the same point
    /// set should compute the distances once and reuse them — that is what
    /// the GP's cached pairwise-distance matrix does.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different dimensions.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_from_distance(Self::distance(a, b))
    }

    /// The Euclidean distance `‖a − b‖` the stationary family is evaluated
    /// at — the kernel-independent (and hyperparameter-independent) half
    /// of [`Kernel::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different dimensions.
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        euclidean(a, b)
    }

    /// Evaluates the kernel in place over a slice of distances — the form
    /// the GP's blocked batch-predict path uses.
    ///
    /// In the default configuration this is exactly `eval_from_distance`
    /// mapped over the slice, bit for bit. With the `fast-exp` cargo
    /// feature the transcendental is [`crate::fastexp::fast_exp`] instead
    /// of libm's `exp` — a tight branch-free loop the compiler can
    /// vectorize, at a measured cost of a couple of ULP (see
    /// EXPERIMENTS.md). Pinned figures always build without the feature.
    pub fn eval_from_distance_batch(&self, rs: &mut [f64]) {
        #[cfg(not(feature = "fast-exp"))]
        for r in rs.iter_mut() {
            *r = self.eval_from_distance(*r);
        }
        #[cfg(feature = "fast-exp")]
        {
            use crate::fastexp::fast_exp;
            match *self {
                Kernel::Matern12 {
                    length_scale: l,
                    signal_var: s,
                } => {
                    for r in rs.iter_mut() {
                        *r = s * fast_exp(-*r / l);
                    }
                }
                Kernel::Matern32 {
                    length_scale: l,
                    signal_var: s,
                } => {
                    for r in rs.iter_mut() {
                        let q = 3.0_f64.sqrt() * *r / l;
                        *r = s * (1.0 + q) * fast_exp(-q);
                    }
                }
                Kernel::Matern52 {
                    length_scale: l,
                    signal_var: s,
                } => {
                    for r in rs.iter_mut() {
                        let q = 5.0_f64.sqrt() * *r / l;
                        *r = s * (1.0 + q + 5.0 * *r * *r / (3.0 * l * l)) * fast_exp(-q);
                    }
                }
                Kernel::Rbf {
                    length_scale: l,
                    signal_var: s,
                } => {
                    for r in rs.iter_mut() {
                        *r = s * fast_exp(-0.5 * (*r / l) * (*r / l));
                    }
                }
            }
        }
    }

    /// Evaluates the kernel as a function of the Euclidean distance `r`.
    pub fn eval_from_distance(&self, r: f64) -> f64 {
        match *self {
            Kernel::Matern12 {
                length_scale: l,
                signal_var: s,
            } => s * (-r / l).exp(),
            Kernel::Matern32 {
                length_scale: l,
                signal_var: s,
            } => {
                let q = 3.0_f64.sqrt() * r / l;
                s * (1.0 + q) * (-q).exp()
            }
            Kernel::Matern52 {
                length_scale: l,
                signal_var: s,
            } => {
                // Eq. (7): σ² (1 + √5 r/ℓ + 5r²/(3ℓ²)) exp(−√5 r/ℓ).
                let q = 5.0_f64.sqrt() * r / l;
                s * (1.0 + q + 5.0 * r * r / (3.0 * l * l)) * (-q).exp()
            }
            Kernel::Rbf {
                length_scale: l,
                signal_var: s,
            } => s * (-0.5 * (r / l) * (r / l)).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s, vec as cvec};
    use simcore::prop_assert;

    const KERNELS: [Kernel; 4] = [
        Kernel::Matern12 {
            length_scale: 1.0,
            signal_var: 1.0,
        },
        Kernel::Matern32 {
            length_scale: 1.0,
            signal_var: 1.0,
        },
        Kernel::Matern52 {
            length_scale: 1.0,
            signal_var: 1.0,
        },
        Kernel::Rbf {
            length_scale: 1.0,
            signal_var: 1.0,
        },
    ];

    #[test]
    fn zero_distance_gives_signal_variance() {
        for k in KERNELS {
            assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
        }
        let k = Kernel::Matern52 {
            length_scale: 1.0,
            signal_var: 2.5,
        };
        assert!((k.eval_from_distance(0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_default_matches_eq7() {
        let k = Kernel::paper_default();
        let r: f64 = 0.7;
        let expected =
            (1.0 + 5.0_f64.sqrt() * r + 5.0 * r * r / 3.0) * (-(5.0_f64.sqrt()) * r).exp();
        assert!((k.eval_from_distance(r) - expected).abs() < 1e-12);
        assert_eq!(k.length_scale(), 1.0);
        assert_eq!(k.signal_var(), 1.0);
    }

    #[test]
    fn with_length_scale_preserves_family_and_signal() {
        for k in KERNELS {
            let k2 = k.with_length_scale(0.25);
            assert_eq!(k2.length_scale(), 0.25);
            assert_eq!(k2.signal_var(), k.signal_var());
            assert_eq!(
                std::mem::discriminant(&k2),
                std::mem::discriminant(&k),
                "family must not change"
            );
        }
        let k = Kernel::Matern52 {
            length_scale: 1.0,
            signal_var: 2.5,
        };
        assert_eq!(k.with_length_scale(3.0).signal_var(), 2.5);
    }

    #[test]
    #[should_panic(expected = "invalid length scale")]
    fn with_length_scale_rejects_nonpositive() {
        Kernel::paper_default().with_length_scale(0.0);
    }

    #[test]
    fn eval_splits_into_distance_and_eval_from_distance() {
        let a = [0.3, 1.2, -0.5];
        let b = [1.0, 0.1, 0.4];
        for k in KERNELS {
            let split = k.eval_from_distance(Kernel::distance(&a, &b));
            assert_eq!(k.eval(&a, &b).to_bits(), split.to_bits());
        }
    }

    #[cfg(not(feature = "fast-exp"))]
    #[test]
    fn batch_eval_is_bit_identical_to_scalar_by_default() {
        let rs: Vec<f64> = (0..64).map(|i| i as f64 * 0.05).collect();
        for k in KERNELS {
            let mut batch = rs.clone();
            k.eval_from_distance_batch(&mut batch);
            for (&r, &v) in rs.iter().zip(&batch) {
                assert_eq!(v.to_bits(), k.eval_from_distance(r).to_bits());
            }
        }
    }

    #[cfg(feature = "fast-exp")]
    #[test]
    fn batch_eval_tracks_scalar_within_tolerance_under_fast_exp() {
        let rs: Vec<f64> = (0..64).map(|i| i as f64 * 0.05).collect();
        for k in KERNELS {
            let mut batch = rs.clone();
            k.eval_from_distance_batch(&mut batch);
            for (&r, &v) in rs.iter().zip(&batch) {
                let exact = k.eval_from_distance(r);
                assert!(
                    (v - exact).abs() <= 1e-14 + 1e-12 * exact.abs(),
                    "{k:?} at r = {r}: fast {v} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn smoother_kernels_decay_slower_at_short_range() {
        // Near r = 0 the rough Matérn 1/2 drops fastest.
        let r = 0.1;
        let v12 = KERNELS[0].eval_from_distance(r);
        let v32 = KERNELS[1].eval_from_distance(r);
        let v52 = KERNELS[2].eval_from_distance(r);
        assert!(v12 < v32 && v32 < v52);
    }

    #[test]
    fn kernels_are_monotone_decreasing_and_bounded() {
        check::check(
            "kernels_are_monotone_decreasing_and_bounded",
            (f64s(0.0..10.0), f64s(0.0..10.0)),
            |&(r1, r2)| {
                let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
                for k in KERNELS {
                    let a = k.eval_from_distance(lo);
                    let b = k.eval_from_distance(hi);
                    prop_assert!(
                        a >= b - 1e-12,
                        "{k:?} not decreasing: k({lo})={a} < k({hi})={b}"
                    );
                    prop_assert!(a <= 1.0 + 1e-12 && b >= 0.0);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn symmetric_in_arguments() {
        check::check(
            "symmetric_in_arguments",
            (cvec(f64s(-5.0..5.0), 3..=3), cvec(f64s(-5.0..5.0), 3..=3)),
            |(a, b)| {
                for k in KERNELS {
                    prop_assert!((k.eval(a, b) - k.eval(b, a)).abs() < 1e-12);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn gram_matrices_are_positive_semidefinite() {
        check::check(
            "gram_matrices_are_positive_semidefinite",
            cvec(cvec(f64s(-2.0..2.0), 2..=2), 2..6),
            |points| {
                use crate::linalg::{Cholesky, Matrix};
                for k in KERNELS {
                    let n = points.len();
                    // Jittered Gram matrix must be PD for distinct-ish points.
                    let gram = Matrix::from_fn(n, n, |r, c| {
                        k.eval(&points[r], &points[c]) + if r == c { 1e-6 } else { 0.0 }
                    });
                    prop_assert!(Cholesky::new(&gram).is_ok(), "{k:?} gram not PSD");
                }
                Ok(())
            },
        );
    }
}
