//! Memory-bandwidth coupling between rendering and inference.
//!
//! On a phone SoC every engine shares one LPDDR bus: heavy rasterization
//! saturates DRAM bandwidth and slows down NPU and CPU inference even when
//! their compute units are free. This is the second half of the paper's
//! Fig. 2 phenomenon — when virtual objects appear, *all* NNAPI tasks slow
//! down sharply, not just the operators that fall back to the GPU — and it
//! is why reducing the triangle count speeds AI tasks up across the board.
//!
//! The coupling is modeled quasi-statically: whenever the render load
//! changes, every AI stream's execution plan is rebuilt with its NPU and
//! CPU service times inflated by a factor linear in the GPU render
//! utilization (GPU compute stages are *not* inflated — they contend with
//! rendering directly through the processor-sharing server). Plans take
//! effect at each task's next inference, matching how a real interpreter
//! picks up contention between invocations.

use nnmodel::{Delegate, Model};
use simcore::SimDuration;
use soc::{DeviceProfile, SocProcs, Stage, StageSeq};

/// NPU service-time inflation coefficient. The NPU/TPU streams weights
/// and activations through DRAM with little cache, so it is hit hardest.
pub const BETA_NPU: f64 = 2.0;

/// CPU service-time inflation coefficient. Big cores hide most of the
/// traffic behind their caches.
pub const BETA_CPU: f64 = 0.5;

/// Render utilization below which the bus has headroom and inference is
/// unaffected. DRAM queueing is a threshold phenomenon: latency is flat
/// until the bus nears saturation, then climbs steeply.
pub const BANDWIDTH_KNEE: f64 = 0.65;

/// Congestion term: `((u - knee) / (1 - knee))²` above the knee, zero
/// below it.
pub fn congestion(utilization: f64) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    let over = ((u - BANDWIDTH_KNEE) / (1.0 - BANDWIDTH_KNEE)).max(0.0);
    over * over
}

/// GPU render utilization implied by a per-frame render cost: the
/// fraction of each vsync period the GPU spends rasterizing, capped at 1.
pub fn render_utilization(device: &DeviceProfile, visible_tris: f64) -> f64 {
    let frame_ms = device.render.gpu_frame(visible_tris).as_millis_f64();
    (frame_ms / device.frame_period.as_millis_f64()).min(1.0)
}

/// Applies the bandwidth coupling to an arbitrary stage sequence: NPU and
/// CPU compute stages are inflated by the congestion factor; GPU stages
/// and delays pass through unchanged.
pub fn inflate_stages(base: &StageSeq, procs: SocProcs, utilization: f64) -> StageSeq {
    let c = congestion(utilization);
    let npu_factor = 1.0 + BETA_NPU * c;
    let cpu_factor = 1.0 + BETA_CPU * c;
    let stages: Vec<Stage> = base
        .stages()
        .iter()
        .map(|s| match *s {
            Stage::Compute { proc, work } if proc == procs.npu => Stage::Compute {
                proc,
                work: SimDuration::from_millis_f64(work.as_millis_f64() * npu_factor),
            },
            Stage::Compute { proc, work } if proc == procs.cpu => Stage::Compute {
                proc,
                work: SimDuration::from_millis_f64(work.as_millis_f64() * cpu_factor),
            },
            other => other,
        })
        .collect();
    StageSeq::new(stages)
}

/// Builds a model's execution plan for a delegate with bandwidth inflation
/// applied for the given render utilization. Returns `None` for
/// incompatible (NA) pairs.
///
/// With `utilization = 0` (no objects on screen) this is exactly the
/// calibrated Table I plan.
pub fn inflated_plan(
    model: &Model,
    delegate: Delegate,
    device: &DeviceProfile,
    procs: SocProcs,
    utilization: f64,
) -> Option<StageSeq> {
    let base = model.plan(delegate, device, procs)?;
    Some(inflate_stages(&base, procs, utilization))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnmodel::ModelZoo;

    #[test]
    fn zero_utilization_is_the_calibrated_plan() {
        let device = DeviceProfile::pixel7();
        let (_, procs) = device.topology();
        let zoo = ModelZoo::pixel7();
        for m in zoo.iter() {
            for d in Delegate::ALL {
                let base = m.plan(d, &device, procs);
                let inflated = inflated_plan(m, d, &device, procs, 0.0);
                assert_eq!(base, inflated, "{} on {d}", m.name());
            }
        }
    }

    #[test]
    fn inflation_slows_npu_most() {
        let device = DeviceProfile::pixel7();
        let (_, procs) = device.topology();
        let zoo = ModelZoo::pixel7();
        let m = zoo.get("inception-v1-q").unwrap(); // NPU-heavy NNAPI plan
        let base = m.plan(Delegate::Nnapi, &device, procs).unwrap();
        let hot = inflated_plan(m, Delegate::Nnapi, &device, procs, 1.0).unwrap();
        let ratio = hot.nominal_total().as_millis_f64() / base.nominal_total().as_millis_f64();
        // Mostly-NPU model: close to 1 + BETA_NPU (minus copies).
        assert!(ratio > 2.0, "ratio = {ratio}");

        let cpu_hot = inflated_plan(m, Delegate::Cpu, &device, procs, 1.0).unwrap();
        let cpu_base = m.plan(Delegate::Cpu, &device, procs).unwrap();
        let cpu_ratio =
            cpu_hot.nominal_total().as_millis_f64() / cpu_base.nominal_total().as_millis_f64();
        assert!((cpu_ratio - (1.0 + BETA_CPU)).abs() < 1e-6);
        assert!(cpu_ratio < ratio);
    }

    #[test]
    fn gpu_delegate_plans_are_not_inflated() {
        // GPU compute contends with rendering through the PS server; no
        // double counting.
        let device = DeviceProfile::pixel7();
        let (_, procs) = device.topology();
        let zoo = ModelZoo::pixel7();
        let m = zoo.get("model-metadata").unwrap();
        let base = m.plan(Delegate::Gpu, &device, procs).unwrap();
        let hot = inflated_plan(m, Delegate::Gpu, &device, procs, 1.0).unwrap();
        assert_eq!(base, hot);
    }

    #[test]
    fn congestion_has_a_knee() {
        assert_eq!(congestion(0.0), 0.0);
        assert_eq!(congestion(BANDWIDTH_KNEE), 0.0);
        assert_eq!(congestion(1.0), 1.0);
        // Convex above the knee.
        assert!(congestion(0.7) < 0.5 * congestion(0.9));
    }

    #[test]
    fn below_knee_plans_are_uninflated() {
        let device = DeviceProfile::pixel7();
        let (_, procs) = device.topology();
        let zoo = ModelZoo::pixel7();
        let m = zoo.get("mobilenet-v1").unwrap();
        let base = m.plan(Delegate::Nnapi, &device, procs);
        let light = inflated_plan(m, Delegate::Nnapi, &device, procs, 0.4);
        assert_eq!(base, light);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let device = DeviceProfile::pixel7();
        assert_eq!(render_utilization(&device, 0.0), 0.6 / 16.7);
        assert_eq!(render_utilization(&device, 1e9), 1.0);
        let mid = render_utilization(&device, 400_000.0);
        assert!(mid > 0.6 && mid < 0.9, "mid = {mid}");
    }
}
