//! Hand-rolled JSON row rendering shared by the sweep binaries.
//!
//! Every sweep (`edge_offload`, `fleet_sweep`, `stadium_sweep`) emits one
//! JSON object per line; the build is hermetic, so rows are rendered by
//! hand instead of through a serialization crate. This module centralizes
//! the escaping-free builder those sweeps previously each reimplemented,
//! so the field formats (`{:.6}` for milliseconds, `null` for empty
//! windows, …) stay byte-identical across binaries — the golden cells in
//! `tests/end_to_end.rs` pin the exact output bytes.
//!
//! Keys and string values are written verbatim (no escaping): sweep rows
//! only ever carry identifier-like names. Debug builds assert that.

/// Renders an optional millisecond statistic with the sweeps' fixed
/// 6-decimal format, or JSON `null` when the window had no completions —
/// so rows distinguish "nothing finished" from a genuine 0 ms mean.
pub fn fmt_opt_ms(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "null".to_owned(),
    }
}

/// Incremental builder for one JSON row. Fields appear in call order;
/// [`JsonRow::finish`] closes the object.
///
/// ```
/// use marsim::rows::JsonRow;
/// let row = JsonRow::new("demo").u64("n", 3).f64("x", 0.5, 3).finish();
/// assert_eq!(row, "{\"sweep\":\"demo\",\"n\":3,\"x\":0.500}");
/// ```
#[derive(Debug, Clone)]
pub struct JsonRow {
    buf: String,
}

impl JsonRow {
    /// Starts a row whose first field is `"sweep":"<name>"` — the tag
    /// every sweep row leads with.
    pub fn new(sweep: &str) -> Self {
        let mut row = JsonRow {
            buf: String::with_capacity(256),
        };
        row.buf.push('{');
        row.push_key("sweep");
        row.push_str_value(sweep);
        row
    }

    fn push_key(&mut self, key: &str) {
        debug_assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "row key {key:?} needs escaping"
        );
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    fn push_str_value(&mut self, v: &str) {
        debug_assert!(
            !v.contains(['"', '\\']) && !v.chars().any(|c| c.is_control()),
            "row value {v:?} needs escaping"
        );
        self.buf.push('"');
        self.buf.push_str(v);
        self.buf.push('"');
    }

    /// Adds a string field (written verbatim, no escaping).
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.push_key(key);
        self.push_str_value(v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.push_key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.push_key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a float field rendered with exactly `prec` decimals.
    pub fn f64(mut self, key: &str, v: f64, prec: usize) -> Self {
        self.push_key(key);
        self.buf.push_str(&format!("{v:.prec$}"));
        self
    }

    /// Adds an optional millisecond statistic ([`fmt_opt_ms`] format).
    pub fn opt_ms(mut self, key: &str, v: Option<f64>) -> Self {
        self.push_key(key);
        self.buf.push_str(&fmt_opt_ms(v));
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested
    /// object, array, or `null`).
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.push_key(key);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_field_kind_in_call_order() {
        let row = JsonRow::new("stadium")
            .str("policy", "jsq")
            .u64("clients", 32)
            .bool("warm", true)
            .f64("uplink_mbps", 80.0, 3)
            .opt_ms("mean_ms", Some(12.5))
            .opt_ms("p95_ms", None)
            .raw("servers", "[{\"admitted\":4}]")
            .finish();
        assert_eq!(
            row,
            "{\"sweep\":\"stadium\",\"policy\":\"jsq\",\"clients\":32,\"warm\":true,\
             \"uplink_mbps\":80.000,\"mean_ms\":12.500000,\"p95_ms\":null,\
             \"servers\":[{\"admitted\":4}]}"
        );
    }

    #[test]
    fn fmt_opt_ms_distinguishes_empty_from_zero() {
        assert_eq!(fmt_opt_ms(None), "null");
        assert_eq!(fmt_opt_ms(Some(0.0)), "0.000000");
        assert_eq!(fmt_opt_ms(Some(1.0 / 3.0)), "0.333333");
    }
}
