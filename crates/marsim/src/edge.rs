//! Edge offloading: the [`EdgeWorld`] couples N copies of the MAR app to
//! one shared wireless link profile and edge inference server, making
//! **Edge** a fourth allocation target for HBO (DESIGN.md §6).
//!
//! # World model
//!
//! The fleet is symmetric: every client runs the same scenario on the
//! same device and applies the same HBO configuration, as a venue full of
//! identical MAR users would. Locally the clients do not contend with
//! each other (each has its own SoC), so one [`MarApp`] instance stands
//! in for all of them; what they *do* share is the edge server and the
//! link profile, modeled by one [`edgelink::EdgeSim`] carrying one flow
//! per `(client, edge-allocated task)`. A task allocated to Edge leaves
//! only a small serialization stub on the SoC
//! ([`MarApp::set_offloaded`]); its latency is measured from the edge
//! simulation instead.
//!
//! The optimizer is unchanged: HBO sees Edge as one more simplex
//! coordinate and one more latency column in the task profiles, and the
//! edge cost (uplink serialization + queueing + inference + downlink)
//! reaches it the same way SoC contention does — through the measured
//! `(Q, ε)` of each control period.

pub use edgelink::{Direction, LinkParams, ServerParams, SharedCell};

use edgelink::{ClientSpec, EdgeSim};
use hbo_core::{
    best_local_allocation, edge_only_allocation, HboConfig, HboController, HboPoint, StoredConfig,
    TaskProfile, WarmCache,
};
use nnmodel::Delegate;
use simcore::rand::SeedableRng;
use simcore::rng::mix;
use simcore::trace::Tracer;
use simcore::{QueueKind, SimTime};

use crate::app::{task_period_ms, MarApp, TASK_GAP_MS, TASK_JITTER_MS};
use crate::experiment::{
    point_from_stored, scenario_signature, seed_fits, trace_hbo_window, warm_variant, HboRunResult,
    WarmRunResult, CONTROL_PERIOD_SECS,
};
use crate::rows::{fmt_opt_ms, JsonRow};
use crate::scenario::ScenarioSpec;
use crate::telemetry::TelemetrySummary;

/// Warm-up before the first measurement (mirrors `experiment::run_hbo`).
const WARMUP_SECS: f64 = 1.0;

/// The edge deployment a scenario offloads to: link profile, server
/// sizing, fleet size, and per-request payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSpec {
    /// Per-client wireless link parameters.
    pub link: LinkParams,
    /// Shared edge inference server sizing.
    pub server: ServerParams,
    /// Number of identical clients sharing the server.
    pub clients: usize,
    /// Request payload per inference (input tensors), in bytes.
    pub request_bytes: u64,
    /// Response payload per inference (detections/labels), in bytes.
    pub response_bytes: u64,
    /// Edge inference time as a fraction of the task's best on-device
    /// latency (server GPUs are faster than phone accelerators).
    pub server_speedup: f64,
    /// On-device serialization/compression cost per offloaded inference,
    /// in milliseconds (the stub left on the SoC).
    pub client_overhead_ms: f64,
    /// When set, all clients contend for this shared cell instead of
    /// owning private radio pairs; `link` keeps supplying the per-transfer
    /// loss/jitter/propagation profile.
    pub shared: Option<SharedCell>,
}

impl EdgeSpec {
    /// A Wi-Fi deployment with a small shared server and `clients` users.
    pub fn wifi(clients: usize) -> Self {
        EdgeSpec {
            link: LinkParams::wifi(),
            server: ServerParams::small(),
            clients,
            request_bytes: 32 * 1024,
            response_bytes: 4 * 1024,
            server_speedup: 0.15,
            client_overhead_ms: 0.5,
            shared: None,
        }
    }

    /// Sets the uplink bandwidth (downlink follows at 2×, the usual
    /// asymmetry) — the knob the `edge_offload` sweep turns.
    pub fn with_uplink_mbps(mut self, mbps: f64) -> Self {
        self.link.uplink_mbps = mbps;
        self.link.downlink_mbps = 2.0 * mbps;
        self
    }

    /// Switches the fleet onto a shared contended cell. HBO's `τ^e`
    /// estimate then plans with the effective per-client bandwidth at the
    /// current population instead of the private link rate.
    pub fn with_shared_cell(mut self, cell: SharedCell) -> Self {
        self.shared = Some(cell);
        self
    }

    /// Edge inference time for a task whose best on-device latency is
    /// `best_local_ms` (floored so trivial models still pay a kernel
    /// launch).
    pub fn infer_ms(&self, best_local_ms: f64) -> f64 {
        (best_local_ms * self.server_speedup).max(0.5)
    }

    /// The link profile HBO plans with: the private link as-is, or — on a
    /// shared cell — the same profile with both bandwidths replaced by the
    /// effective per-client share at this fleet size.
    pub fn planning_link(&self) -> LinkParams {
        match self.shared {
            None => self.link,
            Some(cell) => LinkParams {
                uplink_mbps: cell.effective_client_mbps(Direction::Up, self.clients),
                downlink_mbps: cell.effective_client_mbps(Direction::Down, self.clients),
                ..self.link
            },
        }
    }

    /// Unloaded offload latency for such a task — the Edge `τ^e`.
    pub fn offload_estimate_ms(&self, best_local_ms: f64) -> f64 {
        self.planning_link().unloaded_offload_ms(
            self.request_bytes,
            self.response_bytes,
            self.infer_ms(best_local_ms),
        )
    }
}

/// Edge-side observations of one measurement window (absent when no task
/// was allocated to Edge).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStats {
    /// p95 round-trip latency over all flows' completions, in ms.
    /// `None` when the window completed no round trip — a saturated or
    /// fully-rejecting window has no latency distribution, and reporting
    /// `0.0` would be indistinguishable from an impossibly fast one.
    pub p95_ms: Option<f64>,
    /// Mean round-trip latency over all flows' completions, in ms.
    /// `None` when `completed == 0` (same rationale as `p95_ms`).
    pub mean_ms: Option<f64>,
    /// Round trips completed across the fleet.
    pub completed: u64,
    /// Admission rejections across the fleet.
    pub rejected: u64,
    /// Time-weighted average busy server lanes.
    pub avg_busy_lanes: f64,
}

/// A fleet measurement over one control period: the on-device
/// [`crate::Measurement`] with edge-allocated tasks' latencies replaced
/// by the shared-edge round-trip times.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeMeasurement {
    /// Average virtual-object quality `Q`.
    pub quality: f64,
    /// Average normalized AI latency `ε`, with Edge tasks measured over
    /// the shared link + server.
    pub epsilon: f64,
    /// Mean per-task latency (fleet mean for Edge tasks), in task order.
    pub per_task_ms: Vec<f64>,
    /// Edge-side stats, when any task was offloaded.
    pub edge: Option<EdgeStats>,
    /// Simulated time at the end of the window.
    pub at: SimTime,
}

impl EdgeMeasurement {
    /// The reward `B = Q − w ε`.
    pub fn reward(&self, w: f64) -> f64 {
        hbo_core::reward(self.quality, self.epsilon, w)
    }
}

/// A multi-client MAR session with edge offloading (module docs for the
/// world model).
#[derive(Debug)]
pub struct EdgeWorld {
    edge: EdgeSpec,
    app: MarApp,
    expected_ms: Vec<f64>,
    /// Edge inference time per task.
    infer_ms: Vec<f64>,
    /// Fallback latency per task when a window completes no round trip.
    estimate_ms: Vec<f64>,
    /// Best on-device delegate per task (placeholder under the stub).
    local_best: Vec<Delegate>,
    /// The allocation currently applied (may contain [`Delegate::Edge`]).
    alloc: Vec<Delegate>,
    master_seed: u64,
    /// Measurement windows completed (advances the edge RNG stream).
    epoch: u64,
    /// Tracer shared with the app; per-window edge sims attach to it with
    /// a window-start time offset so their events land on the app
    /// timeline.
    tracer: Tracer,
    /// Edge counters accumulated across every measurement window (each
    /// window runs a fresh [`EdgeSim`] which is dropped afterwards).
    cum_rejected: u64,
    cum_retransmits: u64,
    cum_handovers: u64,
    cum_medium_reallocs: u64,
    edge_peak_queue: usize,
    /// Future-event-list kind for every per-window [`EdgeSim`], inherited
    /// from the scenario so the device and edge sims always agree.
    queue: QueueKind,
}

impl EdgeWorld {
    /// Builds the fleet for a scenario with an [`EdgeSpec`].
    ///
    /// # Panics
    ///
    /// Panics if `spec.edge` is `None` or names no clients.
    pub fn new(spec: &ScenarioSpec, seed: u64) -> Self {
        Self::new_traced(spec, seed, Tracer::disabled())
    }

    /// Builds the fleet like [`Self::new`] with a tracer installed on the
    /// on-device app and every per-window edge sim (radio and server-lane
    /// spans land on the app timeline via a window-start offset). A
    /// disabled tracer makes this identical to [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if `spec.edge` is `None` or names no clients.
    pub fn new_traced(spec: &ScenarioSpec, seed: u64, tracer: Tracer) -> Self {
        let edge = spec
            .edge
            .expect("EdgeWorld requires ScenarioSpec::with_edge");
        assert!(edge.clients >= 1, "need at least one client");
        let profiles = spec.profiles();
        let infer_ms: Vec<f64> = profiles
            .iter()
            .map(|p| edge.infer_ms(best_local_ms(p)))
            .collect();
        let estimate_ms: Vec<f64> = profiles
            .iter()
            .map(|p| edge.offload_estimate_ms(best_local_ms(p)))
            .collect();
        let app = MarApp::new_traced(spec, tracer.clone());
        let alloc = app.allocation();
        EdgeWorld {
            edge,
            expected_ms: profiles.iter().map(|p| p.expected_latency()).collect(),
            infer_ms,
            estimate_ms,
            local_best: best_local_allocation(&profiles),
            alloc,
            app,
            master_seed: seed,
            epoch: 0,
            tracer,
            cum_rejected: 0,
            cum_retransmits: 0,
            cum_handovers: 0,
            cum_medium_reallocs: 0,
            edge_peak_queue: 0,
            queue: spec.queue,
        }
    }

    /// The on-device app shared by every (locally independent) client.
    pub fn app(&self) -> &MarApp {
        &self.app
    }

    /// Places every pending virtual object.
    pub fn place_all_objects(&mut self) {
        self.app.place_all_objects();
    }

    /// Advances the on-device simulation (edge flows only run inside
    /// measurement windows).
    pub fn run_for_secs(&mut self, secs: f64) {
        self.app.run_for_secs(secs);
    }

    /// The allocation currently applied, in task order.
    pub fn allocation(&self) -> Vec<Delegate> {
        self.alloc.clone()
    }

    /// Applies a full HBO configuration. Edge-allocated tasks leave a
    /// serialization stub on the SoC; everything else is a plain
    /// [`MarApp::apply`].
    pub fn apply(&mut self, point: &HboPoint) {
        // set_allocation rejects Edge entries, so Edge tasks first get
        // their best local delegate as a placeholder plan...
        let local: Vec<Delegate> = point
            .allocation
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                if d == Delegate::Edge {
                    self.local_best[i]
                } else {
                    d
                }
            })
            .collect();
        self.app.set_allocation(&local);
        // ...then the placeholder is overwritten by the offload stub.
        for (i, &d) in point.allocation.iter().enumerate() {
            if d == Delegate::Edge {
                self.app.set_offloaded(i, self.edge.client_overhead_ms);
            }
        }
        self.app.set_triangle_ratio(point.x);
        self.alloc = point.allocation.clone();
    }

    /// Runs one control period on both simulations and measures the fleet
    /// `(Q, ε)` over it. Each window's edge flows draw from a fresh
    /// `(master seed, epoch)` stream, so a world is deterministic given
    /// its call sequence.
    pub fn measure_for_secs(&mut self, secs: f64) -> EdgeMeasurement {
        let edge_tasks: Vec<usize> = self
            .alloc
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Delegate::Edge)
            .map(|(i, _)| i)
            .collect();
        let window_start = self.app.now();
        let base = self.app.measure_for_secs(secs);
        let mut per_task_ms = base.per_task_ms;
        let mut edge_stats = None;
        if !edge_tasks.is_empty() {
            let mut flows = Vec::new();
            for client in 0..self.edge.clients {
                for &t in &edge_tasks {
                    flows.push(ClientSpec {
                        label: format!("c{client}/t{t}"),
                        request_bytes: self.edge.request_bytes,
                        response_bytes: self.edge.response_bytes,
                        infer_ms: self.infer_ms[t],
                        gap_ms: TASK_GAP_MS,
                        period_ms: task_period_ms(t),
                        jitter_ms: TASK_JITTER_MS,
                    });
                }
            }
            let seed = mix(self.master_seed, self.epoch);
            // The edge sim's clock starts at zero each window; shifting
            // its tracer by the window start puts its spans on the app
            // timeline (and the sink's track dedup keeps one set of
            // radio/lane tracks across windows).
            let window_tracer = self.tracer.offset_by(window_start - SimTime::ZERO);
            let mut esim = match self.edge.shared {
                None => EdgeSim::new_traced_with_queue(
                    self.edge.link,
                    self.edge.server,
                    flows,
                    seed,
                    window_tracer,
                    self.queue,
                ),
                Some(cell) => EdgeSim::new_shared_traced_with_queue(
                    self.edge.link,
                    self.edge.server,
                    cell,
                    flows,
                    seed,
                    window_tracer,
                    self.queue,
                ),
            };
            esim.run_for_secs(secs);

            // Fleet-mean latency per edge task (flows are laid out
            // client-major, task-minor).
            let k = edge_tasks.len();
            for (j, &t) in edge_tasks.iter().enumerate() {
                let mut sum = 0.0;
                let mut n = 0u64;
                for client in 0..self.edge.clients {
                    let m = esim.metrics(client * k + j);
                    if m.completed() > 0 {
                        sum += m.latency_overall().mean();
                        n += 1;
                    }
                }
                per_task_ms[t] = if n > 0 {
                    sum / n as f64
                } else {
                    self.estimate_ms[t]
                };
            }

            // Pooled fleet latency distribution for the reported p95.
            let mut pooled: Vec<f64> = (0..esim.client_count())
                .flat_map(|c| esim.metrics(c).samples().iter().map(|&(_, l)| l))
                .collect();
            pooled.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let (_, rejected, _) = esim.server_counters();
            self.cum_rejected += rejected;
            self.cum_retransmits += esim.total_retransmits();
            self.cum_handovers += esim.handovers();
            self.cum_medium_reallocs += esim.medium_reallocs();
            self.edge_peak_queue = self.edge_peak_queue.max(esim.peak_queue());
            edge_stats = Some(EdgeStats {
                p95_ms: percentile(&pooled, 0.95),
                mean_ms: if pooled.is_empty() {
                    None
                } else {
                    Some(pooled.iter().sum::<f64>() / pooled.len() as f64)
                },
                completed: pooled.len() as u64,
                rejected,
                avg_busy_lanes: esim.avg_busy_lanes(),
            });
        }
        self.epoch += 1;
        let epsilon = hbo_core::normalized_latency(&per_task_ms, &self.expected_ms);
        EdgeMeasurement {
            quality: base.quality,
            epsilon,
            per_task_ms,
            edge: edge_stats,
            at: base.at,
        }
    }

    /// Telemetry totals for the whole session: the on-device summary
    /// ([`MarApp::telemetry`]) plus the edge counters accumulated across
    /// every measurement window.
    pub fn telemetry(&self) -> TelemetrySummary {
        TelemetrySummary {
            edge_rejected: self.cum_rejected,
            edge_retransmits: self.cum_retransmits,
            edge_peak_queue: self.edge_peak_queue,
            cluster_handovers: self.cum_handovers,
            medium_reallocs: self.cum_medium_reallocs,
            ..self.app.telemetry()
        }
    }
}

/// Best on-device latency of a (possibly edge-extended) profile.
fn best_local_ms(p: &TaskProfile) -> f64 {
    [Delegate::Cpu, Delegate::Gpu, Delegate::Nnapi]
        .into_iter()
        .filter_map(|d| p.latency_on(d))
        .fold(f64::INFINITY, f64::min)
}

/// Nearest-rank percentile of an ascending-sorted slice; `None` when the
/// slice is empty (an empty sample set has no percentile — fabricating
/// `0.0` here would make a fully-rejecting window look infinitely fast,
/// and the `clamp(1, len)` below needs `len >= 1` to be well-formed).
fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    Some(sorted[idx])
}

/// One full HBO activation on an [`EdgeWorld`]: identical to
/// [`crate::experiment::run_hbo`] but with Edge in the decision space and
/// the fleet measurement in the loop.
///
/// # Panics
///
/// Panics if `spec.edge` is `None`.
pub fn run_edge_hbo(spec: &ScenarioSpec, config: &HboConfig, seed: u64) -> HboRunResult {
    run_edge_hbo_traced(spec, config, seed, Tracer::disabled())
}

/// [`run_edge_hbo`] with a tracer: SoC spans, per-window radio/server-lane
/// spans, `"hbo"` control-window spans, and BO per-suggest spans all land
/// in one buffer. A disabled tracer makes this bit-identical to
/// [`run_edge_hbo`].
///
/// # Panics
///
/// Panics if `spec.edge` is `None`.
pub fn run_edge_hbo_traced(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
) -> HboRunResult {
    run_edge_hbo_inner(spec, config, seed, tracer, None)
}

/// The shared edge-activation driver behind [`run_edge_hbo_traced`] and
/// [`run_edge_hbo_warm`] (mirrors `experiment::run_hbo_inner`).
fn run_edge_hbo_inner(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
    warm_seed: Option<&StoredConfig>,
) -> HboRunResult {
    let mut world = EdgeWorld::new_traced(spec, mix(seed, 0xED6E_0001), tracer.clone());
    let hbo_track = tracer.register_track("hbo", "hbo control");
    world.place_all_objects();
    world.run_for_secs(WARMUP_SECS);
    let mut hbo = HboController::new(spec.profiles(), config.clone());
    hbo.set_tracer(tracer.clone());
    let mut rng = simcore::rand::StdRng::seed_from_u64(seed);
    let incumbent = hbo.incumbent_point(
        world.allocation(),
        world.app().scene().overall_ratio().min(1.0),
    );
    world.apply(&incumbent);
    let start = world.app().now();
    let m = world.measure_for_secs(CONTROL_PERIOD_SECS);
    hbo.observe(incumbent, m.quality, m.epsilon);
    trace_hbo_window(&tracer, hbo_track, 0, start, m.at, &hbo.records()[0]);
    let mut seeded_windows = 1u64; // the incumbent costs no suggest call
    if let Some(stored) = warm_seed {
        let point = point_from_stored(stored);
        world.apply(&point);
        let start = world.app().now();
        let m = world.measure_for_secs(CONTROL_PERIOD_SECS);
        hbo.observe(point, m.quality, m.epsilon);
        trace_hbo_window(&tracer, hbo_track, 1, start, m.at, &hbo.records()[1]);
        seeded_windows += 1;
    }
    while !hbo.is_done() {
        hbo.set_trace_now(world.app().now());
        let point = hbo.next_point(&mut rng);
        world.apply(&point);
        let start = world.app().now();
        let m = world.measure_for_secs(CONTROL_PERIOD_SECS);
        hbo.observe(point, m.quality, m.epsilon);
        let iter = hbo.completed_iterations() - 1;
        trace_hbo_window(&tracer, hbo_track, iter, start, m.at, &hbo.records()[iter]);
    }
    let best = hbo
        .best()
        .expect("activation ran at least one iteration")
        .clone();
    let mut telemetry = world.telemetry();
    telemetry.bo_suggests = hbo.completed_iterations() as u64 - seeded_windows;
    HboRunResult {
        scenario: spec.name.clone(),
        best_cost_trace: hbo.best_cost_trace(),
        records: hbo.records().to_vec(),
        best,
        telemetry,
    }
}

/// [`run_edge_hbo`] with the fleet-wide warm-start cache in the loop
/// (mirrors [`crate::experiment::run_hbo_warm`], with the edge dimension
/// in the signature and a 4-simplex seed guard).
///
/// # Panics
///
/// Panics if `spec.edge` is `None`.
pub fn run_edge_hbo_warm(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    cache: &mut WarmCache,
) -> WarmRunResult {
    let signature = scenario_signature(spec);
    let seed_config = cache
        .find(&signature)
        .filter(|s| seed_fits(s, spec))
        .cloned();
    let warm_hit = seed_config.is_some();
    let mut run = match &seed_config {
        Some(stored) => run_edge_hbo_inner(
            spec,
            &warm_variant(config),
            seed,
            Tracer::disabled(),
            Some(stored),
        ),
        None => run_edge_hbo_inner(spec, config, seed, Tracer::disabled(), None),
    };
    run.telemetry.warm_hits = warm_hit as u64;
    run.telemetry.warm_misses = !warm_hit as u64;
    cache.store(
        signature,
        StoredConfig {
            c: run.best.point.c.clone(),
            x: run.best.point.x,
            allocation: run.best.point.allocation.clone(),
            reward: -run.best.cost,
        },
    );
    WarmRunResult {
        run,
        warm_hit,
        signature,
    }
}

/// The measured outcome of one system on an edge scenario.
#[derive(Debug, Clone)]
pub struct EdgeSystemOutcome {
    /// `"local-only"`, `"edge-only"`, or `"hbo-joint"`.
    pub system: &'static str,
    /// Final allocation, in task order.
    pub allocation: Vec<Delegate>,
    /// Final triangle ratio.
    pub x: f64,
    /// Fleet measurement under the final configuration.
    pub measurement: EdgeMeasurement,
}

impl EdgeSystemOutcome {
    /// The reward `B = Q − w ε`.
    pub fn reward(&self, w: f64) -> f64 {
        self.measurement.reward(w)
    }
}

/// Applies a fixed configuration to a fresh fleet and measures it over an
/// extended window.
pub fn evaluate_fixed_edge(
    spec: &ScenarioSpec,
    allocation: &[Delegate],
    x: f64,
    seed: u64,
) -> EdgeMeasurement {
    let mut world = EdgeWorld::new(spec, seed);
    world.place_all_objects();
    let point = HboPoint {
        z: Vec::new(),
        c: Vec::new(),
        x,
        allocation: allocation.to_vec(),
    };
    world.apply(&point);
    world.run_for_secs(WARMUP_SECS);
    world.measure_for_secs(2.0 * CONTROL_PERIOD_SECS)
}

/// Compares the three edge-aware systems on one scenario:
///
/// - **local-only** — every task on its best on-device resource, full
///   quality (the no-edge status quo);
/// - **edge-only** — every edge-capable task offloaded, full quality
///   (naive "the cloud is faster" policy);
/// - **hbo-joint** — HBO optimizing allocation (including Edge) and the
///   triangle ratio jointly.
///
/// # Panics
///
/// Panics if `spec.edge` is `None`.
pub fn compare_edge_systems(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
) -> Vec<EdgeSystemOutcome> {
    compare_edge_systems_traced(spec, config, seed, Tracer::disabled()).0
}

/// [`compare_edge_systems`] with a tracer on the HBO activation (the
/// fixed-policy evaluations stay untraced — they would overlap the same
/// tracks at the same simulated times). Also returns the activation's
/// telemetry totals. A disabled tracer reproduces
/// [`compare_edge_systems`] bit-identically.
pub fn compare_edge_systems_traced(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
) -> (Vec<EdgeSystemOutcome>, TelemetrySummary) {
    let profiles = spec.profiles();
    let local = best_local_allocation(&profiles);
    let edge_only = edge_only_allocation(&profiles);
    let hbo_run = run_edge_hbo_traced(spec, config, seed, tracer);
    let eval_seed = mix(seed, 0xED6E_0002);
    let outcomes = vec![
        EdgeSystemOutcome {
            system: "local-only",
            measurement: evaluate_fixed_edge(spec, &local, 1.0, eval_seed),
            allocation: local,
            x: 1.0,
        },
        EdgeSystemOutcome {
            system: "edge-only",
            measurement: evaluate_fixed_edge(spec, &edge_only, 1.0, eval_seed),
            allocation: edge_only,
            x: 1.0,
        },
        EdgeSystemOutcome {
            system: "hbo-joint",
            measurement: evaluate_fixed_edge(
                spec,
                &hbo_run.best.point.allocation,
                hbo_run.best.point.x,
                eval_seed,
            ),
            allocation: hbo_run.best.point.allocation.clone(),
            x: hbo_run.best.point.x,
        },
    ];
    (outcomes, hbo_run.telemetry)
}

/// Renders the nested edge-stats object shared by the `edge_offload` and
/// `stadium_sweep` rows (`null` when no task was offloaded).
fn edge_stats_json(edge: &Option<EdgeStats>) -> String {
    match edge {
        Some(e) => format!(
            "{{\"p95_ms\":{},\"mean_ms\":{},\"completed\":{},\"rejected\":{},\"avg_busy_lanes\":{:.6}}}",
            fmt_opt_ms(e.p95_ms),
            fmt_opt_ms(e.mean_ms),
            e.completed,
            e.rejected,
            e.avg_busy_lanes
        ),
        None => "null".to_owned(),
    }
}

/// Renders one sweep row as a JSON line (hand-rolled; hermetic build).
pub fn row_json(
    scenario: &str,
    clients: usize,
    uplink_mbps: f64,
    outcome: &EdgeSystemOutcome,
    w: f64,
) -> String {
    let alloc: String = outcome.allocation.iter().map(|d| d.letter()).collect();
    let edge = edge_stats_json(&outcome.measurement.edge);
    JsonRow::new("edge_offload")
        .str("scenario", scenario)
        .u64("clients", clients as u64)
        .f64("uplink_mbps", uplink_mbps, 3)
        .str("system", outcome.system)
        .str("alloc", &alloc)
        .f64("x", outcome.x, 6)
        .f64("quality", outcome.measurement.quality, 6)
        .f64("epsilon", outcome.measurement.epsilon, 6)
        .f64("reward", outcome.reward(w), 6)
        .raw("edge", &edge)
        .finish()
}

/// Runs one `(clients, uplink bandwidth)` cell of the `edge_offload`
/// sweep and renders its three system rows — shared by the bench binary
/// and the golden regression test.
pub fn sweep_cell(
    base: &ScenarioSpec,
    clients: usize,
    uplink_mbps: f64,
    config: &HboConfig,
    seed: u64,
) -> Vec<String> {
    sweep_cell_traced(base, clients, uplink_mbps, config, seed, Tracer::disabled()).0
}

/// [`sweep_cell`] with a tracer on the cell's HBO activation; also
/// returns the activation's telemetry totals. The rendered rows are
/// byte-identical to [`sweep_cell`]'s for any tracer.
pub fn sweep_cell_traced(
    base: &ScenarioSpec,
    clients: usize,
    uplink_mbps: f64,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
) -> (Vec<String>, TelemetrySummary) {
    let spec = base
        .clone()
        .with_edge(EdgeSpec::wifi(clients).with_uplink_mbps(uplink_mbps));
    let (outcomes, telemetry) = compare_edge_systems_traced(&spec, config, seed, tracer);
    let rows = outcomes
        .iter()
        .map(|o| row_json(&spec.name, clients, uplink_mbps, o, config.w))
        .collect();
    (rows, telemetry)
}

/// Runs one population cell of the `stadium_sweep`: `clients` users share
/// one contended cell, HBO optimizes the fleet (planning with the
/// effective per-client bandwidth), and the best configuration is
/// re-measured on a fresh fleet. The row reports HBO's edge-allocation
/// share next to the effective bandwidth, so the sweep shows the flip
/// back to local inference as the cell fills up.
pub fn stadium_cell(
    base: &ScenarioSpec,
    cell: SharedCell,
    clients: usize,
    config: &HboConfig,
    seed: u64,
) -> (String, TelemetrySummary) {
    stadium_cell_traced(base, cell, clients, config, seed, Tracer::disabled())
}

/// [`stadium_cell`] with a tracer on the HBO activation (the fixed
/// re-measurement stays untraced, as in [`sweep_cell_traced`]). A
/// disabled tracer reproduces [`stadium_cell`] bit-identically.
pub fn stadium_cell_traced(
    base: &ScenarioSpec,
    cell: SharedCell,
    clients: usize,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
) -> (String, TelemetrySummary) {
    let spec = base
        .clone()
        .with_edge(EdgeSpec::wifi(clients).with_shared_cell(cell));
    let hbo_run = run_edge_hbo_traced(&spec, config, seed, tracer);
    let best = &hbo_run.best.point;
    let measurement = evaluate_fixed_edge(&spec, &best.allocation, best.x, mix(seed, 0xED6E_0002));
    let alloc: String = best.allocation.iter().map(|d| d.letter()).collect();
    let edge_tasks = best
        .allocation
        .iter()
        .filter(|&&d| d == Delegate::Edge)
        .count();
    let row = JsonRow::new("stadium_sweep")
        .str("scenario", &spec.name)
        .u64("clients", clients as u64)
        .f64(
            "eff_uplink_mbps",
            cell.effective_client_mbps(Direction::Up, clients),
            3,
        )
        .f64(
            "eff_downlink_mbps",
            cell.effective_client_mbps(Direction::Down, clients),
            3,
        )
        .str("alloc", &alloc)
        .u64("edge_tasks", edge_tasks as u64)
        .u64("tasks", best.allocation.len() as u64)
        .f64("x", best.x, 6)
        .f64("quality", measurement.quality, 6)
        .f64("epsilon", measurement.epsilon, 6)
        .f64("reward", measurement.reward(config.w), 6)
        .raw("edge", &edge_stats_json(&measurement.edge))
        .finish();
    (row, hbo_run.telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HboConfig {
        HboConfig {
            n_initial: 3,
            iterations: 5,
            ..HboConfig::default()
        }
    }

    fn edge_spec(clients: usize, mbps: f64) -> EdgeSpec {
        EdgeSpec::wifi(clients).with_uplink_mbps(mbps)
    }

    #[test]
    fn edge_profiles_extend_tau_e() {
        let spec = ScenarioSpec::sc2_cf2().with_edge(edge_spec(2, 50.0));
        for p in spec.profiles() {
            assert!(p.supports(Delegate::Edge), "{} lacks Edge", p.name());
            assert!(p.latency_on(Delegate::Edge).unwrap() > 0.0);
        }
    }

    #[test]
    fn edge_world_measures_offloaded_tasks_from_the_shared_sim() {
        let spec = ScenarioSpec::sc2_cf2().with_edge(edge_spec(2, 50.0));
        let mut world = EdgeWorld::new(&spec, 11);
        world.place_all_objects();
        world.run_for_secs(WARMUP_SECS);
        let profiles = spec.profiles();
        let point = HboPoint {
            z: Vec::new(),
            c: Vec::new(),
            x: 1.0,
            allocation: edge_only_allocation(&profiles),
        };
        world.apply(&point);
        let m = world.measure_for_secs(2.0);
        let e = m.edge.expect("edge tasks ran");
        assert!(e.completed > 0);
        let (p95, mean) = (e.p95_ms.unwrap(), e.mean_ms.unwrap());
        assert!(p95 >= mean * 0.5);
        // Offloaded latencies carry at least the RTT.
        for (i, &ms) in m.per_task_ms.iter().enumerate() {
            assert!(
                ms >= spec.edge.unwrap().link.rtt_ms * 0.5,
                "task {i}: {ms} ms is below the link floor"
            );
        }
    }

    #[test]
    fn fleet_p95_is_monotone_in_client_count() {
        // Fixed bandwidth, edge-only allocation, one server lane: more
        // clients must mean a worse fleet p95.
        let mut p95s = Vec::new();
        for clients in [1usize, 4, 8] {
            let mut edge = edge_spec(clients, 50.0);
            edge.server = ServerParams {
                worker_lanes: 1,
                queue_capacity: 32,
            };
            let spec = ScenarioSpec::sc2_cf2().with_edge(edge);
            let alloc = edge_only_allocation(&spec.profiles());
            let m = evaluate_fixed_edge(&spec, &alloc, 1.0, 23);
            p95s.push(m.edge.expect("edge stats").p95_ms.expect("completions"));
        }
        assert!(
            p95s[0] < p95s[1] && p95s[1] < p95s[2],
            "fleet p95 not monotone: {p95s:?}"
        );
    }

    #[test]
    fn percentile_of_empty_is_none() {
        // Regression: this used to fabricate 0.0 for an empty sample set
        // (and the nearest-rank clamp is only well-formed for len >= 1).
        assert_eq!(percentile(&[], 0.95), None);
        assert_eq!(percentile(&[3.0], 0.5), Some(3.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.95), Some(4.0));
    }

    #[test]
    fn zero_completion_window_reports_null_stats_not_zero_ms() {
        // Regression: a window where nothing completes (here: an uplink so
        // slow one request outlives the window) used to report
        // `mean_ms: 0.0` with `completed: 0`, indistinguishable from an
        // impossibly fast fleet. It must surface "no completions".
        let edge = edge_spec(1, 0.01); // 32 KiB request ≈ 26 s serialization
        let spec = ScenarioSpec::sc2_cf2().with_edge(edge);
        let alloc = edge_only_allocation(&spec.profiles());
        let mut world = EdgeWorld::new(&spec, 7);
        world.place_all_objects();
        let point = HboPoint {
            z: Vec::new(),
            c: Vec::new(),
            x: 1.0,
            allocation: alloc.clone(),
        };
        world.apply(&point);
        let m = world.measure_for_secs(1.0);
        let e = m.edge.clone().expect("edge tasks were allocated");
        assert_eq!(e.completed, 0);
        assert_eq!(e.p95_ms, None);
        assert_eq!(e.mean_ms, None);
        // The JSON row must say null, not 0.000000.
        let outcome = EdgeSystemOutcome {
            system: "edge-only",
            allocation: alloc,
            x: 1.0,
            measurement: m,
        };
        let row = row_json(&spec.name, 1, 0.01, &outcome, 0.5);
        assert!(row.contains("\"p95_ms\":null"), "row: {row}");
        assert!(row.contains("\"mean_ms\":null"), "row: {row}");
        assert!(row.contains("\"completed\":0"), "row: {row}");
    }

    #[test]
    fn edge_world_is_deterministic() {
        let spec = ScenarioSpec::sc2_cf2().with_edge(edge_spec(3, 25.0));
        let alloc = edge_only_allocation(&spec.profiles());
        let a = evaluate_fixed_edge(&spec, &alloc, 1.0, 5);
        let b = evaluate_fixed_edge(&spec, &alloc, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_edge_run_covers_all_four_layers_and_matches_untraced() {
        use simcore::trace::{ChromeTraceSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let spec = ScenarioSpec::sc1_cf2().with_edge(edge_spec(2, 5.0));
        let config = quick_config();
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let traced = run_edge_hbo_traced(&spec, &config, 17, Tracer::with_sink(Rc::clone(&sink)));
        let plain = run_edge_hbo(&spec, &config, 17);
        assert_eq!(plain.best.point, traced.best.point);
        assert_eq!(plain.best_cost_trace, traced.best_cost_trace);
        assert_eq!(plain.telemetry, traced.telemetry);
        let buf = sink.borrow().snapshot();
        for cat in ["soc", "edgelink", "hbo", "bo"] {
            assert!(
                buf.records.iter().any(|r| r.cat == cat),
                "no {cat} events in the trace"
            );
        }
    }

    #[test]
    fn hbo_joint_dominates_both_baselines_in_some_regime() {
        // Heavy scene (SC1), small taskset: at some bandwidth HBO's joint
        // allocation + decimation must beat both fixed policies.
        let config = quick_config();
        let mut dominated = false;
        for mbps in [5.0, 50.0] {
            let spec = ScenarioSpec::sc1_cf2().with_edge(edge_spec(4, mbps));
            let outcomes = compare_edge_systems(&spec, &config, 17);
            let reward = |name: &str| {
                outcomes
                    .iter()
                    .find(|o| o.system == name)
                    .expect("system present")
                    .reward(config.w)
            };
            if reward("hbo-joint") > reward("local-only")
                && reward("hbo-joint") > reward("edge-only")
            {
                dominated = true;
            }
        }
        assert!(dominated, "hbo-joint never dominated both baselines");
    }
}
