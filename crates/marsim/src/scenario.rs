//! Experiment scenarios: the object sets and AI tasksets of Table II,
//! combined with a device.

use arscene::scenarios::{sc1_catalog, sc2_catalog, CatalogEntry, DEFAULT_USER_DISTANCE};
use arscene::Scene;
use hbo_core::TaskProfile;
use nnmodel::ModelZoo;
use simcore::QueueKind;
use soc::DeviceProfile;

use crate::edge::EdgeSpec;

/// One taskset entry: a model and the number of concurrent instances.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Model name in the zoo.
    pub model: String,
    /// Number of instances running concurrently.
    pub count: usize,
}

impl TaskSpec {
    /// Creates a task spec.
    pub fn new(model: impl Into<String>, count: usize) -> Self {
        TaskSpec {
            model: model.into(),
            count,
        }
    }
}

/// A full experiment scenario: device + objects + taskset.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario label, e.g. `"SC1-CF1"`.
    pub name: String,
    /// The phone.
    pub device: DeviceProfile,
    /// Virtual-object catalog (Table II upper half).
    pub objects: Vec<CatalogEntry>,
    /// AI taskset (Table II lower half).
    pub tasks: Vec<TaskSpec>,
    /// User-object base distance in meters.
    pub user_distance: f64,
    /// Wireless link + shared edge server, when the scenario allows
    /// offloading (`None` reproduces the paper's on-device-only setting).
    /// When set, [`Self::profiles`] gains an Edge latency per task and
    /// HBO's decision space gains the edge dimension.
    pub edge: Option<EdgeSpec>,
    /// Future-event-list implementation for every simulator this
    /// scenario spawns (device SoC and edge world alike). Both kinds are
    /// bit-identical; the constructors read [`QueueKind::from_env`]
    /// (`HBO_EVENT_QUEUE`), so the whole stack flips with one variable.
    pub queue: QueueKind,
}

/// The CF1 taskset of Table II: six AI tasks (three GPU-affine, three
/// NNAPI-affine on the Pixel 7).
pub fn cf1_tasks() -> Vec<TaskSpec> {
    vec![
        TaskSpec::new("mnist", 1),
        TaskSpec::new("mobilenetDetv1", 1),
        TaskSpec::new("model-metadata", 2),
        TaskSpec::new("mobilenet-v1", 1),
        TaskSpec::new("efficientclass-lite0", 1),
    ]
}

/// The CF2 taskset of Table II: three AI tasks.
pub fn cf2_tasks() -> Vec<TaskSpec> {
    vec![
        TaskSpec::new("mnist", 1),
        TaskSpec::new("mobilenetDetv1", 1),
        TaskSpec::new("efficientclass-lite0", 1),
    ]
}

impl ScenarioSpec {
    /// SC1-CF1 on the Pixel 7 — the paper's most challenging combination.
    pub fn sc1_cf1() -> Self {
        ScenarioSpec {
            name: "SC1-CF1".to_owned(),
            device: DeviceProfile::pixel7(),
            objects: sc1_catalog(),
            tasks: cf1_tasks(),
            user_distance: DEFAULT_USER_DISTANCE,
            edge: None,
            queue: QueueKind::from_env(),
        }
    }

    /// SC2-CF1 on the Pixel 7.
    pub fn sc2_cf1() -> Self {
        ScenarioSpec {
            name: "SC2-CF1".to_owned(),
            device: DeviceProfile::pixel7(),
            objects: sc2_catalog(),
            tasks: cf1_tasks(),
            user_distance: DEFAULT_USER_DISTANCE,
            edge: None,
            queue: QueueKind::from_env(),
        }
    }

    /// SC1-CF2 on the Pixel 7.
    pub fn sc1_cf2() -> Self {
        ScenarioSpec {
            name: "SC1-CF2".to_owned(),
            device: DeviceProfile::pixel7(),
            objects: sc1_catalog(),
            tasks: cf2_tasks(),
            user_distance: DEFAULT_USER_DISTANCE,
            edge: None,
            queue: QueueKind::from_env(),
        }
    }

    /// SC2-CF2 on the Pixel 7.
    pub fn sc2_cf2() -> Self {
        ScenarioSpec {
            name: "SC2-CF2".to_owned(),
            device: DeviceProfile::pixel7(),
            objects: sc2_catalog(),
            tasks: cf2_tasks(),
            user_distance: DEFAULT_USER_DISTANCE,
            edge: None,
            queue: QueueKind::from_env(),
        }
    }

    /// The four scenario combinations of Section V-B, in the paper's
    /// order.
    pub fn all_four() -> Vec<ScenarioSpec> {
        vec![
            Self::sc1_cf1(),
            Self::sc2_cf1(),
            Self::sc1_cf2(),
            Self::sc2_cf2(),
        ]
    }

    /// The calibrated model zoo for this scenario's device.
    pub fn zoo(&self) -> ModelZoo {
        ModelZoo::for_device(&self.device.name)
    }

    /// Number of AI task instances (`M`).
    pub fn task_count(&self) -> usize {
        self.tasks.iter().map(|t| t.count).sum()
    }

    /// Expanded per-instance task names (`model-metadata_1`,
    /// `model-metadata_2`, …; single instances keep the bare model name).
    pub fn task_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for t in &self.tasks {
            if t.count == 1 {
                names.push(t.model.clone());
            } else {
                for i in 1..=t.count {
                    names.push(format!("{}_{}", t.model, i));
                }
            }
        }
        names
    }

    /// Expanded per-instance model names (parallel to
    /// [`Self::task_names`]).
    pub fn task_models(&self) -> Vec<String> {
        let mut models = Vec::new();
        for t in &self.tasks {
            for _ in 0..t.count {
                models.push(t.model.clone());
            }
        }
        models
    }

    /// Enables edge offloading for this scenario.
    pub fn with_edge(mut self, edge: EdgeSpec) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Pins the future-event-list implementation for every simulator this
    /// scenario spawns, overriding the `HBO_EVENT_QUEUE` default.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Static isolated-latency profiles per task instance (the priority
    /// queue `P` and the `τ^e` references). When the scenario has an
    /// [`EdgeSpec`], every profile additionally carries the *unloaded*
    /// offload latency (uplink serialization + RTT + edge inference +
    /// downlink serialization — no queueing), which is the `τ^e` HBO uses
    /// for the Edge resource.
    ///
    /// # Panics
    ///
    /// Panics if a task references a model missing from the zoo.
    pub fn profiles(&self) -> Vec<TaskProfile> {
        let zoo = self.zoo();
        self.task_models()
            .iter()
            .map(|m| {
                let p = TaskProfile::from_model(
                    zoo.get(m)
                        .unwrap_or_else(|| panic!("model {m:?} not in zoo")),
                );
                match &self.edge {
                    Some(edge) => {
                        let (_, best_local_ms) = p.best();
                        p.with_edge(edge.offload_estimate_ms(best_local_ms))
                    }
                    None => p,
                }
            })
            .collect()
    }

    /// Builds the fully placed scene.
    pub fn scene(&self) -> Scene {
        arscene::scenarios::scene_from_catalog(&self.objects, self.user_distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_task_counts() {
        assert_eq!(ScenarioSpec::sc1_cf1().task_count(), 6);
        assert_eq!(ScenarioSpec::sc1_cf2().task_count(), 3);
    }

    #[test]
    fn task_names_expand_instances() {
        let names = ScenarioSpec::sc1_cf1().task_names();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"model-metadata_1".to_owned()));
        assert!(names.contains(&"model-metadata_2".to_owned()));
        assert!(names.contains(&"mnist".to_owned()));
    }

    #[test]
    fn profiles_resolve_against_the_zoo() {
        let profiles = ScenarioSpec::sc2_cf2().profiles();
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles[0].name(), "mnist");
    }

    #[test]
    fn scenes_match_catalogs() {
        assert_eq!(ScenarioSpec::sc1_cf1().scene().len(), 9);
        assert_eq!(ScenarioSpec::sc2_cf1().scene().len(), 7);
    }

    #[test]
    fn all_four_are_distinct() {
        let names: Vec<String> = ScenarioSpec::all_four()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, vec!["SC1-CF1", "SC2-CF1", "SC1-CF2", "SC2-CF2"]);
    }
}
