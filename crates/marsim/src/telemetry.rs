//! Per-run telemetry summaries: jobs completed per processor, dropped
//! frames, retransmits, and peak queue depths, aggregated across the
//! layers of one run and mergeable across the jobs of a sweep.
//!
//! Unlike the trace layer ([`simcore::trace`]), which records *events*,
//! this module records *totals* — the numbers a runner report can print
//! in one line per sweep. Everything here is derived from deterministic
//! simulation state, so merged summaries are bit-identical across thread
//! counts (merging happens in job-index order).

/// Completion and queueing totals for one simulated processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorTelemetry {
    /// Processor name from the SoC topology (e.g. `"cpu"`, `"gpu"`).
    pub name: String,
    /// Stage executions finished on this processor.
    pub completed: u64,
    /// Deepest FIFO backlog observed (0 for PS processors).
    pub peak_queue: usize,
}

/// The per-run summary block: per-processor totals plus app- and
/// edge-level drop/retransmit counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Per-processor totals, in topology order.
    pub processors: Vec<ProcessorTelemetry>,
    /// Render frames completed.
    pub frames_rendered: u64,
    /// Render release points skipped because the frame pipeline was full
    /// (dropped frames).
    pub frames_skipped: u64,
    /// Edge-server admission rejections across every measurement window.
    pub edge_rejected: u64,
    /// Wireless retransmissions across every measurement window.
    pub edge_retransmits: u64,
    /// Deepest edge-server admission queue observed.
    pub edge_peak_queue: usize,
    /// BO `suggest` calls issued by the run's HBO controller(s) — the
    /// optimizer-side cost counter the amortized control plane exists to
    /// shrink.
    pub bo_suggests: u64,
    /// Warm-start cache hits (sessions seeded from a cached converged
    /// configuration).
    pub warm_hits: u64,
    /// Warm-start cache misses (sessions that ran cold).
    pub warm_misses: u64,
    /// Cluster requests dropped after exhausting admission retries —
    /// the load a saturated fleet shed.
    pub cluster_dropped: u64,
    /// Mid-session cell handovers on the shared medium (0 with private
    /// radios).
    pub cluster_handovers: u64,
    /// Shared-medium allocation re-solves (water-filling passes) — the
    /// radio control-plane cost driver.
    pub medium_reallocs: u64,
}

impl TelemetrySummary {
    /// The deepest queue observed anywhere: SoC FIFO backlogs and the
    /// edge admission queue.
    pub fn max_queue_depth(&self) -> usize {
        self.processors
            .iter()
            .map(|p| p.peak_queue)
            .max()
            .unwrap_or(0)
            .max(self.edge_peak_queue)
    }

    /// Folds another run's summary into this one: completion counters
    /// add, peak depths take the maximum. Processors are matched by name
    /// (jobs from different scenarios may have different topologies);
    /// unmatched processors are appended, so merge order only affects
    /// the ordering of processors never seen before — with a homogeneous
    /// job list the result is order-independent.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        for p in &other.processors {
            match self.processors.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.completed += p.completed;
                    q.peak_queue = q.peak_queue.max(p.peak_queue);
                }
                None => self.processors.push(p.clone()),
            }
        }
        self.frames_rendered += other.frames_rendered;
        self.frames_skipped += other.frames_skipped;
        self.edge_rejected += other.edge_rejected;
        self.edge_retransmits += other.edge_retransmits;
        self.edge_peak_queue = self.edge_peak_queue.max(other.edge_peak_queue);
        self.bo_suggests += other.bo_suggests;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
        self.cluster_dropped += other.cluster_dropped;
        self.cluster_handovers += other.cluster_handovers;
        self.medium_reallocs += other.medium_reallocs;
    }

    /// Renders the summary as one JSON object (hand-rolled; hermetic
    /// build) for embedding in a runner report line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"processors\":[");
        for (i, p) in self.processors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"completed\":{},\"peak_queue\":{}}}",
                p.name, p.completed, p.peak_queue
            ));
        }
        out.push_str(&format!(
            "],\"frames_rendered\":{},\"frames_skipped\":{},\"edge_rejected\":{},\
             \"edge_retransmits\":{},\"edge_peak_queue\":{},\"bo_suggests\":{},\
             \"warm_hits\":{},\"warm_misses\":{},\"cluster_dropped\":{},\
             \"cluster_handovers\":{},\"medium_reallocs\":{},\"max_queue_depth\":{}}}",
            self.frames_rendered,
            self.frames_skipped,
            self.edge_rejected,
            self.edge_retransmits,
            self.edge_peak_queue,
            self.bo_suggests,
            self.warm_hits,
            self.warm_misses,
            self.cluster_dropped,
            self.cluster_handovers,
            self.medium_reallocs,
            self.max_queue_depth()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(completed: u64, peak: usize) -> TelemetrySummary {
        TelemetrySummary {
            processors: vec![
                ProcessorTelemetry {
                    name: "cpu".to_owned(),
                    completed,
                    peak_queue: peak,
                },
                ProcessorTelemetry {
                    name: "gpu".to_owned(),
                    completed: completed * 2,
                    peak_queue: 0,
                },
            ],
            frames_rendered: 100,
            frames_skipped: 3,
            edge_rejected: 1,
            edge_retransmits: 5,
            edge_peak_queue: 2,
            bo_suggests: 20,
            warm_hits: 1,
            warm_misses: 2,
            cluster_dropped: 4,
            cluster_handovers: 6,
            medium_reallocs: 50,
        }
    }

    #[test]
    fn merge_adds_counters_and_maxes_depths() {
        let mut a = sample(10, 4);
        a.merge(&sample(7, 9));
        assert_eq!(a.processors[0].completed, 17);
        assert_eq!(a.processors[0].peak_queue, 9);
        assert_eq!(a.processors[1].completed, 34);
        assert_eq!(a.frames_rendered, 200);
        assert_eq!(a.frames_skipped, 6);
        assert_eq!(a.edge_rejected, 2);
        assert_eq!(a.edge_retransmits, 10);
        assert_eq!(a.edge_peak_queue, 2);
        assert_eq!(a.bo_suggests, 40);
        assert_eq!(a.warm_hits, 2);
        assert_eq!(a.warm_misses, 4);
        assert_eq!(a.cluster_dropped, 8);
        assert_eq!(a.cluster_handovers, 12);
        assert_eq!(a.medium_reallocs, 100);
        assert_eq!(a.max_queue_depth(), 9);
    }

    #[test]
    fn merge_appends_unknown_processors() {
        let mut a = sample(1, 1);
        let mut b = sample(2, 2);
        b.processors[0].name = "npu".to_owned();
        a.merge(&b);
        assert_eq!(a.processors.len(), 3);
        assert_eq!(a.processors[2].name, "npu");
    }

    #[test]
    fn json_is_valid_and_carries_the_totals() {
        let s = sample(10, 4);
        let parsed = simcore::trace::parse_json(&s.to_json()).expect("valid JSON");
        let procs = parsed.get("processors").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(procs.len(), 2);
        assert_eq!(
            parsed
                .get("max_queue_depth")
                .and_then(|v| v.as_num())
                .unwrap(),
            4.0
        );
        assert_eq!(
            parsed.get("bo_suggests").and_then(|v| v.as_num()).unwrap(),
            20.0
        );
        assert_eq!(
            parsed.get("warm_hits").and_then(|v| v.as_num()).unwrap(),
            1.0
        );
        assert_eq!(
            parsed
                .get("cluster_dropped")
                .and_then(|v| v.as_num())
                .unwrap(),
            4.0
        );
        assert_eq!(
            parsed
                .get("cluster_handovers")
                .and_then(|v| v.as_num())
                .unwrap(),
            6.0
        );
        assert_eq!(
            parsed
                .get("medium_reallocs")
                .and_then(|v| v.as_num())
                .unwrap(),
            50.0
        );
    }
}
