//! Fleet-scale edge serving: heterogeneous client populations with
//! session churn, routed across a multi-server cluster (ROADMAP item 1,
//! DESIGN.md §10).
//!
//! Where [`crate::edge`] mirrors one `MarApp` N ways against a single
//! server, this module generates a *population*: sessions drawn
//! deterministically from a [`FleetSpec`] — mixed device profiles,
//! models, frame rates, zones — arriving and departing by a Poisson
//! process on the existing seeded RNG streams, and served by an
//! [`edgelink::ClusterSim`] behind a pluggable [`RoutePolicy`].
//!
//! # Seed derivation
//!
//! One cell seed fans out as:
//!
//! ```text
//! cell seed ──mix(·, 0xF1EE_0001)──▶ churn stream (class / zone /
//!                                    arrival / duration draws)
//!          └─mix(mix(·, 0xF1EE_0002), i)──▶ session i's private seed
//!                                    (submit jitter, link randomness,
//!                                    power-of-two picks)
//! ```
//!
//! Session behavior is keyed solely off the session's private seed, so
//! permuting the generated vector relabels sessions without changing
//! any of them (pinned by the cluster relabeling tests).

use arscene::scenarios::{sc2_catalog, DEFAULT_USER_DISTANCE};
use edgelink::cluster::{ClusterParams, ClusterRadio, ClusterSim, ServerSpec, SessionSpec};
use edgelink::medium::{CellParams, MediumParams};
use edgelink::{ClientSpec, LinkParams, RoutePolicy, ServerParams, SharedMedium};
use hbo_core::{HboConfig, LookupKey, ScenarioSignature, TaskProfile, WarmCache};
use nnmodel::ModelZoo;
use simcore::rand::{Rng, SeedableRng, StdRng};
use simcore::rng::mix;
use simcore::trace::Tracer;
use simcore::QueueKind;
use soc::DeviceProfile;

use crate::app::{TASK_GAP_MS, TASK_JITTER_MS};
use crate::experiment::run_hbo_warm_keyed;
use crate::rows::JsonRow;
use crate::scenario::{ScenarioSpec, TaskSpec};
use crate::telemetry::TelemetrySummary;

/// One kind of client in the fleet: a device running one offloaded model
/// at one frame rate.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceClass {
    /// Class label (rendered into session labels).
    pub name: &'static str,
    /// Relative population share (normalized across classes).
    pub weight: f64,
    /// The phone (selects the calibrated model zoo).
    pub device: DeviceProfile,
    /// The offloaded model, by zoo name.
    pub model: String,
    /// Offload request rate, in frames per second.
    pub fps: f64,
    /// Request payload per inference, in bytes.
    pub request_bytes: u64,
    /// Response payload per inference, in bytes.
    pub response_bytes: u64,
    /// Mean session length for this class, in seconds (exponential).
    pub mean_session_secs: f64,
}

/// The fleet recipe: who the clients are, how many are live at once, and
/// how long the experiment runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Per-session wireless link profile.
    pub link: LinkParams,
    /// The population mix.
    pub classes: Vec<DeviceClass>,
    /// Number of zones sessions are spread over (uniformly).
    pub zones: usize,
    /// Target concurrent sessions. Little's law sets the Poisson arrival
    /// rate: `λ = target_sessions / mean session length`.
    pub target_sessions: usize,
    /// Simulated horizon per cell, in seconds.
    pub horizon_secs: f64,
    /// Edge inference time as a fraction of a model's best on-device
    /// latency, on a `speed == 1.0` server (mirrors
    /// [`crate::edge::EdgeSpec::server_speedup`]).
    pub server_speedup: f64,
    /// Floor on drawn session lengths, in seconds.
    pub min_session_secs: f64,
    /// Future-event-list implementation for the cluster simulator.
    pub queue: QueueKind,
}

impl FleetSpec {
    /// The default MAR fleet mix: flagship / midrange / budget classes
    /// across two zones, targeting `target_sessions` concurrent clients.
    pub fn mar_default(target_sessions: usize) -> Self {
        FleetSpec {
            link: LinkParams::wifi(),
            classes: vec![
                DeviceClass {
                    name: "flagship",
                    weight: 0.3,
                    device: DeviceProfile::pixel7(),
                    model: "efficientclass-lite0".to_owned(),
                    fps: 15.0,
                    request_bytes: 32 * 1024,
                    response_bytes: 4 * 1024,
                    mean_session_secs: 25.0,
                },
                DeviceClass {
                    name: "midrange",
                    weight: 0.5,
                    device: DeviceProfile::galaxy_s22(),
                    model: "mobilenet-v1".to_owned(),
                    fps: 10.0,
                    request_bytes: 24 * 1024,
                    response_bytes: 4 * 1024,
                    mean_session_secs: 20.0,
                },
                DeviceClass {
                    name: "budget",
                    weight: 0.2,
                    device: DeviceProfile::pixel7(),
                    model: "mobilenetDetv1".to_owned(),
                    fps: 5.0,
                    request_bytes: 16 * 1024,
                    response_bytes: 2 * 1024,
                    mean_session_secs: 15.0,
                },
            ],
            zones: 2,
            target_sessions,
            horizon_secs: 30.0,
            server_speedup: 0.15,
            min_session_secs: 2.0,
            queue: QueueKind::from_env(),
        }
    }

    /// Pins the future-event-list implementation, overriding the
    /// `HBO_EVENT_QUEUE` default.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Sets the simulated horizon.
    pub fn with_horizon(mut self, secs: f64) -> Self {
        self.horizon_secs = secs;
        self
    }

    /// Edge inference time for one class on a `speed == 1.0` server,
    /// derived from the class device's calibrated zoo.
    ///
    /// # Panics
    ///
    /// Panics if the class model is missing from the device's zoo.
    pub fn infer_ms(&self, class: &DeviceClass) -> f64 {
        let zoo = ModelZoo::for_device(&class.device.name);
        let model = zoo
            .get(&class.model)
            .unwrap_or_else(|| panic!("model {:?} not in zoo", class.model));
        let (_, best_local_ms) = TaskProfile::from_model(model).best();
        (best_local_ms * self.server_speedup).max(0.5)
    }

    /// The [`ClientSpec`] a class's sessions run.
    fn client_spec(&self, class: &DeviceClass, session: u64) -> ClientSpec {
        ClientSpec {
            label: format!("{}{}", class.name, session),
            request_bytes: class.request_bytes,
            response_bytes: class.response_bytes,
            infer_ms: self.infer_ms(class),
            gap_ms: TASK_GAP_MS,
            period_ms: 1000.0 / class.fps,
            jitter_ms: TASK_JITTER_MS,
        }
    }

    /// Generates the churning session population for one cell,
    /// deterministically from `seed`.
    ///
    /// The population starts warm — `target_sessions` sessions are live
    /// near `t = 0` (staggered arrivals inside the first half second,
    /// exponential residual lifetimes, valid by memorylessness) — and
    /// churns with Poisson arrivals at the Little's-law rate
    /// `λ = target_sessions / E[session length]`, so concurrency hovers
    /// around the target instead of ramping from empty.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no classes, non-positive weights, or no
    /// zones.
    pub fn sessions(&self, seed: u64) -> Vec<SessionSpec> {
        assert!(!self.classes.is_empty(), "need at least one device class");
        assert!(self.zones >= 1, "need at least one zone");
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(
            total_weight > 0.0 && self.classes.iter().all(|c| c.weight > 0.0),
            "class weights must be positive"
        );
        // Per-class client templates (zoo lookups once, not per session).
        let templates: Vec<ClientSpec> = self
            .classes
            .iter()
            .map(|c| self.client_spec(c, 0))
            .collect();
        let mean_session: f64 = self
            .classes
            .iter()
            .map(|c| c.weight / total_weight * c.mean_session_secs)
            .sum();
        let lambda = self.target_sessions as f64 / mean_session;
        let mut rng = StdRng::seed_from_u64(mix(seed, 0xF1EE_0001));
        let mut out = Vec::new();
        let push = |rng: &mut StdRng, out: &mut Vec<SessionSpec>, arrive: f64| {
            let class = draw_class(rng, &self.classes, total_weight);
            let i = out.len() as u64;
            let mut client = templates[class].clone();
            client.label = format!("{}{}", self.classes[class].name, i);
            let dur =
                exp_draw(rng, self.classes[class].mean_session_secs).max(self.min_session_secs);
            out.push(SessionSpec {
                client,
                zone: rng.gen_range(0..self.zones),
                arrive_secs: arrive,
                depart_secs: arrive + dur,
                seed: mix(mix(seed, 0xF1EE_0002), i),
            });
        };
        // Warm start: the steady-state population is already there.
        for _ in 0..self.target_sessions {
            let arrive = rng.gen::<f64>() * 0.5;
            push(&mut rng, &mut out, arrive);
        }
        // Poisson churn over the horizon.
        let mut t = 0.0;
        loop {
            t += exp_draw(&mut rng, 1.0 / lambda);
            if t >= self.horizon_secs {
                break;
            }
            push(&mut rng, &mut out, t);
        }
        out
    }

    /// Total client-windows of a generated population: summed active
    /// session-seconds inside the horizon.
    pub fn client_windows(&self, sessions: &[SessionSpec]) -> f64 {
        sessions
            .iter()
            .map(|s| (s.depart_secs.min(self.horizon_secs) - s.arrive_secs).max(0.0))
            .sum()
    }
}

/// Exponential draw with the given mean (inverse-CDF on one uniform).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Weighted class index draw.
fn draw_class(rng: &mut StdRng, classes: &[DeviceClass], total_weight: f64) -> usize {
    let mut u: f64 = rng.gen::<f64>() * total_weight;
    for (i, c) in classes.iter().enumerate() {
        u -= c.weight;
        if u < 0.0 {
            return i;
        }
    }
    classes.len() - 1
}

/// The fixed heterogeneous cluster the `fleet_sweep` cells run against:
/// four servers of mixed lane counts and speeds across two zones. Kept
/// constant across fleet sizes so the sweep shows the load curve of one
/// deployment, not a re-provisioned one.
pub fn mar_cluster(link: LinkParams, policy: RoutePolicy) -> ClusterParams {
    ClusterParams {
        link,
        servers: vec![
            // Zone 0: one big fast box plus a small one.
            ServerSpec {
                params: ServerParams {
                    worker_lanes: 4,
                    queue_capacity: 32,
                },
                zone: 0,
                speed: 1.25,
            },
            ServerSpec {
                params: ServerParams {
                    worker_lanes: 2,
                    queue_capacity: 16,
                },
                zone: 0,
                speed: 1.0,
            },
            // Zone 1: a mid box plus an older slow one.
            ServerSpec {
                params: ServerParams {
                    worker_lanes: 2,
                    queue_capacity: 16,
                },
                zone: 1,
                speed: 1.0,
            },
            ServerSpec {
                params: ServerParams {
                    worker_lanes: 1,
                    queue_capacity: 8,
                },
                zone: 1,
                speed: 0.75,
            },
        ],
        policy,
        cross_zone_ms: 8.0,
        max_admission_retries: 2,
        radio: ClusterRadio::Private,
    }
}

/// The outcome of one `(fleet size × policy)` cell.
#[derive(Debug, Clone)]
pub struct FleetCellResult {
    /// The rendered JSON row.
    pub row: String,
    /// Cluster totals folded into the shared telemetry shape
    /// (`edge_*` counters; no on-device processors at fleet scale).
    pub telemetry: TelemetrySummary,
    /// Completed round trips (the runner's per-cell metric).
    pub completed: u64,
    /// Pooled mean latency in ms, when anything completed.
    pub mean_ms: Option<f64>,
}

/// Runs one fleet cell: generate the population from `seed`, serve it
/// with `policy` for the spec's horizon, and pool cluster-level stats.
pub fn run_fleet_cell(spec: &FleetSpec, policy: RoutePolicy, seed: u64) -> FleetCellResult {
    run_fleet_cell_traced(spec, policy, seed, Tracer::disabled())
}

/// [`run_fleet_cell`] with a tracer on the cluster (per-server queue
/// depth and busy-lane counters; per-cell utilization when the radio is
/// shared). A disabled tracer reproduces [`run_fleet_cell`]
/// bit-identically.
pub fn run_fleet_cell_traced(
    spec: &FleetSpec,
    policy: RoutePolicy,
    seed: u64,
    tracer: Tracer,
) -> FleetCellResult {
    let sessions = spec.sessions(seed);
    let session_count = sessions.len();
    let client_windows = spec.client_windows(&sessions);
    let params = mar_cluster(spec.link, policy);
    let server_count = params.servers.len();
    let mut sim = ClusterSim::new_traced(params, sessions, spec.queue, tracer);
    sim.run_for_secs(spec.horizon_secs);
    let m = sim.metrics();
    let mut servers = String::from("[");
    for s in 0..server_count {
        if s > 0 {
            servers.push(',');
        }
        let (admitted, rejected, completed) = sim.server_counters(s);
        servers.push_str(&format!(
            "{{\"admitted\":{},\"rejected\":{},\"completed\":{},\"avg_busy_lanes\":{:.6}}}",
            admitted,
            rejected,
            completed,
            sim.server_avg_busy_lanes(s)
        ));
    }
    servers.push(']');
    let row = JsonRow::new("fleet_sweep")
        .str("policy", policy.name())
        .u64("fleet", spec.target_sessions as u64)
        .u64("sessions", session_count as u64)
        .f64("client_windows", client_windows, 3)
        .u64("submitted", m.submitted)
        .u64("completed", m.completed())
        .u64("dropped", m.dropped)
        .u64("rejects", m.reject_events)
        .opt_ms("reject_rate", m.reject_rate())
        .opt_ms("p50_ms", m.quantile_ms(0.50))
        .opt_ms("p95_ms", m.quantile_ms(0.95))
        .opt_ms("p99_ms", m.quantile_ms(0.99))
        .opt_ms("mean_ms", m.mean_ms())
        .u64("retransmits", m.retransmits)
        .u64("peak_queue", sim.peak_queue() as u64)
        .f64("busy_lanes", sim.total_avg_busy_lanes(), 6)
        .raw("servers", &servers)
        .finish();
    let telemetry = TelemetrySummary {
        edge_rejected: m.reject_events,
        edge_retransmits: m.retransmits,
        edge_peak_queue: sim.peak_queue(),
        cluster_dropped: m.dropped,
        cluster_handovers: sim.handovers(),
        medium_reallocs: sim.medium_reallocs(),
        ..TelemetrySummary::default()
    };
    FleetCellResult {
        row,
        completed: m.completed(),
        mean_ms: m.mean_ms(),
        telemetry,
    }
}

/// The two-cell walking deployment the stadium sweep's mobility cell
/// runs on: cells 120 m apart, sessions walking at 12 m/s across the
/// span, so every session crosses the handover boundary several times
/// per minute.
pub fn mobility_medium() -> SharedMedium {
    let mut medium = MediumParams::single_cell(120.0, 240.0);
    medium.cells.push(CellParams {
        x_m: 120.0,
        y_m: 0.0,
        uplink_mbps: 120.0,
        downlink_mbps: 240.0,
        cross: None,
    });
    SharedMedium {
        medium,
        walk_speed_mps: 12.0,
        area_m: 120.0,
    }
}

/// Runs the stadium sweep's mobility/handover cell: the fleet population
/// walks across [`mobility_medium`]'s two cells while offloading, and the
/// row reports handovers next to the usual latency stats.
pub fn run_mobility_cell(spec: &FleetSpec, seed: u64) -> FleetCellResult {
    run_mobility_cell_traced(spec, seed, Tracer::disabled())
}

/// [`run_mobility_cell`] with a tracer on the cluster (per-cell
/// utilization and active-flow counters land in the trace). A disabled
/// tracer reproduces [`run_mobility_cell`] bit-identically.
pub fn run_mobility_cell_traced(spec: &FleetSpec, seed: u64, tracer: Tracer) -> FleetCellResult {
    let sessions = spec.sessions(seed);
    let session_count = sessions.len();
    let mut params = mar_cluster(spec.link, RoutePolicy::ShortestQueue);
    params.radio = ClusterRadio::Shared(mobility_medium());
    let mut sim = ClusterSim::new_traced(params, sessions, spec.queue, tracer);
    sim.run_for_secs(spec.horizon_secs);
    let m = sim.metrics();
    let row = JsonRow::new("stadium_mobility")
        .u64("fleet", spec.target_sessions as u64)
        .u64("sessions", session_count as u64)
        .u64("handovers", sim.handovers())
        .u64("submitted", m.submitted)
        .u64("completed", m.completed())
        .u64("dropped", m.dropped)
        .u64("rejects", m.reject_events)
        .opt_ms("p50_ms", m.quantile_ms(0.50))
        .opt_ms("p95_ms", m.quantile_ms(0.95))
        .opt_ms("mean_ms", m.mean_ms())
        .u64("retransmits", m.retransmits)
        .finish();
    let telemetry = TelemetrySummary {
        edge_rejected: m.reject_events,
        edge_retransmits: m.retransmits,
        edge_peak_queue: sim.peak_queue(),
        cluster_dropped: m.dropped,
        cluster_handovers: sim.handovers(),
        medium_reallocs: sim.medium_reallocs(),
        ..TelemetrySummary::default()
    };
    FleetCellResult {
        row,
        completed: m.completed(),
        mean_ms: m.mean_ms(),
        telemetry,
    }
}

/// The fleet-cache identity of one device class: device fingerprint, its
/// single offloaded model, the class frame rate as the offered-load
/// scalar, and no edge dimension (the plan optimizes the *on-device*
/// share of the class workload). Keyed on the class's operating point —
/// not the fleet size — so later sweep epochs hit the cache warm.
pub fn class_signature(class: &DeviceClass) -> ScenarioSignature {
    ScenarioSignature::quantize(
        &class.device.name,
        std::iter::once(class.model.as_str()),
        class.fps,
        false,
    )
}

/// The per-class planning scenario: the class device running its one
/// offloaded model against the moderate SC2 object set. Small on purpose
/// — the plan is a control-plane step, not a serving simulation.
fn plan_scenario(class: &DeviceClass) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("plan-{}", class.name),
        device: class.device.clone(),
        objects: sc2_catalog(),
        tasks: vec![TaskSpec::new(class.model.clone(), 1)],
        user_distance: DEFAULT_USER_DISTANCE,
        edge: None,
        queue: QueueKind::Heap,
    }
}

/// The small HBO budget one planning pass spends (a full activation
/// would dwarf the serving simulation it plans for).
fn plan_config() -> HboConfig {
    HboConfig {
        n_initial: 3,
        iterations: 6,
        ..HboConfig::default()
    }
}

/// The outcome of one per-class planning pass.
#[derive(Debug, Clone)]
pub struct FleetPlanResult {
    /// The rendered JSON plan row.
    pub row: String,
    /// The planning activation's telemetry (BO suggest and warm-start
    /// counters; merged into the sweep report).
    pub telemetry: TelemetrySummary,
    /// The job's shadow cache: the epoch-start snapshot plus this class's
    /// stored plan. The caller merges shadows in class order.
    pub shadow: WarmCache,
}

/// Runs the HBO planning pass for one device class against a snapshot of
/// the fleet-wide warm cache.
///
/// The plan seed derives from the class *name* (not its slot index), and
/// the cache key from the class's operating point, so permuting the class
/// list permutes the plan rows without changing any of them — and the
/// shadow caches merge to the same master either way.
pub fn run_class_plan(
    spec: &FleetSpec,
    class_idx: usize,
    seed_base: u64,
    snapshot: &WarmCache,
) -> FleetPlanResult {
    let class = &spec.classes[class_idx];
    let scenario = plan_scenario(class);
    let seed = mix(
        seed_base,
        LookupKey::fingerprint_taskset(std::iter::once(class.name)),
    );
    let mut shadow = snapshot.clone();
    let result = run_hbo_warm_keyed(
        &scenario,
        &plan_config(),
        seed,
        &mut shadow,
        class_signature(class),
    );
    let run = &result.run;
    let alloc: String = run
        .best
        .point
        .allocation
        .iter()
        .map(|d| d.letter())
        .collect();
    let row = JsonRow::new("fleet_plan")
        .str("class", &class.name)
        .u64("fleet", spec.target_sessions as u64)
        .bool("warm", result.warm_hit)
        .u64("windows", run.records.len() as u64)
        .u64("converged_at", run.iterations_to_converge() as u64)
        .u64("suggests", run.telemetry.bo_suggests as u64)
        .str("alloc", &alloc)
        .f64("x", run.best.point.x, 6)
        .f64("cost", run.best.cost, 6)
        .finish();
    FleetPlanResult {
        row,
        telemetry: run.telemetry.clone(),
        shadow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetSpec {
        FleetSpec::mar_default(12)
            .with_horizon(5.0)
            .with_queue(QueueKind::Heap)
    }

    #[test]
    fn population_is_deterministic_and_heterogeneous() {
        let spec = small_spec();
        let a = spec.sessions(42);
        let b = spec.sessions(42);
        assert_eq!(a, b);
        assert!(a.len() >= spec.target_sessions);
        // Churn happened: someone arrives after t=0.5.
        assert!(a.iter().any(|s| s.arrive_secs > 0.5));
        // Heterogeneity: more than one period and more than one payload.
        let periods: std::collections::BTreeSet<u64> =
            a.iter().map(|s| s.client.period_ms.to_bits()).collect();
        assert!(periods.len() > 1, "all sessions share one frame rate");
        let payloads: std::collections::BTreeSet<u64> =
            a.iter().map(|s| s.client.request_bytes).collect();
        assert!(payloads.len() > 1, "all sessions share one payload");
        // Zones are actually used.
        assert!(a.iter().any(|s| s.zone == 0) && a.iter().any(|s| s.zone == 1));
        // Sessions are well-formed.
        for s in &a {
            assert!(s.depart_secs > s.arrive_secs);
            assert!(s.client.infer_ms >= 0.5);
        }
        // Distinct seeds per session.
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let spec = small_spec();
        assert_ne!(spec.sessions(1), spec.sessions(2));
    }

    #[test]
    fn client_windows_counts_active_seconds() {
        let spec = small_spec();
        let sessions = spec.sessions(7);
        let cw = spec.client_windows(&sessions);
        // At least the warm-start population × most of the horizon.
        assert!(
            cw > spec.target_sessions as f64 * 1.0,
            "client-windows {cw}"
        );
        // Bounded by every session spanning the whole horizon.
        assert!(cw <= sessions.len() as f64 * spec.horizon_secs);
    }

    #[test]
    fn fleet_cell_serves_and_reports() {
        let r = run_fleet_cell(&small_spec(), RoutePolicy::PowerOfTwo, 42);
        assert!(r.completed > 100, "only {} completions", r.completed);
        assert!(r
            .row
            .starts_with("{\"sweep\":\"fleet_sweep\",\"policy\":\"p2c\""));
        assert!(r.row.contains("\"p95_ms\":"));
        assert!(!r.row.contains("\"p50_ms\":null"));
        assert!(r.row.ends_with("}]}"));
        assert!(r.mean_ms.unwrap() > 0.0);
    }

    #[test]
    fn fleet_cell_is_deterministic_per_policy() {
        for policy in RoutePolicy::ALL {
            let a = run_fleet_cell(&small_spec(), policy, 9);
            let b = run_fleet_cell(&small_spec(), policy, 9);
            assert_eq!(a.row, b.row, "{} diverged", policy.name());
            assert_eq!(a.telemetry, b.telemetry);
        }
    }

    /// One planning epoch: clone the master into per-class shadows, plan
    /// every class (optionally on a thread pool), merge shadows back in
    /// class order.
    fn plan_epoch(
        spec: &FleetSpec,
        seed_base: u64,
        master: &mut WarmCache,
        threads: usize,
    ) -> Vec<FleetPlanResult> {
        let idxs: Vec<usize> = (0..spec.classes.len()).collect();
        let snapshot = master.clone();
        let (plans, _) = crate::runner::run_map("plan", threads, &idxs, |_, &i| {
            run_class_plan(spec, i, seed_base, &snapshot)
        });
        for plan in &plans {
            master.merge(&plan.shadow);
        }
        plans
    }

    #[test]
    fn second_plan_epoch_runs_warm_with_fewer_windows() {
        let spec = small_spec();
        let mut cache = WarmCache::new();
        let cold = plan_epoch(&spec, 42, &mut cache, 1);
        assert!(cold.iter().all(|p| p.telemetry.warm_misses == 1));
        // Epoch 2 (same classes, any fleet size): every class hits.
        let warm = plan_epoch(&spec, 43, &mut cache, 1);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(w.telemetry.warm_hits, 1, "row: {}", w.row);
            assert!(
                w.telemetry.bo_suggests < c.telemetry.bo_suggests,
                "warm plan should spend fewer suggests: {} vs {}",
                w.telemetry.bo_suggests,
                c.telemetry.bo_suggests
            );
        }
    }

    #[test]
    fn plan_epochs_are_bit_identical_across_thread_counts() {
        let spec = small_spec();
        let mut reference: Option<(Vec<String>, WarmCache)> = None;
        for threads in [1usize, 2, 4] {
            let mut cache = WarmCache::new();
            let mut rows = Vec::new();
            for (epoch, seed) in [42u64, 43].into_iter().enumerate() {
                let plans = plan_epoch(&spec, seed, &mut cache, threads);
                rows.extend(plans.into_iter().map(|p| format!("e{epoch} {}", p.row)));
            }
            match &reference {
                None => reference = Some((rows, cache)),
                Some((r_rows, r_cache)) => {
                    assert_eq!(&rows, r_rows, "--threads {threads} changed plan rows");
                    assert_eq!(&cache, r_cache, "--threads {threads} changed the cache");
                }
            }
        }
    }

    #[test]
    fn relabeling_classes_permutes_plans_without_changing_them() {
        let spec = small_spec();
        let mut permuted = spec.clone();
        permuted.classes.rotate_left(1);
        let mut cache_a = WarmCache::new();
        let mut cache_b = WarmCache::new();
        let plans_a = plan_epoch(&spec, 42, &mut cache_a, 1);
        let plans_b = plan_epoch(&permuted, 42, &mut cache_b, 1);
        // Matched by class name, each plan row is identical.
        for (i, class) in spec.classes.iter().enumerate() {
            let j = permuted
                .classes
                .iter()
                .position(|c| c.name == class.name)
                .unwrap();
            assert_eq!(
                plans_a[i].row, plans_b[j].row,
                "{} plan changed",
                class.name
            );
        }
        // And the merged master cache is the same either way.
        assert_eq!(cache_a, cache_b);
    }

    #[test]
    fn policies_actually_differ() {
        // Same population, different routing: the rows must not all be
        // identical (otherwise the policy knob is dead).
        let rows: std::collections::BTreeSet<String> = RoutePolicy::ALL
            .iter()
            .map(|&p| {
                let r = run_fleet_cell(&small_spec(), p, 11);
                // Strip the policy name so only measured behavior counts.
                r.row.replace(p.name(), "")
            })
            .collect();
        assert!(rows.len() > 1, "all policies produced identical behavior");
    }
}
