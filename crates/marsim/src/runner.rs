//! Deterministic parallel experiment execution.
//!
//! Every evaluation binary sweeps some cross product of scenario ×
//! configuration × replicate. This module turns such sweeps into a flat
//! job list executed on [`simcore::pool`] worker threads, with three
//! guarantees:
//!
//! 1. **Seed isolation** — each job's RNG stream is derived from
//!    `(master_seed, job_index)` through the splitmix64-based
//!    [`simcore::rng::mix`], so no job's draws depend on which worker ran
//!    it or on how many jobs surround it.
//! 2. **Order-independent merging** — per-job statistics are
//!    [`Running`] accumulators combined with the parallel-Welford
//!    [`Running::merge`] in job-index order after all workers finish, so
//!    the merged numbers do not depend on completion order.
//! 3. **Serial ≡ parallel** — (1) + (2) plus the order-preserving
//!    [`simcore::pool::map`] make a `--threads N` run bit-identical to
//!    `--threads 1` for any `N`.
//!
//! The thread count comes from `--threads N` on the command line, the
//! `HBO_THREADS` environment variable, or the machine's available
//! parallelism, in that order ([`threads_from_args`]).
//!
//! Each binary reports its sweep as one JSON line (a [`RunnerReport`],
//! emitted through `hbo_bench::harness`) so wall time and merged metrics
//! are machine-diffable across PRs.

use std::time::Instant;

use hbo_core::HboConfig;
use simcore::metrics::{head_sample, with_observers, MetricsBuffer};
use simcore::pool;
use simcore::stats::Running;
use simcore::trace::{chrome_trace_json, TraceBuffer, TraceJob};

use crate::experiment::{run_hbo, run_hbo_traced, HboRunResult};
use crate::scenario::ScenarioSpec;
use crate::telemetry::TelemetrySummary;

/// Derives the independent seed for job `job_index` of a sweep rooted at
/// `master_seed` (splitmix64 mixing via [`simcore::rng::mix`]).
pub fn job_seed(master_seed: u64, job_index: u64) -> u64 {
    simcore::rng::mix(master_seed, job_index)
}

/// Thread count from the `HBO_THREADS` environment variable, falling back
/// to the machine's available parallelism. Invalid or zero values fall
/// back too.
pub fn threads_from_env() -> usize {
    std::env::var("HBO_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(pool::available_threads)
}

/// Thread count for an experiment binary: `--threads N` from the command
/// line when present, otherwise [`threads_from_env`].
pub fn threads_from_args() -> usize {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == "--threads")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(threads_from_env)
}

/// One job of an HBO activation sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Display label (scenario, variant, replicate…).
    pub label: String,
    /// The scenario to run.
    pub scenario: ScenarioSpec,
    /// The controller configuration.
    pub config: HboConfig,
    /// Explicit seed, or `None` to derive one from
    /// `(master_seed, job_index)` via [`job_seed`].
    pub seed: Option<u64>,
}

impl SweepJob {
    /// A job whose seed derives from its position in the job list.
    pub fn derived(label: impl Into<String>, scenario: ScenarioSpec, config: HboConfig) -> Self {
        SweepJob {
            label: label.into(),
            scenario,
            config,
            seed: None,
        }
    }

    /// A job pinned to an explicit seed (paper-reproduction binaries pin
    /// their historic figure seeds).
    pub fn seeded(
        label: impl Into<String>,
        scenario: ScenarioSpec,
        config: HboConfig,
        seed: u64,
    ) -> Self {
        SweepJob {
            label: label.into(),
            scenario,
            config,
            seed: Some(seed),
        }
    }
}

/// The outcome of one [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Index into the job list (stable across thread counts).
    pub job_index: usize,
    /// The job's label.
    pub label: String,
    /// The seed the job actually ran with.
    pub seed: u64,
    /// The full activation result.
    pub run: HboRunResult,
    /// The job's trace buffer, when the sweep ran with tracing enabled
    /// ([`run_sweep_traced`]) and this job was head-sampled (or sampling
    /// was off).
    pub trace: Option<TraceBuffer>,
    /// The job's aggregated metrics, when the sweep ran with metrics
    /// collection enabled ([`run_sweep_observed`]).
    pub metrics: Option<MetricsBuffer>,
}

/// What a sweep observes while it runs: Chrome tracing, deterministic
/// head-sampling of that tracing, and streaming metric aggregation.
#[derive(Debug, Clone, Default)]
pub struct ObserveConfig {
    /// Attach a per-job Chrome trace sink (subject to `trace_sample`).
    pub traced: bool,
    /// When `Some(k)` and `traced`, only the `k` jobs whose mixed
    /// `(master_seed, job_seed)` hashes are smallest keep full Chrome
    /// detail ([`simcore::metrics::head_sample`]); every job still feeds
    /// the aggregator. `None` traces every job.
    pub trace_sample: Option<usize>,
    /// Attach a per-job [`simcore::metrics::AggregatingSink`] and return
    /// its [`MetricsBuffer`] for job-index-order merging.
    pub metrics: bool,
}

impl ObserveConfig {
    /// Tracing on or off, no sampling, no metrics — the historical
    /// [`run_sweep_traced`] behaviour.
    pub fn traced(traced: bool) -> Self {
        ObserveConfig {
            traced,
            ..ObserveConfig::default()
        }
    }
}

/// A merged metric: a name plus its [`Running`] accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name, e.g. `"best_cost"`.
    pub name: String,
    /// Merged statistics across jobs.
    pub stats: Running,
}

/// The machine-readable summary of one runner-backed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerReport {
    /// Sweep label (usually the binary name).
    pub label: String,
    /// Wall-clock time of the whole sweep, in seconds.
    pub wall_secs: f64,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Merged per-metric statistics, in a fixed order.
    pub metrics: Vec<MetricSummary>,
    /// Merged telemetry totals across jobs (job-index merge order), when
    /// the sweep collects them.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunnerReport {
    /// Renders the report as one JSON line in the same hand-rolled style
    /// as `hbo_bench::harness` (no serialization crate; hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"runner\":\"{}\",\"jobs\":{},\"threads\":{},\"wall_secs\":{:.6},\"metrics\":{{",
            self.label, self.jobs, self.threads, self.wall_secs
        );
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if m.stats.count() == 0 {
                // An empty accumulator has no mean/spread/extrema;
                // fabricating 0.000000 here made a metric that never
                // recorded look like one that measured exactly zero.
                out.push_str(&format!(
                    "\"{}\":{{\"count\":0,\"mean\":null,\"std_dev\":null,\"min\":null,\"max\":null}}",
                    m.name,
                ));
                continue;
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean\":{:.6},\"std_dev\":{:.6},\"min\":{:.6},\"max\":{:.6}}}",
                m.name,
                m.stats.count(),
                m.stats.mean(),
                m.stats.std_dev(),
                m.stats.min().expect("count > 0"),
                m.stats.max().expect("count > 0"),
            ));
        }
        out.push_str("}");
        if let Some(t) = &self.telemetry {
            out.push_str(",\"telemetry\":");
            out.push_str(&t.to_json());
        }
        out.push('}');
        out
    }
}

/// The result of [`run_sweep`]: per-job outcomes in job order plus the
/// merged report.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One outcome per job, in job-index order.
    pub outcomes: Vec<SweepOutcome>,
    /// Merged statistics and timing.
    pub report: RunnerReport,
}

impl SweepResult {
    /// The outcomes whose label matches `label`, in job order.
    pub fn labeled<'a>(&'a self, label: &str) -> Vec<&'a SweepOutcome> {
        self.outcomes.iter().filter(|o| o.label == label).collect()
    }

    /// Merges the per-job trace buffers (job-index order, one Chrome
    /// `pid` per job) into one Chrome trace-event JSON document. `None`
    /// when the sweep ran without tracing.
    pub fn trace_json(&self) -> Option<String> {
        if self.outcomes.iter().all(|o| o.trace.is_none()) {
            return None;
        }
        let jobs: Vec<TraceJob> = self
            .outcomes
            .iter()
            .filter_map(|o| {
                o.trace.as_ref().map(|buffer| TraceJob {
                    name: o.label.clone(),
                    buffer: buffer.clone(),
                })
            })
            .collect();
        Some(chrome_trace_json(&jobs))
    }

    /// Merges the per-job [`MetricsBuffer`]s in job-index order and
    /// renders the deterministic Prometheus-style text exposition. `None`
    /// when the sweep ran without metrics collection.
    pub fn metrics_text(&self) -> Option<String> {
        self.merged_metrics().map(|m| m.render_prometheus())
    }

    /// Merges the per-job [`MetricsBuffer`]s in job-index order. `None`
    /// when the sweep ran without metrics collection.
    pub fn merged_metrics(&self) -> Option<MetricsBuffer> {
        let mut merged: Option<MetricsBuffer> = None;
        for o in &self.outcomes {
            if let Some(m) = &o.metrics {
                match &mut merged {
                    Some(acc) => acc.merge(m),
                    None => merged = Some(m.clone()),
                }
            }
        }
        merged
    }
}

/// Runs a flat HBO-activation job list on `threads` workers.
///
/// Per-job iteration statistics (cost, quality, normalized latency) are
/// accumulated into independent [`Running`]s inside each job and merged
/// with [`Running::merge`] in job-index order afterwards; per-job scalars
/// (best cost, iterations-to-converge) are recorded in the same order.
/// Both are therefore independent of scheduling, and the whole sweep is
/// bit-identical for every thread count.
pub fn run_sweep(
    label: impl Into<String>,
    jobs: Vec<SweepJob>,
    master_seed: u64,
    threads: usize,
) -> SweepResult {
    run_sweep_traced(label, jobs, master_seed, threads, false)
}

/// [`run_sweep`] with optional tracing: when `traced` is set, each job
/// runs with its own [`ChromeTraceSink`] (sinks are per-worker-job, so
/// nothing is shared across threads) and returns its buffer for
/// deterministic job-index-order merging via [`SweepResult::trace_json`].
/// Tracing never perturbs the simulations, so every metric — and the
/// merged trace itself — is bit-identical across thread counts and to an
/// untraced run.
pub fn run_sweep_traced(
    label: impl Into<String>,
    jobs: Vec<SweepJob>,
    master_seed: u64,
    threads: usize,
    traced: bool,
) -> SweepResult {
    run_sweep_observed(
        label,
        jobs,
        master_seed,
        threads,
        ObserveConfig::traced(traced),
    )
}

/// [`run_sweep`] with the full observability surface: optional Chrome
/// tracing with deterministic seed-derived head-sampling, and optional
/// streaming metric aggregation ([`simcore::metrics::AggregatingSink`]).
///
/// Sampling decisions depend only on `(master_seed, per-job seed)`, so
/// the same `k` jobs keep full Chrome detail on every rerun and every
/// `--threads` value. Sinks are per-worker-job (nothing shared across
/// threads) and observation never perturbs the simulations, so every
/// metric — the merged trace and the merged metrics text included — is
/// bit-identical across thread counts and to an unobserved run.
pub fn run_sweep_observed(
    label: impl Into<String>,
    jobs: Vec<SweepJob>,
    master_seed: u64,
    threads: usize,
    observe: ObserveConfig,
) -> SweepResult {
    let start = Instant::now();
    let seeds: Vec<u64> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| job.seed.unwrap_or_else(|| job_seed(master_seed, i as u64)))
        .collect();
    let sampled: Vec<bool> = match (observe.traced, observe.trace_sample) {
        (true, Some(k)) => head_sample(master_seed, &seeds, k),
        (true, None) => vec![true; jobs.len()],
        (false, _) => vec![false; jobs.len()],
    };
    let outcomes: Vec<SweepOutcome> = pool::map(threads, &jobs, |i, job| {
        let seed = seeds[i];
        let (run, trace, metrics) = if sampled[i] || observe.metrics {
            with_observers(sampled[i], observe.metrics, |tracer| {
                run_hbo_traced(&job.scenario, &job.config, seed, tracer)
            })
        } else {
            (run_hbo(&job.scenario, &job.config, seed), None, None)
        };
        SweepOutcome {
            job_index: i,
            label: job.label.clone(),
            seed,
            run,
            trace,
            metrics,
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();

    // Per-job accumulators, merged in index order (parallel Welford).
    let mut iter_cost = Running::new();
    let mut iter_quality = Running::new();
    let mut iter_epsilon = Running::new();
    let mut best_cost = Running::new();
    let mut iters_to_converge = Running::new();
    let mut telemetry = TelemetrySummary::default();
    for o in &outcomes {
        let mut job_cost = Running::new();
        let mut job_quality = Running::new();
        let mut job_epsilon = Running::new();
        for r in &o.run.records {
            job_cost.record(r.cost);
            job_quality.record(r.quality);
            job_epsilon.record(r.epsilon);
        }
        iter_cost.merge(&job_cost);
        iter_quality.merge(&job_quality);
        iter_epsilon.merge(&job_epsilon);
        best_cost.record(o.run.best.cost);
        iters_to_converge.record(o.run.iterations_to_converge() as f64);
        telemetry.merge(&o.run.telemetry);
    }
    let metric = |name: &str, stats: Running| MetricSummary {
        name: name.to_owned(),
        stats,
    };
    let report = RunnerReport {
        label: label.into(),
        wall_secs,
        jobs: outcomes.len(),
        threads,
        metrics: vec![
            metric("best_cost", best_cost),
            metric("iters_to_converge", iters_to_converge),
            metric("iter_cost", iter_cost),
            metric("iter_quality", iter_quality),
            metric("iter_epsilon", iter_epsilon),
        ],
        telemetry: Some(telemetry),
    };
    SweepResult { outcomes, report }
}

/// Runs an arbitrary deterministic job list on `threads` workers and
/// times it — the generic entry point for sweeps that are not HBO
/// activations (scripted timelines, fixed-configuration measurements…).
///
/// `f` must be a pure function of `(index, item)` for the serial ≡
/// parallel guarantee to hold; results come back in input order.
pub fn run_map<T, R, F>(
    label: impl Into<String>,
    threads: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, RunnerReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let results = pool::map(threads, items, f);
    let report = RunnerReport {
        label: label.into(),
        wall_secs: start.elapsed().as_secs_f64(),
        jobs: results.len(),
        threads,
        metrics: Vec::new(),
        telemetry: None,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, u64s};
    use simcore::prop_assert;
    use simcore::rand::{Rng, SeedableRng, StdRng};

    fn quick_config() -> HboConfig {
        HboConfig {
            n_initial: 2,
            iterations: 2,
            ..HboConfig::default()
        }
    }

    fn demo_jobs() -> Vec<SweepJob> {
        let config = quick_config();
        let mut jobs = Vec::new();
        for spec in [ScenarioSpec::sc2_cf2(), ScenarioSpec::sc2_cf1()] {
            for replicate in 0..2 {
                jobs.push(SweepJob::derived(
                    format!("{}/r{replicate}", spec.name),
                    spec.clone(),
                    config.clone(),
                ));
            }
        }
        jobs
    }

    #[test]
    fn four_thread_sweep_is_bit_identical_to_one_thread() {
        let serial = run_sweep("det", demo_jobs(), 42, 1);
        let parallel = run_sweep("det", demo_jobs(), 42, 4);
        assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
        for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(a.job_index, b.job_index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.run.best.point, b.run.best.point);
            assert_eq!(a.run.best.cost, b.run.best.cost);
            assert_eq!(a.run.best_cost_trace, b.run.best_cost_trace);
        }
        // Merged metrics are bit-identical `Running`s, not just close.
        assert_eq!(serial.report.metrics, parallel.report.metrics);
    }

    #[test]
    fn explicit_seeds_override_derivation() {
        let mut jobs = demo_jobs();
        jobs[1].seed = Some(777);
        let result = run_sweep("seeded", jobs, 9, 2);
        assert_eq!(result.outcomes[0].seed, job_seed(9, 0));
        assert_eq!(result.outcomes[1].seed, 777);
    }

    #[test]
    fn report_json_says_null_for_metrics_that_never_recorded() {
        // Regression: an empty metric used to render as
        // `"mean":0.000000,...` — indistinguishable from a metric that
        // measured exactly zero. It must render null for mean/spread/extrema.
        let mut recorded = Running::new();
        recorded.record(2.0);
        recorded.record(4.0);
        let report = RunnerReport {
            label: "nulls".to_owned(),
            jobs: 0,
            threads: 1,
            wall_secs: 0.0,
            metrics: vec![
                MetricSummary {
                    name: "empty".to_owned(),
                    stats: Running::new(),
                },
                MetricSummary {
                    name: "seen".to_owned(),
                    stats: recorded,
                },
            ],
            telemetry: None,
        };
        let json = report.to_json();
        assert!(
            json.contains(
                "\"empty\":{\"count\":0,\"mean\":null,\"std_dev\":null,\"min\":null,\"max\":null}"
            ),
            "empty metric not rendered as null: {json}"
        );
        assert!(
            json.contains("\"seen\":{\"count\":2,\"mean\":3.000000"),
            "non-empty metric changed shape: {json}"
        );
    }

    #[test]
    fn job_seed_streams_have_distinct_first_draws() {
        // Property: for any master seed, the 256 first job streams all
        // draw distinct first values — no pair of jobs shares a stream.
        check::check("job_seed_streams_distinct", u64s(..), |&master| {
            let mut seen = std::collections::HashSet::new();
            for job_index in 0..256u64 {
                let first: u64 = StdRng::seed_from_u64(job_seed(master, job_index)).gen();
                prop_assert!(
                    seen.insert(first),
                    "jobs of master seed {master} collide at index {job_index}"
                );
            }
            Ok(())
        });
    }

    #[test]
    fn run_map_keeps_input_order_and_counts_jobs() {
        let items: Vec<u64> = (0..17).collect();
        let (out, report) = run_map("map", 4, &items, |i, &x| x + i as u64);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(report.jobs, 17);
        assert_eq!(report.threads, 4);
    }

    #[test]
    fn report_renders_one_json_line() {
        let result = run_sweep("json", demo_jobs(), 1, 2);
        let line = result.report.to_json();
        assert!(line.starts_with("{\"runner\":\"json\",\"jobs\":4,\"threads\":2,"));
        assert!(line.contains("\"best_cost\":{\"count\":4,"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn observed_sweep_is_bit_identical_across_threads_and_to_unobserved() {
        let observe = ObserveConfig {
            traced: true,
            trace_sample: Some(2),
            metrics: true,
        };
        let serial = run_sweep_observed("obs", demo_jobs(), 42, 1, observe.clone());
        let parallel = run_sweep_observed("obs", demo_jobs(), 42, 4, observe);
        let plain = run_sweep("obs", demo_jobs(), 42, 1);

        // Exactly k jobs keep Chrome detail; the same jobs either way.
        let traced_jobs = |r: &SweepResult| -> Vec<usize> {
            r.outcomes
                .iter()
                .filter(|o| o.trace.is_some())
                .map(|o| o.job_index)
                .collect()
        };
        assert_eq!(traced_jobs(&serial).len(), 2);
        assert_eq!(traced_jobs(&serial), traced_jobs(&parallel));

        // Every job feeds the aggregator, and the merged exposition is
        // byte-identical across thread counts.
        assert!(serial.outcomes.iter().all(|o| o.metrics.is_some()));
        let text = serial.metrics_text().expect("metrics collected");
        assert_eq!(Some(text.clone()), parallel.metrics_text());
        assert!(text.contains("# TYPE mar_span_count counter"));

        // Observation never perturbs the simulations.
        for (a, b) in serial.outcomes.iter().zip(&plain.outcomes) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.run.best.cost, b.run.best.cost);
            assert_eq!(a.run.best_cost_trace, b.run.best_cost_trace);
        }
        assert_eq!(serial.report.metrics, plain.report.metrics);
    }

    #[test]
    fn untraced_observed_sweep_collects_no_buffers() {
        let result = run_sweep_observed("off", demo_jobs(), 3, 2, ObserveConfig::default());
        assert!(result.outcomes.iter().all(|o| o.trace.is_none()));
        assert!(result.outcomes.iter().all(|o| o.metrics.is_none()));
        assert!(result.metrics_text().is_none());
        assert!(result.trace_json().is_none());
    }

    #[test]
    fn labeled_filters_outcomes() {
        let result = run_sweep("lbl", demo_jobs(), 5, 2);
        assert_eq!(result.labeled("SC2-CF2/r0").len(), 1);
        assert_eq!(result.labeled("nope").len(), 0);
    }
}
