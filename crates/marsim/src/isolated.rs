//! Offline isolated profiling — the measurement behind Table I and the
//! `τ^e` references of Eq. (4).
//!
//! Each `(model, delegate)` pair runs alone on a fresh simulated SoC with
//! no virtual objects and no other AI tasks, exactly as the paper profiles
//! devices "one time … directly on the user device".

use nnmodel::{Delegate, Model, ModelZoo};
use simcore::{SimDuration, SimTime};
use soc::{DeviceProfile, SocSim, StreamSpec};

/// How long each isolated measurement runs (simulated seconds).
const PROFILE_SECS: f64 = 3.0;

/// Measures the isolated latency of one model on one delegate, in
/// milliseconds. Returns `None` for incompatible (NA) pairs.
pub fn isolated_latency(device: &DeviceProfile, model: &Model, delegate: Delegate) -> Option<f64> {
    let (topo, procs) = device.topology();
    let plan = model.plan(delegate, device, procs)?;
    let mut sim = SocSim::new(topo);
    let stream = sim.add_stream(
        StreamSpec::new(plan, SimDuration::from_millis_f64(1.0)).with_label(model.name()),
    );
    sim.run_until(SimTime::from_secs_f64(PROFILE_SECS));
    let metrics = sim.stream_metrics(stream);
    (metrics.completed() > 0).then(|| metrics.latency_overall().mean())
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Task kind abbreviation (IS/OD/IC/GD/DC).
    pub kind: &'static str,
    /// Measured isolated latency per delegate in `[GPU, NNAPI, CPU]`
    /// column order (as printed in the paper), `None` = NA.
    pub latency_ms: [Option<f64>; 3],
}

/// Regenerates one device's half of Table I by running every model of the
/// zoo in isolation on every delegate.
pub fn table1(device: &DeviceProfile, zoo: &ModelZoo) -> Vec<Table1Row> {
    zoo.iter()
        .map(|model| Table1Row {
            model: model.name().to_owned(),
            kind: model.kind().abbrev(),
            latency_ms: [
                isolated_latency(device, model, Delegate::Gpu),
                isolated_latency(device, model, Delegate::Nnapi),
                isolated_latency(device, model, Delegate::Cpu),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_runs_match_table1_calibration() {
        // The whole point of the calibration: measured isolated latency on
        // the simulated SoC equals the paper's Table I numbers.
        let device = DeviceProfile::pixel7();
        let zoo = ModelZoo::pixel7();
        for model in zoo.iter() {
            for d in Delegate::ALL {
                let measured = isolated_latency(&device, model, d);
                let target = model.isolated_ms(d);
                match (measured, target) {
                    (Some(m), Some(t)) => assert!(
                        (m - t).abs() < 0.05,
                        "{} on {d}: measured {m}, table {t}",
                        model.name()
                    ),
                    (None, None) => {}
                    other => panic!("{} on {d}: NA mismatch {other:?}", model.name()),
                }
            }
        }
    }

    #[test]
    fn s22_table_also_reproduces() {
        let device = DeviceProfile::galaxy_s22();
        let zoo = ModelZoo::galaxy_s22();
        let rows = table1(&device, &zoo);
        assert_eq!(rows.len(), 9);
        let deeplab = rows.iter().find(|r| r.model == "deeplabv3").unwrap();
        // Table I S22 row: 45 / 27 / 46.
        assert!((deeplab.latency_ms[0].unwrap() - 45.0).abs() < 0.05);
        assert!((deeplab.latency_ms[1].unwrap() - 27.0).abs() < 0.05);
        assert!((deeplab.latency_ms[2].unwrap() - 46.0).abs() < 0.05);
    }

    #[test]
    fn na_cells_stay_na() {
        let device = DeviceProfile::pixel7();
        let zoo = ModelZoo::pixel7();
        let rows = table1(&device, &zoo);
        let dl = rows.iter().find(|r| r.model == "deeplabv3").unwrap();
        assert!(dl.latency_ms[1].is_none(), "Pixel 7 deeplabv3 NNAPI is NA");
    }
}
