//! The live MAR application: AI streams plus a render loop on one
//! simulated SoC, with the control surface HBO manipulates.

use arscene::Scene;
use hbo_core::HboPoint;
use nnmodel::{Delegate, ModelZoo};
use simcore::{SimDuration, SimTime};
use soc::{
    DeviceProfile, SocProcs, SocSim, SourceId, SourceSpec, Stage, StageSeq, StreamId, StreamSpec,
};

use crate::load::{inflate_stages, inflated_plan, render_utilization};
use crate::scenario::ScenarioSpec;

/// Think time between consecutive inferences of one task (camera frame
/// hand-off, pre/post-processing outside the accelerators).
pub const TASK_GAP_MS: f64 = 2.0;

/// Target start-to-start period of every AI task: MAR apps drive their
/// detectors/classifiers from the camera preview at ~10 Hz, so tasks are
/// rate-anchored rather than back-to-back (they only saturate a resource
/// when contention pushes latency past the period).
pub const TASK_PERIOD_MS: f64 = 100.0;

/// Maximum deterministic start jitter per inference: real camera/inference
/// loops never align perfectly, and the jitter keeps same-period tasks
/// from phase-locking into worst-case (or best-case) collision patterns.
pub const TASK_JITTER_MS: f64 = 5.0;

/// Per-task detuning of the inference period (fraction per step): tasks
/// run at 94/97/100/103/106 ms rather than in lockstep, so resource
/// collisions sweep through every phase instead of recurring in bursts —
/// which is also how independently-scheduled Android threads behave.
pub const TASK_PERIOD_DETUNE: f64 = 0.03;

/// The detuned period of the `index`-th task.
pub fn task_period_ms(index: usize) -> f64 {
    let step = (index % 5) as f64 - 2.0;
    TASK_PERIOD_MS * (1.0 + TASK_PERIOD_DETUNE * step)
}

/// One AI task instance running in the app.
#[derive(Debug)]
struct TaskRuntime {
    name: String,
    model: String,
    stream: StreamId,
    delegate: Delegate,
    /// Base (uninflated) custom execution plan, when the task was pinned
    /// to one via [`MarApp::set_custom_plan`] — used by the fine-grained
    /// per-operator baseline; `None` means the plan derives from
    /// `delegate`.
    custom_plan: Option<StageSeq>,
}

/// A windowed measurement of app performance (one control period).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Average virtual-object quality `Q` — Eq. (2).
    pub quality: f64,
    /// Average normalized AI latency `ε` — Eq. (4).
    pub epsilon: f64,
    /// Mean per-task latency over the window, in milliseconds, in task
    /// order.
    pub per_task_ms: Vec<f64>,
    /// Simulated time at the end of the window.
    pub at: SimTime,
}

impl Measurement {
    /// The reward `B = Q − w ε` for a given weight.
    pub fn reward(&self, w: f64) -> f64 {
        hbo_core::reward(self.quality, self.epsilon, w)
    }
}

/// The simulated MAR app. See the crate docs for an example.
#[derive(Debug)]
pub struct MarApp {
    device: DeviceProfile,
    procs: SocProcs,
    sim: SocSim,
    scene: Scene,
    zoo: ModelZoo,
    tasks: Vec<TaskRuntime>,
    render_source: SourceId,
    /// Objects from the scenario not yet placed on screen.
    pending: Vec<arscene::VirtualObject>,
    expected_ms: Vec<f64>,
    /// The triangle ratio currently enforced by the controller; newly
    /// placed objects are decimated into it (the control component of
    /// Fig. 3 keeps enforcing the chosen configuration).
    target_x: Option<f64>,
}

impl MarApp {
    /// Builds the app for a scenario: all AI tasks running (allocated to
    /// their static best resources), no objects placed yet.
    ///
    /// # Panics
    ///
    /// Panics if the scenario references models missing from the device's
    /// zoo.
    pub fn new(spec: &ScenarioSpec) -> Self {
        Self::new_traced(spec, simcore::trace::Tracer::disabled())
    }

    /// Builds the app like [`Self::new`] with a tracer installed on the
    /// underlying [`SocSim`]: every processor slot gets a span track and
    /// every queue a counter series. A disabled tracer makes this
    /// identical to [`Self::new`] (the simulation is bit-identical either
    /// way).
    pub fn new_traced(spec: &ScenarioSpec, tracer: simcore::trace::Tracer) -> Self {
        let device = spec.device.clone();
        let (topo, procs) = device.topology();
        let mut sim = SocSim::with_queue(topo, spec.queue);
        sim.set_tracer(tracer);
        let zoo = spec.zoo();

        // Render loop: starts with an empty scene (prep only).
        let scene = Scene::new(spec.user_distance);
        let render_source = sim.add_source(
            SourceSpec::new(
                render_stages(&device, procs, &scene),
                device.frame_period,
                device.max_frames_in_flight,
            )
            .with_label("render"),
        );

        let profiles = spec.profiles();
        let expected_ms: Vec<f64> = profiles.iter().map(|p| p.expected_latency()).collect();
        let utilization = render_utilization(&device, scene.render_triangles());
        let mut tasks = Vec::new();
        for (i, (name, model)) in spec
            .task_names()
            .into_iter()
            .zip(spec.task_models())
            .enumerate()
        {
            let m = zoo.get(&model).expect("scenario model in zoo");
            let (delegate, _) = m.best_delegate();
            let plan = inflated_plan(m, delegate, &device, procs, utilization)
                .expect("best delegate always has a plan");
            let stream = sim.add_stream(
                StreamSpec::new(plan, SimDuration::from_millis_f64(TASK_GAP_MS))
                    .with_period(SimDuration::from_millis_f64(task_period_ms(i)))
                    .with_jitter(SimDuration::from_millis_f64(TASK_JITTER_MS))
                    .with_label(name.clone()),
            );
            tasks.push(TaskRuntime {
                name,
                model,
                stream,
                delegate,
                custom_plan: None,
            });
        }

        // Objects wait un-placed so timelines can add them one by one.
        let mut pending: Vec<arscene::VirtualObject> = Vec::new();
        for entry in &spec.objects {
            for i in 0..entry.count {
                pending.push(arscene::VirtualObject::new(
                    format!("{}_{}", entry.name, i + 1),
                    entry.triangles,
                    entry.params,
                    entry.distance_factor,
                ));
            }
        }

        MarApp {
            device,
            procs,
            sim,
            scene,
            zoo,
            tasks,
            render_source,
            pending,
            expected_ms,
            target_x: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The scene as currently rendered.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Task names, in task order.
    pub fn task_names(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.name.as_str()).collect()
    }

    /// Current allocation, in task order.
    pub fn allocation(&self) -> Vec<Delegate> {
        self.tasks.iter().map(|t| t.delegate).collect()
    }

    /// Expected (isolated best) latency per task — `τ^e`.
    pub fn expected_latencies(&self) -> &[f64] {
        &self.expected_ms
    }

    /// Number of objects not yet placed.
    pub fn pending_objects(&self) -> usize {
        self.pending.len()
    }

    /// Places the next pending object at full quality. Returns `false`
    /// when nothing is left to place.
    pub fn place_next_object(&mut self) -> bool {
        let Some(obj) = self.pending.pop() else {
            return false;
        };
        self.scene.add_object(obj);
        if let Some(x) = self.target_x {
            self.scene.distribute_triangles(x);
        }
        self.refresh_render_load();
        true
    }

    /// Places every remaining object.
    pub fn place_all_objects(&mut self) {
        while self.place_next_object() {}
    }

    /// Moves the user (changes every user-object distance and therefore
    /// both the render load and the quality model).
    pub fn set_user_distance(&mut self, distance: f64) {
        self.scene.set_user_distance(distance);
        self.refresh_render_load();
    }

    /// Re-allocates each task; takes effect at each task's next inference
    /// (as reloading a TFLite interpreter with a new delegate would).
    ///
    /// # Panics
    ///
    /// Panics if `allocation` has the wrong length or assigns a task to an
    /// incompatible (NA) delegate.
    pub fn set_allocation(&mut self, allocation: &[Delegate]) {
        assert_eq!(
            allocation.len(),
            self.tasks.len(),
            "one delegate per task required"
        );
        let utilization = self.render_utilization();
        for (task, &delegate) in self.tasks.iter_mut().zip(allocation) {
            if task.delegate == delegate && task.custom_plan.is_none() {
                continue;
            }
            task.custom_plan = None;
            let model = self.zoo.get(&task.model).expect("model in zoo");
            let plan = inflated_plan(model, delegate, &self.device, self.procs, utilization)
                .unwrap_or_else(|| panic!("task {} cannot run on {delegate}", task.name));
            self.sim.update_stream(task.stream, plan);
            task.delegate = delegate;
        }
    }

    /// Marks a task as offloaded to the edge: its on-device footprint
    /// collapses to a small serialization/compression stage on the render
    /// CPU core, and its end-to-end latency is measured by the edge world
    /// ([`crate::edge::EdgeWorld`]) instead of the SoC. The task's
    /// delegate reads back as [`Delegate::Edge`]; any later
    /// [`Self::set_allocation`] with an on-device delegate restores a
    /// normal execution plan.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range or `client_overhead_ms` is not
    /// positive and finite.
    pub fn set_offloaded(&mut self, task: usize, client_overhead_ms: f64) {
        assert!(
            client_overhead_ms.is_finite() && client_overhead_ms > 0.0,
            "invalid client overhead: {client_overhead_ms}"
        );
        let stub = StageSeq::new(vec![Stage::compute(
            self.procs.cpu_render,
            SimDuration::from_millis_f64(client_overhead_ms),
        )]);
        self.set_custom_plan(task, stub);
        self.tasks[task].delegate = Delegate::Edge;
    }

    /// Pins a task to an arbitrary execution plan (e.g. a fine-grained
    /// per-operator schedule), bypassing the delegate-based plans until the
    /// next [`Self::set_allocation`]. The plan is still subject to the
    /// bandwidth coupling as the render load changes.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn set_custom_plan(&mut self, task: usize, plan: StageSeq) {
        let utilization = self.render_utilization();
        let t = &mut self.tasks[task];
        self.sim
            .update_stream(t.stream, inflate_stages(&plan, self.procs, utilization));
        t.custom_plan = Some(plan);
    }

    /// Current GPU render utilization (drives the bandwidth coupling).
    pub fn render_utilization(&self) -> f64 {
        render_utilization(&self.device, self.scene.render_triangles())
    }

    /// Applies a triangle ratio through HBO's `TD` distribution and
    /// refreshes the render load.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]`.
    pub fn set_triangle_ratio(&mut self, x: f64) {
        self.scene.distribute_triangles(x);
        self.target_x = Some(x);
        self.refresh_render_load();
    }

    /// Uniform per-object decimation (every object at ratio `x`) — the
    /// naive reduction the SML baseline sweeps, without HBO's
    /// sensitivity-weighted distribution.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]`.
    pub fn set_uniform_ratio(&mut self, x: f64) {
        self.scene.set_uniform_ratio(x);
        self.target_x = None; // uniform baselines bypass TD enforcement
        self.refresh_render_load();
    }

    /// Applies a full HBO configuration (allocation + triangle ratio).
    pub fn apply(&mut self, point: &HboPoint) {
        self.set_allocation(&point.allocation);
        self.set_triangle_ratio(point.x);
    }

    /// Advances the simulation.
    pub fn run_for_secs(&mut self, secs: f64) {
        let deadline = self.sim.now() + SimDuration::from_secs_f64(secs);
        self.sim.run_until(deadline);
    }

    /// Runs one control period and measures `(Q, ε)` over it (lines 24–25
    /// of Algorithm 1).
    ///
    /// Tasks that complete no inference inside the window fall back to
    /// their most recent latency, or to their expected latency if they
    /// have never completed (only possible in the first instants of a
    /// run).
    pub fn measure_for_secs(&mut self, secs: f64) -> Measurement {
        let start = self.sim.now();
        self.run_for_secs(secs);
        let per_task_ms: Vec<f64> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let m = self.sim.stream_metrics(t.stream);
                m.mean_since(start)
                    .or_else(|| m.last_latency_ms())
                    .unwrap_or(self.expected_ms[i])
            })
            .collect();
        let epsilon = hbo_core::normalized_latency(&per_task_ms, &self.expected_ms);
        Measurement {
            quality: self.scene.average_quality(),
            epsilon,
            per_task_ms,
            at: self.sim.now(),
        }
    }

    /// Approximate latency percentile per task over every completion so
    /// far (log-bucketed), in task order. `None` for tasks that have not
    /// completed any inference yet.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn per_task_percentile_ms(&self, q: f64) -> Vec<Option<f64>> {
        self.tasks
            .iter()
            .map(|t| self.sim.stream_metrics(t.stream).latency_percentile_ms(q))
            .collect()
    }

    /// Mean latency of each task over completions since `since`
    /// (`None` where no completion landed in that span).
    pub fn per_task_latency_since(&self, since: SimTime) -> Vec<Option<f64>> {
        self.tasks
            .iter()
            .map(|t| self.sim.stream_metrics(t.stream).mean_since(since))
            .collect()
    }

    /// Energy consumed by the SoC since the app started, under a power
    /// model (see [`soc::PowerModel`]).
    pub fn energy_report(&self, model: &soc::PowerModel) -> soc::EnergyReport {
        self.sim.energy_report(model)
    }

    /// On-device telemetry totals since the app started: per-processor
    /// completions and peak queue depths plus rendered/dropped frame
    /// counts (edge counters stay zero — [`crate::edge::EdgeWorld`]
    /// fills them in).
    pub fn telemetry(&self) -> crate::telemetry::TelemetrySummary {
        let processors = self
            .sim
            .topology()
            .iter()
            .map(|(id, _)| {
                let m = self.sim.processor_metrics(id);
                crate::telemetry::ProcessorTelemetry {
                    name: m.name,
                    completed: m.completed,
                    peak_queue: self.sim.peak_queue(id),
                }
            })
            .collect();
        let frames = self.sim.source_metrics(self.render_source);
        crate::telemetry::TelemetrySummary {
            processors,
            frames_rendered: frames.completed(),
            frames_skipped: frames.skipped,
            ..Default::default()
        }
    }

    /// Achieved render frame rate over the trailing `secs` seconds.
    pub fn fps_over_last_secs(&self, secs: f64) -> f64 {
        let now = self.sim.now();
        let since = SimTime::from_secs_f64((now.as_secs_f64() - secs).max(0.0));
        self.sim
            .source_metrics(self.render_source)
            .rate_since(since, now)
    }

    /// Pushes the scene's current render load into the render source and
    /// re-derives every task's bandwidth-inflated execution plan (effective
    /// at each task's next inference).
    fn refresh_render_load(&mut self) {
        self.sim.update_source(
            self.render_source,
            render_stages(&self.device, self.procs, &self.scene),
        );
        let utilization = self.render_utilization();
        for task in &self.tasks {
            let plan = match &task.custom_plan {
                Some(base) => inflate_stages(base, self.procs, utilization),
                None => {
                    let model = self.zoo.get(&task.model).expect("model in zoo");
                    inflated_plan(model, task.delegate, &self.device, self.procs, utilization)
                        .expect("current delegate is compatible")
                }
            };
            self.sim.update_stream(task.stream, plan);
        }
    }
}

/// Builds the per-frame stage sequence for the current scene.
fn render_stages(device: &DeviceProfile, procs: SocProcs, scene: &Scene) -> StageSeq {
    StageSeq::new(vec![
        Stage::compute(procs.cpu_render, device.render.cpu_frame(scene.len())),
        Stage::compute(procs.gpu, device.render.gpu_frame(scene.render_triangles())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    #[test]
    fn tasks_start_on_their_best_delegates() {
        let app = MarApp::new(&ScenarioSpec::sc1_cf1());
        let alloc = app.allocation();
        // Pixel 7 CF1: mnist + model-metadata x2 GPU, the rest NNAPI.
        let names = app.task_names();
        for (name, d) in names.iter().zip(&alloc) {
            if name.starts_with("mnist") || name.starts_with("model-metadata") {
                assert_eq!(*d, Delegate::Gpu, "{name}");
            } else {
                assert_eq!(*d, Delegate::Nnapi, "{name}");
            }
        }
    }

    #[test]
    fn measurement_without_objects_is_near_expected() {
        let mut app = MarApp::new(&ScenarioSpec::sc2_cf2());
        app.run_for_secs(1.0); // warm-up
        let m = app.measure_for_secs(2.0);
        assert_eq!(m.quality, 1.0); // empty scene
                                    // Three tasks on three different-ish resources with no render
                                    // load: epsilon should be small.
        assert!(m.epsilon < 0.6, "epsilon = {}", m.epsilon);
    }

    #[test]
    fn placing_heavy_objects_raises_epsilon() {
        let mut app = MarApp::new(&ScenarioSpec::sc1_cf1());
        app.run_for_secs(1.0);
        let before = app.measure_for_secs(2.0);
        app.place_all_objects();
        let after = app.measure_for_secs(2.0);
        assert!(
            after.epsilon > before.epsilon + 0.2,
            "epsilon {} -> {}",
            before.epsilon,
            after.epsilon
        );
        assert!(after.quality >= 0.99); // full quality objects
    }

    #[test]
    fn reducing_triangles_reduces_epsilon() {
        let mut app = MarApp::new(&ScenarioSpec::sc1_cf1());
        app.place_all_objects();
        app.run_for_secs(1.0);
        let full = app.measure_for_secs(2.0);
        app.set_triangle_ratio(0.3);
        app.run_for_secs(0.5);
        let decimated = app.measure_for_secs(2.0);
        assert!(
            decimated.epsilon < full.epsilon,
            "epsilon {} -> {}",
            full.epsilon,
            decimated.epsilon
        );
        assert!(decimated.quality < full.quality);
    }

    #[test]
    fn reallocation_changes_latencies() {
        let mut app = MarApp::new(&ScenarioSpec::sc2_cf2());
        app.run_for_secs(1.0);
        // Move everything to the CPU.
        let all_cpu = vec![Delegate::Cpu; 3];
        app.set_allocation(&all_cpu);
        assert_eq!(app.allocation(), all_cpu);
        app.run_for_secs(1.0);
        let m = app.measure_for_secs(2.0);
        // mobilenetDetv1 on CPU is 48.9 ms vs expected 18.1 — epsilon
        // must reflect the CPU penalty.
        assert!(m.epsilon > 0.5, "epsilon = {}", m.epsilon);
    }

    #[test]
    fn moving_away_lightens_render_load() {
        let mut app = MarApp::new(&ScenarioSpec::sc1_cf1());
        app.place_all_objects();
        app.run_for_secs(1.0);
        let near = app.measure_for_secs(2.0);
        app.set_user_distance(5.0);
        app.run_for_secs(0.5);
        let far = app.measure_for_secs(2.0);
        assert!(
            far.epsilon < near.epsilon,
            "{} -> {}",
            near.epsilon,
            far.epsilon
        );
    }

    #[test]
    fn fps_degrades_under_heavy_scene() {
        let mut app = MarApp::new(&ScenarioSpec::sc1_cf1());
        app.place_all_objects();
        app.run_for_secs(3.0);
        let fps = app.fps_over_last_secs(1.0);
        assert!(fps > 10.0 && fps <= 61.0, "fps = {fps}");
    }

    #[test]
    fn reward_combines_quality_and_epsilon() {
        let m = Measurement {
            quality: 0.9,
            epsilon: 0.2,
            per_task_ms: vec![],
            at: SimTime::ZERO,
        };
        assert!((m.reward(2.5) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn offloading_frees_the_soc_and_reads_back_as_edge() {
        let mut app = MarApp::new(&ScenarioSpec::sc1_cf1());
        app.place_all_objects();
        app.run_for_secs(1.0);
        let loaded = app.measure_for_secs(2.0);
        // Offload every AI task: only the tiny serialization stubs remain
        // on the SoC, so on-device latencies collapse.
        for i in 0..app.task_names().len() {
            app.set_offloaded(i, 0.5);
        }
        assert!(app.allocation().iter().all(|&d| d == Delegate::Edge));
        app.run_for_secs(0.5);
        let stubbed = app.measure_for_secs(2.0);
        assert!(
            stubbed.epsilon < loaded.epsilon,
            "epsilon {} -> {}",
            loaded.epsilon,
            stubbed.epsilon
        );
        // Bringing the tasks back on-device restores real plans.
        let all_cpu = vec![Delegate::Cpu; app.task_names().len()];
        app.set_allocation(&all_cpu);
        assert_eq!(app.allocation(), all_cpu);
        app.run_for_secs(0.5);
        let back = app.measure_for_secs(2.0);
        assert!(
            back.epsilon > stubbed.epsilon,
            "epsilon {} -> {}",
            stubbed.epsilon,
            back.epsilon
        );
    }

    #[test]
    #[should_panic(expected = "cannot run on")]
    fn na_allocation_panics() {
        // deeplabv3 on Pixel 7 NNAPI is NA.
        let spec = ScenarioSpec {
            name: "custom".to_owned(),
            tasks: vec![crate::scenario::TaskSpec::new("deeplabv3", 1)],
            ..ScenarioSpec::sc1_cf1()
        };
        let mut app = MarApp::new(&spec);
        app.set_allocation(&[Delegate::Nnapi]);
    }
}
