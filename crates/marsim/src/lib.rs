//! MAR application runtime simulation and experiment orchestration.
//!
//! This crate plays the role of the paper's Android prototype: it wires the
//! simulated SoC ([`soc`]), the AI taskset ([`nnmodel`]), and the virtual
//! object scene ([`arscene`]) into a running MAR app, drives HBO and the
//! baselines ([`hbo_core`]) against it, and packages the measurement loops
//! behind the experiment entry points the bench harness calls.
//!
//! * [`MarApp`] — the live app: AI streams + render loop on one `SocSim`,
//!   with object placement, user movement, allocation and triangle-ratio
//!   control, and windowed measurement of `(Q, ε)`.
//! * [`isolated`] — offline profiling (Table I): each task alone on each
//!   delegate, no objects.
//! * [`experiment`] — full HBO activations and baseline evaluations
//!   (Figs. 4–7, Tables III–IV).
//! * [`timeline`] — scripted event sequences (Fig. 2's motivation study,
//!   Fig. 8's activation study).
//! * [`runner`] — the deterministic parallel experiment runner: flat
//!   scenario × config × replicate job lists on `simcore::pool` workers,
//!   with per-job seed streams and order-independent metric merging, so
//!   `--threads N` is bit-identical to `--threads 1`.
//! * [`edge`] — multi-client edge offloading: [`EdgeWorld`] couples the
//!   app to a shared wireless link + edge server ([`edgelink`]) and makes
//!   Edge a fourth HBO allocation target.
//! * [`fleet`] — fleet-scale serving: heterogeneous churning session
//!   populations ([`fleet::FleetSpec`]) served by a multi-server cluster
//!   ([`edgelink::ClusterSim`]) under pluggable routing policies.
//! * [`userstudy`] — the simulated 7-participant panel of Fig. 9.
//!
//! # Example
//!
//! ```
//! use marsim::{MarApp, ScenarioSpec};
//!
//! let scenario = ScenarioSpec::sc1_cf1();
//! let mut app = MarApp::new(&scenario);
//! app.place_all_objects();
//! let m = app.measure_for_secs(2.0);
//! assert!(m.epsilon >= 0.0 && m.quality > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
pub mod edge;
pub mod experiment;
pub mod fleet;
pub mod isolated;
pub mod load;
pub mod rows;
pub mod runner;
mod scenario;
pub mod synth;
pub mod telemetry;
pub mod timeline;
pub mod userstudy;

pub use app::{task_period_ms, MarApp, Measurement, TASK_GAP_MS, TASK_JITTER_MS, TASK_PERIOD_MS};
pub use edge::{
    run_edge_hbo_warm, stadium_cell, stadium_cell_traced, EdgeMeasurement, EdgeSpec,
    EdgeSystemOutcome, EdgeWorld,
};
pub use experiment::{
    run_hbo_warm, run_hbo_warm_keyed, scenario_signature, BaselineOutcome, ExperimentResult,
    HboRunResult, WarmRunResult,
};
pub use fleet::{
    class_signature, run_class_plan, run_fleet_cell, run_fleet_cell_traced, run_mobility_cell,
    run_mobility_cell_traced, DeviceClass, FleetCellResult, FleetPlanResult, FleetSpec,
};
pub use rows::JsonRow;
pub use runner::{RunnerReport, SweepJob, SweepOutcome, SweepResult};
pub use scenario::{cf1_tasks, cf2_tasks, ScenarioSpec, TaskSpec};
pub use telemetry::{ProcessorTelemetry, TelemetrySummary};
