//! Scripted time-series experiments: the motivation study of Fig. 2
//! (manual allocation changes and object additions) and the activation
//! study of Fig. 8 (event-based vs periodic policy over a long session).

use hbo_core::{
    ActivationDecision, ActivationPolicy, ActivationReason, HboConfig, HboController,
    PeriodicPolicy,
};
use nnmodel::{Delegate, ModelZoo};
use simcore::rand::SeedableRng;
use simcore::{SimDuration, SimTime};
use soc::{DeviceProfile, SocSim, SourceSpec, Stage, StageSeq, StreamId, StreamSpec};

use crate::app::MarApp;
use crate::experiment::CONTROL_PERIOD_SECS;
use crate::load::{inflated_plan, render_utilization};
use crate::scenario::ScenarioSpec;

/// An event in a Fig. 2-style script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptEvent {
    /// Start a new instance of `model` on `delegate`.
    StartTask {
        /// Model name in the zoo.
        model: String,
        /// Initial delegate.
        delegate: Delegate,
    },
    /// Move the `task`-th started task to `delegate` (the C/G/N dots of
    /// Fig. 2).
    MoveTask {
        /// Index into the started tasks, in start order.
        task: usize,
        /// New delegate.
        delegate: Delegate,
    },
    /// Set the render load (the red crosses of Fig. 2): `visible_tris`
    /// triangles across `objects` objects.
    SetRenderLoad {
        /// Visible triangles per frame.
        visible_tris: f64,
        /// On-screen object count (drives CPU prep cost).
        objects: usize,
    },
}

/// A `(time, event)` script entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptPoint {
    /// When the event fires, in seconds.
    pub at_secs: f64,
    /// What happens.
    pub event: ScriptEvent,
}

/// The latency trace of one scripted task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTrace {
    /// Task label, e.g. `"deeplabv3_5"`.
    pub name: String,
    /// `(time, delegate)` allocation changes, including the initial one.
    pub delegate_changes: Vec<(f64, Delegate)>,
    /// Mean latency (ms) per sample window, `None` before the task starts
    /// or when no inference completed in the window.
    pub latency_ms: Vec<Option<f64>>,
}

/// The output of [`run_script`]: per-task latency series on a common
/// sampling grid — everything needed to re-plot Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionTrace {
    /// Sample timestamps (seconds).
    pub sample_secs: Vec<f64>,
    /// Per-task traces, in start order.
    pub tasks: Vec<TaskTrace>,
    /// `(time, label)` markers for render-load events.
    pub markers: Vec<(f64, String)>,
}

/// Runs a Fig. 2-style script on a bare simulated SoC.
///
/// Each event is applied at its exact `at_secs` (the sim runs up to that
/// instant first); the latency trace is sampled every `sample_secs`, with
/// the final window clamped to `total_secs` when the horizon is not a
/// multiple of the sample period. Events scheduled at or beyond
/// `total_secs` never fire.
///
/// # Panics
///
/// Panics if the script references unknown models, out-of-range task
/// indices, or incompatible delegates.
pub fn run_script(
    device: &DeviceProfile,
    zoo: &ModelZoo,
    script: &[ScriptPoint],
    total_secs: f64,
    sample_secs: f64,
) -> ContentionTrace {
    assert!(sample_secs > 0.0 && total_secs > 0.0, "invalid horizon");
    let (topo, procs) = device.topology();
    let mut sim = SocSim::new(topo);
    // Render source present from the start with negligible load.
    let render = sim.add_source(
        SourceSpec::new(
            StageSeq::new(vec![Stage::compute(
                procs.cpu_render,
                SimDuration::from_micros_f64(50.0),
            )]),
            device.frame_period,
            device.max_frames_in_flight,
        )
        .with_label("render"),
    );

    let mut script: Vec<ScriptPoint> = script.to_vec();
    script.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));

    struct Running {
        name: String,
        model: String,
        stream: StreamId,
        changes: Vec<(f64, Delegate)>,
    }
    let mut tasks: Vec<Running> = Vec::new();
    let mut markers = Vec::new();
    let mut instance_counter: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();

    let mut utilization = 0.0;
    let mut next_event = 0;
    let mut sample_times = Vec::new();
    let mut samples: Vec<Vec<Option<f64>>> = Vec::new(); // per sample, per task

    let steps = (total_secs / sample_secs).ceil() as usize;
    for step in 1..=steps {
        // The final window is clamped so the sim never runs past the
        // requested horizon when it is not a multiple of `sample_secs`.
        let t_end = (step as f64 * sample_secs).min(total_secs);
        let window_start = sim.now();
        // Run the sim to each due event's exact time before applying it;
        // events scheduled at or beyond `total_secs` never fire.
        while next_event < script.len() && script[next_event].at_secs < t_end {
            sim.run_until(SimTime::from_secs_f64(
                script[next_event].at_secs.max(sim.now().as_secs_f64()),
            ));
            let point = &script[next_event];
            let now_secs = sim.now().as_secs_f64();
            match &point.event {
                ScriptEvent::StartTask { model, delegate } => {
                    let m = zoo
                        .get(model)
                        .unwrap_or_else(|| panic!("model {model:?} not in zoo"));
                    let plan = inflated_plan(m, *delegate, device, procs, utilization)
                        .unwrap_or_else(|| panic!("{model} cannot run on {delegate}"));
                    let n = instance_counter.entry(model.clone()).or_insert(0);
                    *n += 1;
                    let name = format!("{model}_{n}");
                    let stream = sim.add_stream(
                        StreamSpec::new(plan, SimDuration::from_millis_f64(2.0))
                            .with_period(SimDuration::from_millis_f64(crate::app::task_period_ms(
                                tasks.len(),
                            )))
                            .with_jitter(SimDuration::from_millis_f64(crate::app::TASK_JITTER_MS))
                            .with_label(name.clone()),
                    );
                    tasks.push(Running {
                        name,
                        model: model.clone(),
                        stream,
                        changes: vec![(now_secs, *delegate)],
                    });
                }
                ScriptEvent::MoveTask { task, delegate } => {
                    let t = tasks
                        .get_mut(*task)
                        .unwrap_or_else(|| panic!("task index {task} out of range"));
                    let m = zoo.get(&t.model).expect("started model in zoo");
                    let plan = inflated_plan(m, *delegate, device, procs, utilization)
                        .unwrap_or_else(|| panic!("{} cannot run on {delegate}", t.model));
                    sim.update_stream(t.stream, plan);
                    t.changes.push((now_secs, *delegate));
                }
                ScriptEvent::SetRenderLoad {
                    visible_tris,
                    objects,
                } => {
                    sim.update_source(
                        render,
                        StageSeq::new(vec![
                            Stage::compute(procs.cpu_render, device.render.cpu_frame(*objects)),
                            Stage::compute(procs.gpu, device.render.gpu_frame(*visible_tris)),
                        ]),
                    );
                    utilization = render_utilization(device, *visible_tris);
                    // Re-derive every running task's plan under the new
                    // bandwidth pressure.
                    for t in &tasks {
                        let m = zoo.get(&t.model).expect("started model in zoo");
                        let current = t.changes.last().expect("task has a delegate").1;
                        let plan = inflated_plan(m, current, device, procs, utilization)
                            .expect("current delegate is compatible");
                        sim.update_stream(t.stream, plan);
                    }
                    markers.push((now_secs, format!("{objects} objects")));
                }
            }
            next_event += 1;
        }
        sim.run_until(SimTime::from_secs_f64(t_end));
        sample_times.push(t_end);
        samples.push(
            tasks
                .iter()
                .map(|t| sim.stream_metrics(t.stream).mean_since(window_start))
                .collect(),
        );
    }

    // Transpose into per-task traces (earlier windows predate some tasks).
    let traces = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| TaskTrace {
            name: t.name.clone(),
            delegate_changes: t.changes.clone(),
            latency_ms: samples
                .iter()
                .map(|row| row.get(i).copied().flatten())
                .collect(),
        })
        .collect();

    ContentionTrace {
        sample_secs: sample_times,
        tasks: traces,
        markers,
    }
}

/// Which activation policy drives [`run_activation_study`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The paper's event-based policy (Section IV-E).
    EventBased,
    /// Periodic activation every `interval_secs` (Fig. 8b).
    Periodic {
        /// Seconds between forced activations.
        interval_secs: f64,
    },
    /// The Section VI extension: event-based triggering, but a lookup
    /// table memoizing `(taskset, T_max, distance)` → configuration is
    /// consulted first — familiar conditions reuse the stored solution
    /// instead of paying for a fresh Bayesian exploration.
    LookupAssisted,
}

/// One reward sample of the activation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardSample {
    /// Sample time (seconds).
    pub t_secs: f64,
    /// Live reward `B_t`.
    pub reward: f64,
    /// True if the sample was taken while Algorithm 1 was exploring.
    pub during_activation: bool,
}

/// The output of [`run_activation_study`] — everything plotted in Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationTrace {
    /// Reward samples on the monitoring grid.
    pub samples: Vec<RewardSample>,
    /// `(time, reason)` of each full (exploring) activation.
    pub activations: Vec<(f64, ActivationReason)>,
    /// Times at which a stored configuration was reused instead of
    /// activating (only with [`PolicyKind::LookupAssisted`]).
    pub reuses: Vec<f64>,
    /// Times at which an object was placed (the O signs).
    pub placements: Vec<f64>,
    /// Times at which the user's distance changed inside the run.
    pub distance_changes: Vec<f64>,
}

/// Runs the Fig. 8 experiment: objects placed on a schedule, the user
/// stepping away late in the run, the chosen policy deciding when to
/// re-run Algorithm 1.
///
/// `placement_secs` lists when each pending object is placed;
/// `distance_changes` moves the user to a new distance at given times
/// (sorted by time).
pub fn run_activation_study(
    spec: &ScenarioSpec,
    config: &HboConfig,
    policy: PolicyKind,
    placement_secs: &[f64],
    distance_changes: &[(f64, f64)],
    total_secs: f64,
    seed: u64,
) -> ActivationTrace {
    let monitor_period = 2.0; // the paper monitors B_t at 2 s intervals
    let mut app = MarApp::new(spec);
    let mut hbo = HboController::new(spec.profiles(), config.clone());
    let mut event_policy = ActivationPolicy::paper_default();
    let mut periodic = match policy {
        PolicyKind::Periodic { interval_secs } => Some(PeriodicPolicy::new(
            (interval_secs / monitor_period).round().max(1.0) as usize,
        )),
        PolicyKind::EventBased | PolicyKind::LookupAssisted => None,
    };
    let mut rng = simcore::rand::StdRng::seed_from_u64(seed);

    let mut samples = Vec::new();
    let mut activations = Vec::new();
    let mut reuses = Vec::new();
    let mut placements = Vec::new();
    let mut distance_done = Vec::new();
    let mut next_placement = 0;
    let mut next_distance = 0;
    let w = config.w;
    let mut lookup = hbo_core::LookupTable::new();
    let use_lookup = policy == PolicyKind::LookupAssisted;
    // The policy sees a short trailing mean rather than one raw window:
    // the paper monitors B_t every 2 s; smoothing over three samples keeps
    // single-window measurement noise from masquerading as a real change.
    let mut recent: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    let smoothed = |r: f64, recent: &mut std::collections::VecDeque<f64>| -> f64 {
        recent.push_back(r);
        if recent.len() > 3 {
            recent.pop_front();
        }
        recent.iter().sum::<f64>() / recent.len() as f64
    };

    while app.now().as_secs_f64() < total_secs {
        let now = app.now().as_secs_f64();
        // Scene events due now.
        while next_placement < placement_secs.len() && placement_secs[next_placement] <= now {
            if app.place_next_object() {
                placements.push(now);
            }
            next_placement += 1;
        }
        while next_distance < distance_changes.len() && distance_changes[next_distance].0 <= now {
            app.set_user_distance(distance_changes[next_distance].1);
            distance_done.push(now);
            next_distance += 1;
        }

        // One monitoring sample.
        let m = app.measure_for_secs(monitor_period);
        let reward = m.reward(w);
        samples.push(RewardSample {
            t_secs: app.now().as_secs_f64(),
            reward,
            during_activation: false,
        });
        let policy_reward = smoothed(reward, &mut recent);

        // Policy decision — never before the first object is on screen.
        let decision = if app.scene().is_empty() {
            ActivationDecision::Hold
        } else {
            match &mut periodic {
                Some(p) => p.check(),
                None => event_policy.check(policy_reward),
            }
        };

        if let ActivationDecision::Activate(reason) = decision {
            // Lookup-assisted mode: reuse a stored configuration when the
            // current conditions approximately match a past activation.
            let lookup_key = lookup_key_now(&app);
            if use_lookup {
                if let Some(stored) = lookup.find_similar(&lookup_key).cloned() {
                    app.set_allocation(&stored.allocation);
                    app.set_triangle_ratio(stored.x);
                    app.run_for_secs(monitor_period);
                    let m = app.measure_for_secs(monitor_period);
                    event_policy.set_reference(m.reward(w));
                    recent.clear();
                    reuses.push(app.now().as_secs_f64());
                    samples.push(RewardSample {
                        t_secs: app.now().as_secs_f64(),
                        reward: m.reward(w),
                        during_activation: false,
                    });
                    continue;
                }
            }
            activations.push((app.now().as_secs_f64(), reason));
            hbo.reset_activation();
            // Seed the dataset with the configuration currently running.
            let incumbent = hbo.incumbent_point(
                app.allocation(),
                app.scene().overall_ratio().clamp(config.r_min, 1.0),
            );
            app.apply(&incumbent);
            let m = app.measure_for_secs(CONTROL_PERIOD_SECS);
            samples.push(RewardSample {
                t_secs: app.now().as_secs_f64(),
                reward: m.reward(w),
                during_activation: true,
            });
            hbo.observe(incumbent, m.quality, m.epsilon);
            while !hbo.is_done() {
                let point = hbo.next_point(&mut rng);
                app.apply(&point);
                let m = app.measure_for_secs(CONTROL_PERIOD_SECS);
                samples.push(RewardSample {
                    t_secs: app.now().as_secs_f64(),
                    reward: m.reward(w),
                    during_activation: true,
                });
                hbo.observe(point, m.quality, m.epsilon);
            }
            let best = hbo.best().expect("activation ran").clone();
            app.apply(&best.point);
            // Let the new plans take effect (streams pick up the new
            // configuration at their next inference), then average several
            // monitoring windows to form a faithful reference reward.
            app.run_for_secs(monitor_period);
            let mut reference = 0.0;
            let reference_windows = 3;
            for _ in 0..reference_windows {
                let m = app.measure_for_secs(monitor_period);
                reference += m.reward(w);
                samples.push(RewardSample {
                    t_secs: app.now().as_secs_f64(),
                    reward: m.reward(w),
                    during_activation: false,
                });
            }
            let reference = reference / reference_windows as f64;
            event_policy.set_reference(reference);
            recent.clear();
            if use_lookup {
                lookup.store(
                    lookup_key_now(&app),
                    hbo_core::StoredConfig {
                        c: best.point.c.clone(),
                        x: best.point.x,
                        allocation: best.point.allocation.clone(),
                        reward: reference,
                    },
                );
            }
        }
    }

    ActivationTrace {
        samples,
        activations,
        reuses,
        placements,
        distance_changes: distance_done,
    }
}

/// The memoization key for the app's current conditions.
fn lookup_key_now(app: &MarApp) -> hbo_core::LookupKey {
    hbo_core::LookupKey::quantize(
        hbo_core::LookupKey::fingerprint_taskset(app.task_names().into_iter()),
        app.scene().total_max_triangles().max(1),
        app.scene().user_distance(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s22() -> (DeviceProfile, ModelZoo) {
        (DeviceProfile::galaxy_s22(), ModelZoo::galaxy_s22())
    }

    #[test]
    fn script_reproduces_fig2_reversal_mechanism() {
        // Miniature Fig. 2b: three deeplabv3 on NNAPI, objects appear,
        // then one task moves to the CPU and everyone improves.
        let (device, zoo) = s22();
        let start = |at_secs| ScriptPoint {
            at_secs,
            event: ScriptEvent::StartTask {
                model: "deeplabv3".to_owned(),
                delegate: Delegate::Nnapi,
            },
        };
        let script = vec![
            start(0.0),
            start(2.0),
            start(4.0),
            ScriptPoint {
                at_secs: 8.0,
                event: ScriptEvent::SetRenderLoad {
                    visible_tris: 500_000.0,
                    objects: 6,
                },
            },
            ScriptPoint {
                at_secs: 16.0,
                event: ScriptEvent::MoveTask {
                    task: 2,
                    delegate: Delegate::Cpu,
                },
            },
        ];
        let trace = run_script(&device, &zoo, &script, 24.0, 1.0);
        assert_eq!(trace.tasks.len(), 3);
        assert_eq!(trace.sample_secs.len(), 24);
        assert_eq!(trace.markers.len(), 1);

        let mean_at = |task: usize, from: usize, to: usize| -> f64 {
            let vals: Vec<f64> = trace.tasks[task].latency_ms[from..to]
                .iter()
                .flatten()
                .copied()
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        // Objects raise task 0's latency (NNAPI rides the loaded GPU)...
        let before_objects = mean_at(0, 6, 8);
        let with_objects = mean_at(0, 12, 16);
        assert!(
            with_objects > before_objects * 1.1,
            "objects should hurt NNAPI: {before_objects} -> {with_objects}"
        );
        // ...and moving task 2 to the CPU helps the ones left on NNAPI.
        let after_move = mean_at(0, 20, 24);
        assert!(
            after_move < with_objects,
            "CPU relocation should relieve NNAPI: {with_objects} -> {after_move}"
        );
    }

    #[test]
    fn events_fire_at_their_exact_time_not_the_window_boundary() {
        // Regression: any event with `at_secs < t_end` used to be applied
        // at the *previous* window boundary — a mid-window move at t=7.5
        // was recorded (and took effect) at t=7.0.
        let (device, zoo) = s22();
        let script = vec![
            ScriptPoint {
                at_secs: 0.0,
                event: ScriptEvent::StartTask {
                    model: "deeplabv3".to_owned(),
                    delegate: Delegate::Nnapi,
                },
            },
            ScriptPoint {
                at_secs: 7.5,
                event: ScriptEvent::MoveTask {
                    task: 0,
                    delegate: Delegate::Cpu,
                },
            },
            ScriptPoint {
                at_secs: 8.25,
                event: ScriptEvent::SetRenderLoad {
                    visible_tris: 300_000.0,
                    objects: 4,
                },
            },
        ];
        let trace = run_script(&device, &zoo, &script, 10.0, 1.0);
        let changes = &trace.tasks[0].delegate_changes;
        assert_eq!(changes.len(), 2);
        assert!(
            (changes[1].0 - 7.5).abs() < 1e-9,
            "move applied at {} instead of 7.5",
            changes[1].0
        );
        assert!(
            (trace.markers[0].0 - 8.25).abs() < 1e-9,
            "render-load marker at {} instead of 8.25",
            trace.markers[0].0
        );
    }

    #[test]
    fn non_divisible_horizon_clamps_the_final_window() {
        // Regression: the ceil-derived grid silently ran the sim to 3.0 s
        // for a 2.5 s horizon, and events inside the overshoot (t=2.8)
        // fired even though they lie beyond the requested horizon.
        let (device, zoo) = s22();
        let script = vec![
            ScriptPoint {
                at_secs: 0.0,
                event: ScriptEvent::StartTask {
                    model: "deeplabv3".to_owned(),
                    delegate: Delegate::Cpu,
                },
            },
            ScriptPoint {
                at_secs: 2.8,
                event: ScriptEvent::MoveTask {
                    task: 0,
                    delegate: Delegate::Nnapi,
                },
            },
        ];
        let trace = run_script(&device, &zoo, &script, 2.5, 1.0);
        assert_eq!(trace.sample_secs, vec![1.0, 2.0, 2.5]);
        assert_eq!(
            trace.tasks[0].delegate_changes.len(),
            1,
            "event beyond the horizon must not fire"
        );
    }

    #[test]
    fn task_names_number_instances() {
        let (device, zoo) = s22();
        let script = vec![
            ScriptPoint {
                at_secs: 0.0,
                event: ScriptEvent::StartTask {
                    model: "deeplabv3".to_owned(),
                    delegate: Delegate::Cpu,
                },
            },
            ScriptPoint {
                at_secs: 1.0,
                event: ScriptEvent::StartTask {
                    model: "deeplabv3".to_owned(),
                    delegate: Delegate::Nnapi,
                },
            },
        ];
        let trace = run_script(&device, &zoo, &script, 3.0, 1.0);
        assert_eq!(trace.tasks[0].name, "deeplabv3_1");
        assert_eq!(trace.tasks[1].name, "deeplabv3_2");
        // Delegate change log includes the initial allocation.
        assert_eq!(trace.tasks[0].delegate_changes[0].1, Delegate::Cpu);
    }

    #[test]
    fn activation_study_event_policy_fires_sparsely() {
        let spec = ScenarioSpec::sc2_cf1();
        let config = HboConfig {
            n_initial: 2,
            iterations: 2,
            ..HboConfig::default()
        };
        let placements: Vec<f64> = (0..7).map(|i| 4.0 + 8.0 * i as f64).collect();
        let trace = run_activation_study(
            &spec,
            &config,
            PolicyKind::EventBased,
            &placements,
            &[(70.0, 4.0)],
            100.0,
            3,
        );
        assert!(!trace.samples.is_empty());
        assert_eq!(trace.placements.len(), 7);
        assert!(
            !trace.activations.is_empty(),
            "first placement must trigger an activation"
        );
        // Event-based: far fewer activations than monitoring samples.
        assert!(trace.activations.len() < 10);
    }

    #[test]
    fn periodic_policy_fires_more_often_than_event_based() {
        let spec = ScenarioSpec::sc2_cf2();
        let config = HboConfig {
            n_initial: 2,
            iterations: 4,
            ..HboConfig::default()
        };
        let placements = [2.0, 10.0];
        let event = run_activation_study(
            &spec,
            &config,
            PolicyKind::EventBased,
            &placements,
            &[],
            90.0,
            4,
        );
        let periodic = run_activation_study(
            &spec,
            &config,
            PolicyKind::Periodic { interval_secs: 4.0 },
            &placements,
            &[],
            90.0,
            4,
        );
        assert!(
            periodic.activations.len() > event.activations.len(),
            "periodic {} vs event {}",
            periodic.activations.len(),
            event.activations.len()
        );
    }
}
