//! Synthetic scenario generation: randomized object sets and tasksets for
//! robustness/generalization studies beyond the paper's four hand-built
//! scenarios.

use arscene::scenarios::CatalogEntry;
use arscene::QualityParams;
use simcore::rand::Rng;
use simcore::rand::SeedableRng;

use crate::scenario::{ScenarioSpec, TaskSpec};

/// An object archetype: a point on the heavy-flat ↔ light-steep spectrum
/// (oversampled meshes tolerate decimation; sparse meshes do not).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Archetype {
    /// Base name of generated instances.
    pub name: &'static str,
    /// Full-quality triangle count.
    pub triangles: u64,
    /// Trained Eq. (1) parameters.
    pub params: QualityParams,
}

/// The built-in archetype spectrum used by [`random_scenario`].
pub fn archetypes() -> Vec<Archetype> {
    vec![
        Archetype {
            name: "mega",
            triangles: 160_000,
            params: QualityParams::new(0.78, -1.96, 1.18, 1.2),
        },
        Archetype {
            name: "heavy",
            triangles: 90_000,
            params: QualityParams::new(0.87, -2.18, 1.31, 1.4),
        },
        Archetype {
            name: "medium",
            triangles: 30_000,
            params: QualityParams::new(1.00, -2.30, 1.30, 1.1),
        },
        Archetype {
            name: "light",
            triangles: 6_000,
            params: QualityParams::new(0.80, -1.80, 1.00, 1.0),
        },
        Archetype {
            name: "tiny",
            triangles: 2_300,
            params: QualityParams::new(1.20, -2.60, 1.40, 0.9),
        },
    ]
}

/// Knobs for [`random_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Inclusive range of object counts.
    pub objects: (usize, usize),
    /// Inclusive range of AI task instance counts.
    pub tasks: (usize, usize),
    /// Range of user distances (meters).
    pub distance: (f64, f64),
    /// Range of per-object depth multipliers.
    pub depth_factor: (f64, f64),
    /// Models drawn from (must exist in the Pixel 7 zoo).
    pub model_pool: Vec<&'static str>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            objects: (3, 10),
            tasks: (3, 6),
            distance: (0.8, 1.8),
            depth_factor: (0.7, 1.5),
            model_pool: vec![
                "mnist",
                "mobilenetDetv1",
                "efficientclass-lite0",
                "inception-v1-q",
                "mobilenet-v1",
                "model-metadata",
            ],
        }
    }
}

/// Generates a deterministic random scenario on the Pixel 7.
///
/// # Panics
///
/// Panics if the config's ranges are inverted or the model pool is empty.
pub fn random_scenario(seed: u64, config: &SynthConfig) -> ScenarioSpec {
    assert!(
        config.objects.0 <= config.objects.1,
        "inverted object range"
    );
    assert!(config.tasks.0 <= config.tasks.1, "inverted task range");
    assert!(!config.model_pool.is_empty(), "empty model pool");
    let mut rng = simcore::rand::StdRng::seed_from_u64(seed);
    let mut spec = ScenarioSpec::sc1_cf1();
    spec.name = format!("RAND-{seed}");

    let arch = archetypes();
    let n_objects = rng.gen_range(config.objects.0..=config.objects.1);
    let mut objects = Vec::new();
    for i in 0..n_objects {
        let a = arch[rng.gen_range(0..arch.len())];
        objects.push(CatalogEntry {
            name: Box::leak(format!("{}{i}", a.name).into_boxed_str()),
            count: 1,
            triangles: a.triangles,
            params: a.params,
            distance_factor: rng.gen_range(config.depth_factor.0..config.depth_factor.1),
        });
    }
    spec.objects = objects;

    let n_tasks = rng.gen_range(config.tasks.0..=config.tasks.1);
    let mut tasks: Vec<TaskSpec> = Vec::new();
    for _ in 0..n_tasks {
        let model = config.model_pool[rng.gen_range(0..config.model_pool.len())];
        match tasks.iter_mut().find(|t| t.model == model) {
            Some(t) => t.count += 1,
            None => tasks.push(TaskSpec::new(model, 1)),
        }
    }
    spec.tasks = tasks;
    spec.user_distance = rng.gen_range(config.distance.0..config.distance.1);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = SynthConfig::default();
        let a = random_scenario(5, &c);
        let b = random_scenario(5, &c);
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.user_distance, b.user_distance);
        let c2 = random_scenario(6, &c);
        assert!(a.objects != c2.objects || a.tasks != c2.tasks);
    }

    #[test]
    fn respects_configured_ranges() {
        let c = SynthConfig {
            objects: (2, 4),
            tasks: (1, 2),
            distance: (1.0, 1.1),
            ..SynthConfig::default()
        };
        for seed in 0..20 {
            let s = random_scenario(seed, &c);
            assert!((2..=4).contains(&s.objects.len()));
            assert!((1..=2).contains(&s.task_count()));
            assert!((1.0..1.1).contains(&s.user_distance));
        }
    }

    #[test]
    fn generated_scenarios_are_runnable() {
        let spec = random_scenario(11, &SynthConfig::default());
        let mut app = crate::MarApp::new(&spec);
        app.place_all_objects();
        let m = app.measure_for_secs(1.0);
        assert!(m.quality > 0.0 && m.epsilon >= 0.0);
        // Profiles resolve for every generated task.
        assert_eq!(spec.profiles().len(), spec.task_count());
    }

    #[test]
    fn archetypes_span_the_weight_spectrum() {
        let a = archetypes();
        assert!(a.first().unwrap().triangles > 50 * a.last().unwrap().triangles);
        for arch in &a {
            // Trained-curve invariants: zero error at full quality,
            // decreasing error in R.
            assert!(arch.params.polynomial(1.0).abs() < 1e-9);
            assert!(arch.params.marginal(1.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty model pool")]
    fn empty_pool_panics() {
        random_scenario(
            0,
            &SynthConfig {
                model_pool: vec![],
                ..SynthConfig::default()
            },
        );
    }
}
