//! The simulated user-study panel of Fig. 9.
//!
//! The paper asked seven students to score perceived virtual-object
//! quality on a 1–5 scale against a full-quality reference. Without
//! access to humans, we model each rater as a noisy psychometric function
//! of the model-estimated scene quality: the paper's own premise (carried
//! over from eAR) is that Eq. (1)-quality tracks perception, and Fig. 9
//! confirms it — here we encode that mapping explicitly.

use simcore::rand::Rng;
use simcore::rand::SeedableRng;

/// Anchor points `(model quality, mean opinion score)` of the
/// psychometric curve, calibrated against the paper's own user study
/// (Section V-E) — the only perception ground truth available: SML's
/// uniform x = 0.2 scene scored 3.0 close / 3.6 far, HBO's
/// sensitivity-weighted x ≈ 0.5 scene scored 4.9 close / 5.0 far. Human
/// raters compress the low end of the scale (a recognizable object rarely
/// scores 1), which is why the curve is much flatter than the raw
/// model-quality axis.
const MOS_ANCHORS: [(f64, f64); 6] = [
    (0.00, 1.0),
    (0.23, 3.0),
    (0.67, 3.6),
    (0.85, 4.6),
    (0.95, 5.0),
    (1.00, 5.0),
];

/// Mean opinion score predicted from scene quality `q ∈ [0, 1]`:
/// monotone piecewise-linear interpolation through the calibration
/// anchors described above.
pub fn mos_from_quality(q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    for pair in MOS_ANCHORS.windows(2) {
        let ((q0, m0), (q1, m1)) = (pair[0], pair[1]);
        if q <= q1 {
            if q1 - q0 < 1e-12 {
                return m1;
            }
            return m0 + (m1 - m0) * (q - q0) / (q1 - q0);
        }
    }
    5.0
}

/// One simulated participant: a fixed severity bias plus per-judgement
/// noise, scores snapped to the integer 1–5 scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rater {
    /// Persistent severity bias (negative raters score everything lower).
    pub bias: f64,
    /// Standard deviation of per-judgement noise.
    pub noise_sd: f64,
}

impl Rater {
    /// Scores a scene of quality `q`.
    pub fn score(&self, q: f64, rng: &mut impl Rng) -> f64 {
        let noise: f64 = {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        (mos_from_quality(q) + self.bias + self.noise_sd * noise)
            .round()
            .clamp(1.0, 5.0)
    }
}

/// A panel of simulated participants.
#[derive(Debug, Clone, PartialEq)]
pub struct RaterPanel {
    raters: Vec<Rater>,
    seed: u64,
}

impl RaterPanel {
    /// The paper's setup: seven participants.
    pub fn of_seven(seed: u64) -> Self {
        Self::new(7, seed)
    }

    /// Creates a panel of `n` raters with deterministic per-rater biases.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one rater");
        let mut rng = simcore::rand::StdRng::seed_from_u64(seed);
        let raters = (0..n)
            .map(|_| Rater {
                bias: rng.gen_range(-0.3..0.3),
                noise_sd: 0.25,
            })
            .collect();
        RaterPanel { raters, seed }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.raters.len()
    }

    /// True if the panel is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.raters.is_empty()
    }

    /// Collects every rater's score for a scene of quality `q` under a
    /// labeled condition (the label decorrelates noise across conditions).
    pub fn score_condition(&self, q: f64, condition: &str) -> Vec<f64> {
        let mut scores = Vec::with_capacity(self.raters.len());
        for (i, rater) in self.raters.iter().enumerate() {
            let stream =
                simcore::rng::RngFactory::new(self.seed).indexed_stream(condition, i as u64);
            let mut rng = stream;
            scores.push(rater.score(q, &mut rng));
        }
        scores
    }

    /// Mean score for a condition (the bars of Fig. 9a).
    pub fn mean_score(&self, q: f64, condition: &str) -> f64 {
        let scores = self.score_condition(q, condition);
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mos_is_monotone_in_quality() {
        let qs = [0.2, 0.5, 0.7, 0.85, 0.95, 1.0];
        for w in qs.windows(2) {
            assert!(mos_from_quality(w[0]) <= mos_from_quality(w[1]));
        }
    }

    #[test]
    fn perfect_quality_scores_five() {
        assert_eq!(mos_from_quality(1.0), 5.0);
        // Near-perfect is still essentially indistinguishable.
        assert!(mos_from_quality(0.96) > 4.9);
    }

    #[test]
    fn calibration_anchors_reproduce_the_paper_study() {
        // SML close (Q ~ 0.23) scored 3.0; SML far (Q ~ 0.67) scored 3.6.
        assert!((mos_from_quality(0.23) - 3.0).abs() < 1e-9);
        assert!((mos_from_quality(0.67) - 3.6).abs() < 1e-9);
        assert_eq!(mos_from_quality(0.0), 1.0);
    }

    #[test]
    fn panel_scores_are_deterministic() {
        let p = RaterPanel::of_seven(42);
        assert_eq!(
            p.score_condition(0.9, "close"),
            p.score_condition(0.9, "close")
        );
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn panel_scores_live_on_the_scale() {
        let p = RaterPanel::of_seven(1);
        for q in [0.0, 0.3, 0.6, 0.9, 1.0] {
            for s in p.score_condition(q, "x") {
                assert!((1.0..=5.0).contains(&s));
                assert_eq!(s, s.round());
            }
        }
    }

    #[test]
    fn better_quality_scores_better_on_average() {
        let p = RaterPanel::of_seven(7);
        let hi = p.mean_score(0.97, "hbo-close");
        let lo = p.mean_score(0.55, "sml-close");
        assert!(hi > lo + 0.8, "hi {hi} vs lo {lo}");
    }

    #[test]
    fn conditions_decorrelate_noise() {
        let p = RaterPanel::of_seven(7);
        // Same quality, different condition labels: usually not identical.
        let a = p.score_condition(0.85, "a");
        let b = p.score_condition(0.85, "b");
        assert_eq!(a.len(), b.len());
        // They can coincide by chance per-rater, but not the mean of many.
        let differs = a.iter().zip(&b).any(|(x, y)| x != y);
        assert!(differs);
    }
}
