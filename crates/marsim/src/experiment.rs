//! Full experiment drivers: HBO activations and baseline evaluations
//! (Figs. 4–7, Tables III–IV).

use hbo_core::{
    all_nnapi_allocation, static_best_allocation, Baseline, BoConfig, CostMode, HboConfig,
    HboController, HboPoint, IterationRecord, ScenarioSignature, StoredConfig, WarmCache,
};
use nnmodel::Delegate;
use simcore::rand::SeedableRng;
use simcore::trace::{ArgValue, Tracer, TrackId};
use simcore::SimTime;

use crate::app::{MarApp, Measurement};
use crate::scenario::ScenarioSpec;
use crate::telemetry::TelemetrySummary;

/// Control period per BO iteration, in simulated seconds: the time a
/// candidate configuration runs before its `(Q, ε)` is recorded.
pub const CONTROL_PERIOD_SECS: f64 = 2.0;

/// Warm-up time after the app starts before the first measurement.
const WARMUP_SECS: f64 = 1.0;

/// The outcome of one HBO activation.
#[derive(Debug, Clone)]
pub struct HboRunResult {
    /// Scenario label.
    pub scenario: String,
    /// Every iteration (5 random + 15 BO by default), in order.
    pub records: Vec<IterationRecord>,
    /// The lowest-cost iteration — the configuration HBO keeps.
    pub best: IterationRecord,
    /// Running best-cost trace (Fig. 4c / Fig. 7 series).
    pub best_cost_trace: Vec<f64>,
    /// Telemetry totals for the whole activation (processor completions,
    /// dropped frames, peak queue depths, edge counters).
    pub telemetry: TelemetrySummary,
}

impl HboRunResult {
    /// Iterations until the final best cost was first reached (the paper's
    /// convergence metric: "converges … after just 7 iterations").
    pub fn iterations_to_converge(&self) -> usize {
        let best = self.best.cost;
        self.best_cost_trace
            .iter()
            .position(|&c| (c - best).abs() < 1e-12)
            .map(|i| i + 1)
            .unwrap_or(self.best_cost_trace.len())
    }

    /// Euclidean distances between consecutive BO inputs (Fig. 6a).
    pub fn consecutive_distances(&self) -> Vec<f64> {
        self.records
            .windows(2)
            .map(|w| {
                w[0].point
                    .z
                    .iter()
                    .zip(&w[1].point.z)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }
}

/// Runs one full HBO activation on a freshly started app with every object
/// placed (the setting of Section V-B).
pub fn run_hbo(spec: &ScenarioSpec, config: &HboConfig, seed: u64) -> HboRunResult {
    run_hbo_traced(spec, config, seed, Tracer::disabled())
}

/// Emits the control-loop span of one completed HBO window: an `X` span
/// covering the measurement period, carrying the iteration index, the
/// applied configuration, and the measured `(Q, ε, φ)`.
pub(crate) fn trace_hbo_window(
    tracer: &Tracer,
    track: TrackId,
    iter: usize,
    start: SimTime,
    end: SimTime,
    rec: &IterationRecord,
) {
    if !tracer.is_enabled() {
        return;
    }
    let alloc: String = rec.point.allocation.iter().map(|d| d.letter()).collect();
    tracer.complete(
        start,
        end - start,
        track,
        "hbo",
        "window",
        &[
            ("iter", ArgValue::from(iter)),
            ("alloc", ArgValue::from(alloc)),
            ("x", ArgValue::from(rec.point.x)),
            ("quality", ArgValue::from(rec.quality)),
            ("epsilon", ArgValue::from(rec.epsilon)),
            ("cost", ArgValue::from(rec.cost)),
        ],
    );
}

/// [`run_hbo`] with a tracer: the SoC simulation gets per-slot spans and
/// queue counters, each control window gets an `"hbo"` `X` span, and the
/// Bayesian optimizer gets per-suggest spans. A disabled tracer makes
/// this bit-identical to [`run_hbo`] (tracing never touches the RNG
/// streams or the measurement path).
pub fn run_hbo_traced(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
) -> HboRunResult {
    run_hbo_inner(spec, config, seed, tracer, None)
}

/// Turns a cached converged configuration into a concrete seed window
/// point (mirrors how `HboController` lays out `z = c ++ [x]`).
pub(crate) fn point_from_stored(stored: &StoredConfig) -> HboPoint {
    let mut z = stored.c.clone();
    z.push(stored.x);
    HboPoint {
        z,
        c: stored.c.clone(),
        x: stored.x,
        allocation: stored.allocation.clone(),
    }
}

/// The shared activation driver behind [`run_hbo_traced`] and
/// [`run_hbo_warm`]. `warm_seed` (when present) is observed as one extra
/// seeded window right after the incumbent, feeding the cached converged
/// configuration into the BO dataset without touching the RNG stream.
fn run_hbo_inner(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    tracer: Tracer,
    warm_seed: Option<&StoredConfig>,
) -> HboRunResult {
    let mut app = MarApp::new_traced(spec, tracer.clone());
    let hbo_track = tracer.register_track("hbo", "hbo control");
    app.place_all_objects();
    app.run_for_secs(WARMUP_SECS);
    let mut hbo = HboController::new(spec.profiles(), config.clone());
    hbo.set_tracer(tracer.clone());
    let mut rng = simcore::rand::StdRng::seed_from_u64(seed);
    // Seed the dataset with the configuration already running (the static
    // best-isolated allocation at the app's current ratio): the chosen
    // "best" can then never regress below the incumbent.
    let incumbent = hbo.incumbent_point(app.allocation(), app.scene().overall_ratio().min(1.0));
    app.apply(&incumbent);
    let start = app.now();
    let m = app.measure_for_secs(CONTROL_PERIOD_SECS);
    hbo.observe(incumbent, m.quality, m.epsilon);
    trace_hbo_window(&tracer, hbo_track, 0, start, m.at, &hbo.records()[0]);
    let mut seeded_windows = 1u64; // the incumbent costs no suggest call
    if let Some(stored) = warm_seed {
        let point = point_from_stored(stored);
        app.apply(&point);
        let start = app.now();
        let m = app.measure_for_secs(CONTROL_PERIOD_SECS);
        hbo.observe(point, m.quality, m.epsilon);
        trace_hbo_window(&tracer, hbo_track, 1, start, m.at, &hbo.records()[1]);
        seeded_windows += 1;
    }
    while !hbo.is_done() {
        hbo.set_trace_now(app.now());
        let point = hbo.next_point(&mut rng);
        app.apply(&point);
        let start = app.now();
        let m = app.measure_for_secs(CONTROL_PERIOD_SECS);
        hbo.observe(point, m.quality, m.epsilon);
        let iter = hbo.completed_iterations() - 1;
        trace_hbo_window(&tracer, hbo_track, iter, start, m.at, &hbo.records()[iter]);
    }
    let best = hbo
        .best()
        .expect("activation ran at least one iteration")
        .clone();
    let mut telemetry = app.telemetry();
    telemetry.bo_suggests = hbo.completed_iterations() as u64 - seeded_windows;
    HboRunResult {
        scenario: spec.name.clone(),
        best_cost_trace: hbo.best_cost_trace(),
        records: hbo.records().to_vec(),
        best,
        telemetry,
    }
}

/// Computes the fleet-cache identity of a scenario: device fingerprint,
/// model multiset, render-load band (maximum scene triangles per metre of
/// user distance, half-octave quantized), and edge capability.
pub fn scenario_signature(spec: &ScenarioSpec) -> ScenarioSignature {
    let models = spec.task_models();
    let load = spec.scene().total_max_triangles() as f64 / spec.user_distance;
    ScenarioSignature::quantize(
        &spec.device.name,
        models.iter().map(|m| m.as_str()),
        load,
        spec.edge.is_some(),
    )
}

/// The outcome of one warm-started HBO activation.
#[derive(Debug, Clone)]
pub struct WarmRunResult {
    /// The activation outcome (telemetry carries the warm counters).
    pub run: HboRunResult,
    /// Whether the fleet cache supplied a usable seed configuration.
    pub warm_hit: bool,
    /// The signature the session looked up — and stored its own converged
    /// configuration back under.
    pub signature: ScenarioSignature,
}

/// Applies [`BoConfig::warm_default`]'s cheaper optimizer settings and a
/// minimal random design to a config whose dataset starts with a cached
/// converged seed.
pub(crate) fn warm_variant(config: &HboConfig) -> HboConfig {
    let warm = BoConfig::warm_default();
    let mut out = config.clone();
    out.bo.n_candidates = warm.n_candidates;
    out.bo.n_local = warm.n_local;
    out.bo.prune = warm.prune;
    // With the incumbent plus a converged seed already observed, long
    // random design is wasted wall-clock: hand over to the surrogate
    // almost immediately.
    out.n_initial = out.n_initial.min(2);
    out
}

/// True when a cached configuration fits the scenario's decision space
/// (a 3-simplex seed cannot warm a 4-simplex session or vice versa).
pub(crate) fn seed_fits(stored: &StoredConfig, spec: &ScenarioSpec) -> bool {
    let dim = if spec.profiles().iter().any(|p| p.supports(Delegate::Edge)) {
        Delegate::COUNT
    } else {
        Delegate::COUNT - 1
    };
    stored.c.len() == dim
}

/// [`run_hbo`] with the fleet-wide warm-start cache in the loop, keyed on
/// [`scenario_signature`]. See [`run_hbo_warm_keyed`].
pub fn run_hbo_warm(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    cache: &mut WarmCache,
) -> WarmRunResult {
    let sig = scenario_signature(spec);
    run_hbo_warm_keyed(spec, config, seed, cache, sig)
}

/// [`run_hbo_warm`] with a caller-chosen signature (the fleet planner
/// keys per-class plans on class identity rather than a full scenario).
///
/// On a cache hit the activation observes the cached converged
/// configuration as a seed window right after the incumbent, switches to
/// [`BoConfig::warm_default`]'s smaller candidate cloud with pruning, and
/// shortens the random design; on a miss it runs the cold config
/// unchanged. Either way the session's own best is stored back
/// (better-reward-wins) under the same signature, so later sessions warm
/// up from it. Deterministic given `(spec, config, seed)` and the cache
/// contents.
pub fn run_hbo_warm_keyed(
    spec: &ScenarioSpec,
    config: &HboConfig,
    seed: u64,
    cache: &mut WarmCache,
    signature: ScenarioSignature,
) -> WarmRunResult {
    let seed_config = cache
        .find(&signature)
        .filter(|s| seed_fits(s, spec))
        .cloned();
    let warm_hit = seed_config.is_some();
    let mut run = match &seed_config {
        Some(stored) => run_hbo_inner(
            spec,
            &warm_variant(config),
            seed,
            Tracer::disabled(),
            Some(stored),
        ),
        None => run_hbo_inner(spec, config, seed, Tracer::disabled(), None),
    };
    run.telemetry.warm_hits = warm_hit as u64;
    run.telemetry.warm_misses = !warm_hit as u64;
    cache.store(
        signature,
        StoredConfig {
            c: run.best.point.c.clone(),
            x: run.best.point.x,
            allocation: run.best.point.allocation.clone(),
            reward: -run.best.cost,
        },
    );
    WarmRunResult {
        run,
        warm_hit,
        signature,
    }
}

/// The measured outcome of one system (HBO or a baseline) on a scenario.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Which system.
    pub baseline: Baseline,
    /// Final allocation, in task order.
    pub allocation: Vec<Delegate>,
    /// Final triangle ratio.
    pub x: f64,
    /// Measured performance under the final configuration.
    pub measurement: Measurement,
}

impl BaselineOutcome {
    /// The reward `B = Q − w ε`.
    pub fn reward(&self, w: f64) -> f64 {
        self.measurement.reward(w)
    }
}

/// Applies a fixed configuration to a fresh app and measures it over an
/// extended window.
fn evaluate_fixed(
    spec: &ScenarioSpec,
    allocation: &[Delegate],
    x: f64,
    uniform_decimation: bool,
) -> Measurement {
    let mut app = MarApp::new(spec);
    app.place_all_objects();
    app.set_allocation(allocation);
    if uniform_decimation {
        // SML-style naive reduction (no sensitivity weighting).
        let mut scene_ratio = x;
        scene_ratio = scene_ratio.clamp(0.0, 1.0);
        app.set_uniform_ratio(scene_ratio);
    } else {
        app.set_triangle_ratio(x);
    }
    app.run_for_secs(WARMUP_SECS);
    app.measure_for_secs(2.0 * CONTROL_PERIOD_SECS)
}

/// Evaluates HBO plus the four baselines of Section V-A on one scenario,
/// reusing a single HBO activation result (SMQ matches its quality, SML
/// matches its latency).
pub fn compare_baselines(spec: &ScenarioSpec, config: &HboConfig, seed: u64) -> ExperimentResult {
    let hbo_run = run_hbo(spec, config, seed);
    let profiles = spec.profiles();
    let static_alloc = static_best_allocation(&profiles);
    let mut outcomes = Vec::new();

    // HBO: re-apply the chosen configuration and measure it fresh.
    let hbo_measure = evaluate_fixed(
        spec,
        &hbo_run.best.point.allocation,
        hbo_run.best.point.x,
        false,
    );
    outcomes.push(BaselineOutcome {
        baseline: Baseline::Hbo,
        allocation: hbo_run.best.point.allocation.clone(),
        x: hbo_run.best.point.x,
        measurement: hbo_measure.clone(),
    });

    // SMQ: HBO's triangle ratio (same TD), static allocation.
    let smq = evaluate_fixed(spec, &static_alloc, hbo_run.best.point.x, false);
    outcomes.push(BaselineOutcome {
        baseline: Baseline::Smq,
        allocation: static_alloc.clone(),
        x: hbo_run.best.point.x,
        measurement: smq,
    });

    // SML: static allocation; the total triangle count is gradually
    // reduced (distributed with the same TD algorithm HBO uses, which the
    // system provides) until the average latency is similar to HBO's. The
    // static allocation has a contention floor the sweep cannot cross
    // (GPU-affine tasks sharing the GPU among themselves), so the sweep is
    // bounded below by R_min and settles at the largest ratio whose
    // latency meets the achievable target.
    let floor = evaluate_fixed(spec, &static_alloc, config.r_min, false);
    let target_eps = hbo_measure.epsilon.max(floor.epsilon) * 1.05;
    let mut lo = config.r_min;
    let mut hi = 1.0;
    let mut sml_x = lo;
    let mut sml_measure = floor;
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        let m = evaluate_fixed(spec, &static_alloc, mid, false);
        if m.epsilon <= target_eps {
            // Latency target met: try to keep more quality.
            sml_x = mid;
            sml_measure = m;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    outcomes.push(BaselineOutcome {
        baseline: Baseline::Sml,
        allocation: static_alloc.clone(),
        x: sml_x,
        measurement: sml_measure,
    });

    // BNT: latency-only BO, triangles pinned at 1.
    let bnt_config = HboConfig {
        cost_mode: CostMode::LatencyOnly,
        optimize_triangles: false,
        ..config.clone()
    };
    let bnt_run = run_hbo(spec, &bnt_config, seed ^ 0x517c_c1b7_2722_0a95);
    let bnt_measure = evaluate_fixed(spec, &bnt_run.best.point.allocation, 1.0, false);
    outcomes.push(BaselineOutcome {
        baseline: Baseline::Bnt,
        allocation: bnt_run.best.point.allocation.clone(),
        x: 1.0,
        measurement: bnt_measure,
    });

    // AllN: everything on NNAPI (when compatible), full quality.
    let alln = all_nnapi_allocation(&profiles);
    let alln_measure = evaluate_fixed(spec, &alln, 1.0, false);
    outcomes.push(BaselineOutcome {
        baseline: Baseline::AllN,
        allocation: alln,
        x: 1.0,
        measurement: alln_measure,
    });

    ExperimentResult {
        scenario: spec.name.clone(),
        hbo_run,
        outcomes,
    }
}

/// HBO and every baseline on one scenario — the data behind Fig. 5 and
/// Table IV.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Scenario label.
    pub scenario: String,
    /// The underlying HBO activation.
    pub hbo_run: HboRunResult,
    /// Outcomes in [`Baseline::ALL`] order.
    pub outcomes: Vec<BaselineOutcome>,
}

impl ExperimentResult {
    /// The outcome of one system.
    pub fn outcome(&self, baseline: Baseline) -> &BaselineOutcome {
        self.outcomes
            .iter()
            .find(|o| o.baseline == baseline)
            .expect("all baselines evaluated")
    }

    /// Ratio of a baseline's `ε` to HBO's (how many times slower; the
    /// "latency ratio" of Fig. 5c, computed on 1 + ε so it is meaningful
    /// when HBO's ε approaches zero).
    pub fn latency_ratio_vs_hbo(&self, baseline: Baseline) -> f64 {
        let hbo = self.outcome(Baseline::Hbo).measurement.epsilon;
        let other = self.outcome(baseline).measurement.epsilon;
        (1.0 + other) / (1.0 + hbo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HboConfig {
        HboConfig {
            n_initial: 3,
            iterations: 5,
            ..HboConfig::default()
        }
    }

    #[test]
    fn hbo_activation_produces_a_best_record() {
        let run = run_hbo(&ScenarioSpec::sc2_cf2(), &quick_config(), 7);
        assert_eq!(run.records.len(), 8);
        assert_eq!(run.best_cost_trace.len(), 8);
        assert!(run.iterations_to_converge() <= 8);
        assert_eq!(run.consecutive_distances().len(), 7);
        // Best record really is the minimum.
        let min = run
            .records
            .iter()
            .map(|r| r.cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(run.best.cost, min);
    }

    #[test]
    fn hbo_beats_the_naive_full_quality_all_nnapi_point() {
        let spec = ScenarioSpec::sc1_cf1();
        let config = quick_config();
        let run = run_hbo(&spec, &config, 3);
        let alln = evaluate_fixed(&spec, &all_nnapi_allocation(&spec.profiles()), 1.0, false);
        let hbo_reward = hbo_core::reward(run.best.quality, run.best.epsilon, config.w);
        let alln_reward = alln.reward(config.w);
        assert!(
            hbo_reward > alln_reward,
            "HBO reward {hbo_reward} should beat AllN {alln_reward}"
        );
    }

    #[test]
    fn compare_baselines_covers_all_five() {
        let result = compare_baselines(&ScenarioSpec::sc2_cf2(), &quick_config(), 11);
        assert_eq!(result.outcomes.len(), 5);
        for b in Baseline::ALL {
            let o = result.outcome(b);
            assert_eq!(o.baseline, b);
            assert!(o.measurement.quality > 0.0);
        }
        // BNT and AllN keep full quality by construction.
        assert_eq!(result.outcome(Baseline::Bnt).x, 1.0);
        assert_eq!(result.outcome(Baseline::AllN).x, 1.0);
        // SMQ shares HBO's ratio.
        assert_eq!(
            result.outcome(Baseline::Smq).x,
            result.outcome(Baseline::Hbo).x
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_hbo(&ScenarioSpec::sc2_cf2(), &quick_config(), 5);
        let b = run_hbo(&ScenarioSpec::sc2_cf2(), &quick_config(), 5);
        assert_eq!(a.best.point, b.best.point);
        assert_eq!(a.best_cost_trace, b.best_cost_trace);
    }

    #[test]
    fn traced_run_matches_untraced_and_collects_telemetry() {
        use simcore::trace::{ChromeTraceSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let spec = ScenarioSpec::sc2_cf2();
        let config = quick_config();
        let plain = run_hbo(&spec, &config, 9);
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let traced = run_hbo_traced(&spec, &config, 9, Tracer::with_sink(Rc::clone(&sink)));
        // Tracing must not change the activation in any way.
        assert_eq!(plain.best.point, traced.best.point);
        assert_eq!(plain.best_cost_trace, traced.best_cost_trace);
        assert_eq!(plain.telemetry, traced.telemetry);
        // Telemetry totals reflect real work.
        assert!(plain.telemetry.processors.iter().any(|p| p.completed > 0));
        assert!(plain.telemetry.frames_rendered > 0);
        // One "hbo" window span per completed iteration, plus SoC and BO
        // events from the lower layers.
        let buf = sink.borrow().snapshot();
        let windows = buf.records.iter().filter(|r| r.cat == "hbo").count();
        assert_eq!(windows, plain.records.len());
        assert!(buf.records.iter().any(|r| r.cat == "soc"));
        assert!(buf.records.iter().any(|r| r.cat == "bo"));
    }
}
