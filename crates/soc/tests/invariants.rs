//! Property-based invariants of the SoC simulator: work conservation,
//! rate anchoring, and queueing sanity under randomized workloads —
//! run on the in-tree `simcore::check` framework.

use simcore::check::{self, f64s, vec};
use simcore::{prop_assert, SimDuration, SimTime};
use soc::{ServicePolicy, SocSim, SourceSpec, Stage, StageSeq, StreamSpec, Topology};

fn ms(x: f64) -> SimDuration {
    SimDuration::from_millis_f64(x)
}

/// Shared body of the FIFO work-conservation property.
fn fifo_work_conservation_holds(services: &[f64], span_secs: f64) -> Result<(), String> {
    let mut topo = Topology::new();
    let p = topo.add_processor("p", ServicePolicy::Fifo { slots: 1 });
    let mut sim = SocSim::new(topo);
    let streams: Vec<_> = services
        .iter()
        .map(|&s| sim.add_stream(StreamSpec::new(vec![Stage::compute(p, ms(s))], ms(0.0))))
        .collect();
    sim.run_until(SimTime::from_secs_f64(span_secs));
    let total_work_ms: f64 = streams
        .iter()
        .zip(services)
        .map(|(id, s)| sim.stream_metrics(*id).completed() as f64 * s)
        .sum();
    prop_assert!(
        total_work_ms <= span_secs * 1000.0 + 30.0,
        "completed {total_work_ms} ms of work in {} ms",
        span_secs * 1000.0
    );
    Ok(())
}

/// A single-slot FIFO processor can never complete more dedicated work
/// than wall-clock time (work conservation).
#[test]
fn fifo_work_conservation() {
    check::check(
        "fifo_work_conservation",
        (vec(f64s(1.0..30.0), 1..6), f64s(1.0..4.0)),
        |(services, span_secs)| fifo_work_conservation_holds(services, *span_secs),
    );
}

/// Processor sharing conserves work too: n streams on one PS engine
/// cannot jointly complete more than the elapsed time.
#[test]
fn ps_work_conservation() {
    check::check(
        "ps_work_conservation",
        (vec(f64s(1.0..30.0), 1..6), f64s(1.0..4.0)),
        |(services, span_secs)| {
            let span_secs = *span_secs;
            let mut topo = Topology::new();
            let p = topo.add_processor("p", ServicePolicy::ProcessorSharing);
            let mut sim = SocSim::new(topo);
            let streams: Vec<_> = services
                .iter()
                .map(|&s| sim.add_stream(StreamSpec::new(vec![Stage::compute(p, ms(s))], ms(0.0))))
                .collect();
            sim.run_until(SimTime::from_secs_f64(span_secs));
            let total_work_ms: f64 = streams
                .iter()
                .zip(services)
                .map(|(id, s)| sim.stream_metrics(*id).completed() as f64 * s)
                .sum();
            prop_assert!(total_work_ms <= span_secs * 1000.0 + 30.0);
            Ok(())
        },
    );
}

/// A rate-anchored stream with headroom completes exactly one instance
/// per period, and its latency never falls below the nominal service.
#[test]
fn rate_anchored_throughput() {
    check::check(
        "rate_anchored_throughput",
        (f64s(1.0..40.0), f64s(50.0..150.0)),
        |&(service, period)| {
            let mut topo = Topology::new();
            let p = topo.add_processor("p", ServicePolicy::Fifo { slots: 1 });
            let mut sim = SocSim::new(topo);
            let s = sim.add_stream(
                StreamSpec::new(vec![Stage::compute(p, ms(service))], ms(0.0))
                    .with_period(ms(period)),
            );
            let span = 10.0;
            sim.run_until(SimTime::from_secs_f64(span));
            let m = sim.stream_metrics(s);
            let expected = (span * 1000.0 / period).floor() as u64;
            prop_assert!(
                (m.completed() as i64 - expected as i64).abs() <= 1,
                "completed {} expected ~{expected}",
                m.completed()
            );
            prop_assert!(m.latency_overall().min().unwrap() >= service - 1e-6);
            Ok(())
        },
    );
}

/// Sources never report more completions than releases, and skipped
/// plus released equals the number of release points.
#[test]
fn source_accounting() {
    check::check(
        "source_accounting",
        (f64s(1.0..40.0), f64s(5.0..20.0)),
        |&(frame_ms, period_ms)| {
            let mut topo = Topology::new();
            let p = topo.add_processor("p", ServicePolicy::ProcessorSharing);
            let mut sim = SocSim::new(topo);
            let src = sim.add_source(SourceSpec::new(
                vec![Stage::compute(p, ms(frame_ms))],
                ms(period_ms),
                2,
            ));
            let span = 3.0;
            sim.run_until(SimTime::from_secs_f64(span));
            let m = sim.source_metrics(src);
            prop_assert!(m.completed() <= m.released);
            let ticks = (span * 1000.0 / period_ms).floor() as u64;
            prop_assert!(
                (m.released + m.skipped) as i64 - ticks as i64 <= 1,
                "released {} skipped {} ticks {ticks}",
                m.released,
                m.skipped
            );
            Ok(())
        },
    );
}

/// Shared body of the latency-floor property, so the historical
/// regression case below exercises exactly the code the random sweep does.
fn latency_never_beats_nominal_holds(services: &[f64]) -> Result<(), String> {
    let mut topo = Topology::new();
    let cpu = topo.add_processor("cpu", ServicePolicy::Fifo { slots: 2 });
    let gpu = topo.add_processor("gpu", ServicePolicy::ProcessorSharing);
    let mut sim = SocSim::new(topo);
    let streams: Vec<_> = services
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let stages = if i % 2 == 0 {
                vec![Stage::compute(cpu, ms(s)), Stage::compute(gpu, ms(s / 2.0))]
            } else {
                vec![Stage::delay(ms(1.0)), Stage::compute(gpu, ms(s))]
            };
            let nominal: f64 = stages.iter().map(|st| st.nominal().as_millis_f64()).sum();
            (sim.add_stream(StreamSpec::new(stages, ms(0.0))), nominal)
        })
        .collect();
    sim.run_until(SimTime::from_secs_f64(3.0));
    for (id, nominal) in streams {
        if let Some(min) = sim.stream_metrics(id).latency_overall().min() {
            prop_assert!(min >= nominal - 1e-6, "min {min} < nominal {nominal}");
        }
    }
    Ok(())
}

/// Latency is always at least the nominal plan time, whatever the
/// contention (queueing only ever adds).
#[test]
fn latency_never_beats_nominal() {
    check::check(
        "latency_never_beats_nominal",
        vec(f64s(2.0..25.0), 2..5),
        |services| latency_never_beats_nominal_holds(services),
    );
}

/// Historical regression: the shrunk counterexample proptest once found
/// for `latency_never_beats_nominal` (persisted as
/// `cc 42a080bf… # shrinks to services = [2.0, 2.0]` in the old
/// `.proptest-regressions` file), re-encoded as an explicit
/// deterministic case so it survives the proptest removal.
#[test]
fn latency_never_beats_nominal_regression_two_equal_streams() {
    latency_never_beats_nominal_holds(&[2.0, 2.0]).unwrap();
}

#[test]
fn update_stream_preserves_sample_continuity() {
    // Flapping a stream's plan never loses completions or produces
    // out-of-order samples.
    let mut topo = Topology::new();
    let cpu = topo.add_processor("cpu", ServicePolicy::Fifo { slots: 1 });
    let gpu = topo.add_processor("gpu", ServicePolicy::ProcessorSharing);
    let mut sim = SocSim::new(topo);
    let s = sim.add_stream(StreamSpec::new(vec![Stage::compute(cpu, ms(5.0))], ms(1.0)));
    for step in 1..=20 {
        let target = if step % 2 == 0 { cpu } else { gpu };
        sim.update_stream(s, StageSeq::new(vec![Stage::compute(target, ms(5.0))]));
        sim.run_until(SimTime::from_millis_f64(step as f64 * 100.0));
    }
    let samples = sim.stream_metrics(s).samples();
    assert!(samples.len() > 100);
    for w in samples.windows(2) {
        assert!(w[0].0 <= w[1].0, "samples out of order");
    }
}
