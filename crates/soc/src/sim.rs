//! The SoC simulator: wires streams, sources, and servers to the
//! discrete-event engine.

use simcore::arena::{Arena, Handle};
use simcore::stats::{LogHistogram, Running};
use simcore::trace::{ArgValue, Tracer, TrackId};
use simcore::{QueueKind, SimTime, Simulator};

use crate::job::{SourceId, SourceSpec, Stage, StageSeq, StreamId, StreamSpec};
use crate::server::{FifoServer, JobKey, Owner, PsServer, ServicePolicy};
use crate::topology::{ProcId, Topology};

/// Events internal to the SoC simulation.
#[derive(Debug, Clone, Copy)]
enum SocEvent {
    /// The job in `slot` of FIFO processor `proc` finished.
    FifoDone { proc: usize, slot: usize },
    /// Re-derive completions on PS processor `proc`; stale if the server's
    /// generation moved past `generation`.
    PsCheck { proc: usize, generation: u64 },
    /// A contention-free delay stage elapsed.
    DelayDone { key: JobKey },
    /// Periodic release point of a source.
    SourceTick { source: usize },
    /// (Re)start of a stream instance.
    StreamStart { stream: usize },
}

/// How much of the per-stream `(completion time, latency)` sample trace
/// is retained in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleRetention {
    /// Keep every sample (the default; required for full-horizon time
    /// series such as Fig. 2).
    #[default]
    Full,
    /// Keep at least the most recent `n` samples, dropping the oldest
    /// half whenever the buffer reaches `2n`. Windowed queries
    /// ([`StreamMetrics::mean_since`]) stay exact as long as the query
    /// window holds at most `n` completions; long-horizon sweeps stop
    /// growing memory linearly with the horizon.
    Cap(usize),
}

/// Per-stream latency measurements.
///
/// Keeps the `(completion time, latency ms)` trace so experiments can
/// plot time series (Fig. 2) and compute window means (Eq. 4); the
/// retention policy is configurable via [`SocSim::set_sample_retention`]
/// (full trace by default).
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    samples: Vec<(SimTime, f64)>,
    overall: Running,
    histogram: LogHistogram,
    retention: SampleRetention,
}

impl Default for StreamMetrics {
    fn default() -> Self {
        StreamMetrics {
            samples: Vec::new(),
            overall: Running::new(),
            // 0.1 ms .. ~1.7 s in 10% steps: covers sub-ms digit
            // classifiers up to pathologically contended segmentation.
            histogram: LogHistogram::new(0.1, 1.1, 102),
            retention: SampleRetention::Full,
        }
    }
}

impl StreamMetrics {
    /// Number of completed instances (inferences).
    pub fn completed(&self) -> u64 {
        self.overall.count()
    }

    /// Statistics over every completed instance.
    pub fn latency_overall(&self) -> &Running {
        &self.overall
    }

    /// Full `(completion time, latency ms)` trace, oldest first.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Latency of the most recent completion, in milliseconds.
    pub fn last_latency_ms(&self) -> Option<f64> {
        self.samples.last().map(|&(_, l)| l)
    }

    /// Mean latency (ms) of completions at or after `since`, or `None` if
    /// none completed in that span.
    pub fn mean_since(&self, since: SimTime) -> Option<f64> {
        let idx = self.samples.partition_point(|&(t, _)| t < since);
        let tail = &self.samples[idx..];
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().map(|&(_, l)| l).sum::<f64>() / tail.len() as f64)
    }

    /// Approximate latency percentile in milliseconds over every
    /// completion (log-bucketed, ~10 % resolution), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_percentile_ms(&self, q: f64) -> Option<f64> {
        self.histogram.quantile(q)
    }

    fn record(&mut self, at: SimTime, latency_ms: f64) {
        self.samples.push((at, latency_ms));
        if let SampleRetention::Cap(n) = self.retention {
            let keep = n.max(1);
            if self.samples.len() >= keep * 2 {
                let cut = self.samples.len() - keep;
                self.samples.drain(..cut);
            }
        }
        self.overall.record(latency_ms);
        self.histogram.record(latency_ms);
    }
}

/// Per-source (render-loop) measurements.
#[derive(Debug, Clone, Default)]
pub struct SourceMetrics {
    /// Jobs released.
    pub released: u64,
    /// Release points skipped because `max_outstanding` jobs were in flight
    /// (dropped frames).
    pub skipped: u64,
    /// Latency (ms) of completed jobs.
    latency: Running,
    completions: Vec<SimTime>,
}

impl SourceMetrics {
    /// Number of completed jobs (rendered frames).
    pub fn completed(&self) -> u64 {
        self.latency.count()
    }

    /// Latency statistics of completed jobs.
    pub fn latency(&self) -> &Running {
        &self.latency
    }

    /// Completions per second over `[since, now]` (e.g. achieved FPS).
    pub fn rate_since(&self, since: SimTime, now: SimTime) -> f64 {
        let span = (now - since).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let idx = self.completions.partition_point(|&t| t < since);
        (self.completions.len() - idx) as f64 / span
    }
}

/// Snapshot of one processor's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorMetrics {
    /// Processor name from the topology.
    pub name: String,
    /// Stage executions finished on this processor.
    pub completed: u64,
    /// Time-weighted average number of resident/running jobs since start.
    pub avg_active: f64,
    /// Time-weighted fraction of the span the processor was doing *any*
    /// work: exact utilization for PS servers; `avg_active / slots` for
    /// FIFO servers.
    pub avg_busy: f64,
    /// Jobs currently running or resident.
    pub running_now: usize,
    /// Jobs currently waiting in queue (always 0 for PS processors).
    pub queued_now: usize,
}

enum ServerImpl {
    Fifo(FifoServer<JobKey>),
    Ps(PsServer<JobKey>),
}

/// Stream hot state as a struct of arrays. The per-event path
/// (`start_stream_instance` / `complete_instance`) touches only `seq`,
/// `started_at`, and `in_flight`; splitting them out of the spec- and
/// metrics-carrying struct keeps those accesses dense — three small
/// parallel vectors instead of striding over `StreamSpec`s.
#[derive(Default)]
struct StreamTable {
    specs: Vec<StreamSpec>,
    /// Replacement stage sequence to apply at the next restart.
    pending: Vec<Option<StageSeq>>,
    seq: Vec<u64>,
    started_at: Vec<SimTime>,
    in_flight: Vec<bool>,
    metrics: Vec<StreamMetrics>,
}

impl StreamTable {
    fn len(&self) -> usize {
        self.specs.len()
    }

    fn push(&mut self, spec: StreamSpec, now: SimTime, metrics: StreamMetrics) {
        self.specs.push(spec);
        self.pending.push(None);
        self.seq.push(0);
        self.started_at.push(now);
        self.in_flight.push(false);
        self.metrics.push(metrics);
    }
}

struct SourceState {
    spec: SourceSpec,
    seq: u64,
    /// Release time of each in-flight instance, pooled: slots recycle
    /// through the arena free list, so steady-state releases allocate
    /// nothing. The raw handle rides in [`JobKey::token`].
    outstanding: Arena<SimTime>,
    metrics: SourceMetrics,
}

/// Trace track ids registered per simulation entity; parallel vectors
/// indexed like their owners. All zeros when tracing is disabled.
#[derive(Debug, Default)]
struct TraceIds {
    /// Per server: one span track per FIFO slot (empty for PS servers).
    fifo_slots: Vec<Vec<TrackId>>,
    /// Per server: the track carrying its counter series.
    proc_track: Vec<TrackId>,
    /// Per server: counter series name (`"<proc> queue"` / `"<proc>
    /// resident"`).
    proc_counter: Vec<String>,
    /// Per stream: span track for completed inferences.
    streams: Vec<TrackId>,
    /// Per source: track carrying the skipped-release counter.
    sources: Vec<TrackId>,
    /// Per source: skipped-release counter series name.
    source_counter: Vec<String>,
    /// The track carrying the memory-accounting counters.
    mem_track: TrackId,
}

struct SocState {
    topo: Topology,
    servers: Vec<ServerImpl>,
    streams: StreamTable,
    sources: Vec<SourceState>,
    /// Peak FIFO queue depth observed per server (0 for PS servers).
    peak_queue: Vec<usize>,
    /// Reusable buffer for PS completion batches (taken/returned around
    /// each `PsCheck`), so checks do not allocate per event.
    finished_scratch: Vec<JobKey>,
    retention: SampleRetention,
    tracer: Tracer,
    trace: TraceIds,
}

type Sched<'a> = simcore::Scheduler<'a, SocEvent>;

/// Simulator of a heterogeneous SoC running AI-task streams and periodic
/// render sources. See the crate docs for an end-to-end example.
pub struct SocSim {
    sim: Simulator<SocEvent>,
    state: SocState,
}

impl std::fmt::Debug for SocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocSim")
            .field("now", &self.sim.now())
            .field("streams", &self.state.streams.len())
            .field("sources", &self.state.sources.len())
            .finish()
    }
}

impl SocSim {
    /// Creates a simulator over `topology` at time zero, with the
    /// future-event list chosen by [`QueueKind::from_env`] (the
    /// `HBO_EVENT_QUEUE` variable; heap by default).
    pub fn new(topology: Topology) -> Self {
        Self::with_queue(topology, QueueKind::from_env())
    }

    /// Creates a simulator over `topology` with an explicit future-event
    /// list implementation. Both kinds produce bit-identical runs; this
    /// is a performance knob.
    pub fn with_queue(topology: Topology, queue: QueueKind) -> Self {
        let start = SimTime::ZERO;
        let servers = topology
            .iter()
            .map(|(_, spec)| match spec.policy {
                ServicePolicy::Fifo { slots } => ServerImpl::Fifo(FifoServer::new(slots, start)),
                ServicePolicy::ProcessorSharing => ServerImpl::Ps(PsServer::new(start)),
            })
            .collect();
        let server_count = topology.iter().count();
        SocSim {
            sim: Simulator::with_queue_kind(queue),
            state: SocState {
                topo: topology,
                servers,
                streams: StreamTable::default(),
                sources: Vec::new(),
                peak_queue: vec![0; server_count],
                finished_scratch: Vec::new(),
                retention: SampleRetention::Full,
                tracer: Tracer::disabled(),
                trace: TraceIds::default(),
            },
        }
    }

    /// Which future-event-list implementation this simulator runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.sim.queue_kind()
    }

    /// Installs a tracer and registers one span track per FIFO slot and
    /// one counter track per processor.
    ///
    /// # Panics
    ///
    /// Panics if streams or sources were already added — their tracks
    /// must be registered in creation order, so the tracer has to be
    /// installed first.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        assert!(
            self.state.streams.len() == 0 && self.state.sources.is_empty(),
            "install the tracer before adding streams or sources"
        );
        self.state.tracer = tracer;
        self.state.trace = TraceIds::default();
        for (id, spec) in self.state.topo.iter() {
            debug_assert_eq!(id.index(), self.state.trace.proc_track.len());
            match spec.policy {
                ServicePolicy::Fifo { slots } => {
                    let tracks: Vec<TrackId> = (0..slots)
                        .map(|s| {
                            self.state
                                .tracer
                                .register_track("soc", &format!("{} slot{s}", spec.name))
                        })
                        .collect();
                    self.state.trace.proc_track.push(tracks[0]);
                    self.state.trace.fifo_slots.push(tracks);
                    self.state
                        .trace
                        .proc_counter
                        .push(format!("{} queue", spec.name));
                }
                ServicePolicy::ProcessorSharing => {
                    let track = self.state.tracer.register_track("soc", &spec.name);
                    self.state.trace.proc_track.push(track);
                    self.state.trace.fifo_slots.push(Vec::new());
                    self.state
                        .trace
                        .proc_counter
                        .push(format!("{} resident", spec.name));
                }
            }
        }
        self.state.trace.mem_track = self.state.tracer.register_track("soc", "mem");
    }

    /// Sets the sample-trace retention policy for all current and future
    /// streams. The default ([`SampleRetention::Full`]) keeps every
    /// sample.
    pub fn set_sample_retention(&mut self, retention: SampleRetention) {
        self.state.retention = retention;
        for m in &mut self.state.streams.metrics {
            m.retention = retention;
        }
    }

    /// Peak FIFO queue depth observed on a processor so far (always 0
    /// for processor-sharing servers, which do not queue).
    pub fn peak_queue(&self, id: ProcId) -> usize {
        self.state.peak_queue[id.index()]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The processor topology.
    pub fn topology(&self) -> &Topology {
        &self.state.topo
    }

    /// Adds a stream; its first instance starts at the current time.
    ///
    /// # Panics
    ///
    /// Panics if any compute stage references a processor outside the
    /// topology.
    pub fn add_stream(&mut self, spec: StreamSpec) -> StreamId {
        self.state.validate_stages(&spec.stages);
        let id = StreamId(self.state.streams.len());
        let track_name = if spec.label.is_empty() {
            format!("stream{}", id.0)
        } else {
            spec.label.clone()
        };
        self.state
            .trace
            .streams
            .push(self.state.tracer.register_track("soc", &track_name));
        self.state.streams.push(
            spec,
            self.sim.now(),
            StreamMetrics {
                retention: self.state.retention,
                ..StreamMetrics::default()
            },
        );
        self.sim
            .schedule(self.sim.now(), SocEvent::StreamStart { stream: id.0 });
        id
    }

    /// Replaces a stream's stage sequence, effective at its next restart
    /// (the in-flight inference finishes under the old allocation, exactly
    /// like relocating a TFLite interpreter between inferences).
    ///
    /// # Panics
    ///
    /// Panics if a stage references an unknown processor.
    pub fn update_stream(&mut self, id: StreamId, stages: impl Into<StageSeq>) {
        let stages = stages.into();
        self.state.validate_stages(&stages);
        self.state.streams.pending[id.0] = Some(stages);
    }

    /// Adds a periodic source; its first release is at the current time.
    ///
    /// # Panics
    ///
    /// Panics if any compute stage references an unknown processor.
    pub fn add_source(&mut self, spec: SourceSpec) -> SourceId {
        self.state.validate_stages(&spec.stages);
        let id = SourceId(self.state.sources.len());
        let track_name = if spec.label.is_empty() {
            format!("source{}", id.0)
        } else {
            spec.label.clone()
        };
        self.state
            .trace
            .sources
            .push(self.state.tracer.register_track("soc", &track_name));
        self.state
            .trace
            .source_counter
            .push(format!("{track_name} skipped"));
        self.state.sources.push(SourceState {
            spec,
            seq: 0,
            outstanding: Arena::new(),
            metrics: SourceMetrics::default(),
        });
        self.sim
            .schedule(self.sim.now(), SocEvent::SourceTick { source: id.0 });
        id
    }

    /// Replaces a source's stage sequence, effective at the next release
    /// (e.g. the render load changes when objects are added or decimated).
    ///
    /// # Panics
    ///
    /// Panics if a stage references an unknown processor.
    pub fn update_source(&mut self, id: SourceId, stages: impl Into<StageSeq>) {
        let stages = stages.into();
        self.state.validate_stages(&stages);
        self.state.sources[id.0].spec.stages = stages;
    }

    /// Runs the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let SocSim { sim, state } = self;
        sim.run_until(deadline, |sched, ev| state.handle(sched, ev));
        self.emit_memory_counters();
    }

    /// High-water mark of in-flight source instances across all sources
    /// (the peak number of live arena slots — what the pooled release
    /// state actually cost at its worst).
    pub fn peak_in_flight(&self) -> usize {
        self.state
            .sources
            .iter()
            .map(|s| s.outstanding.peak_live())
            .sum()
    }

    /// Bytes retained by the per-source in-flight arenas: capacity, not
    /// just live slots, so it reports what the allocator actually holds.
    pub fn arena_footprint_bytes(&self) -> usize {
        self.state
            .sources
            .iter()
            .map(|s| s.outstanding.footprint_bytes())
            .sum()
    }

    /// Streams the SoC-layer memory-accounting counters onto the `mem`
    /// track at the current time. Free when tracing is disabled.
    fn emit_memory_counters(&self) {
        let state = &self.state;
        if !state.tracer.is_enabled() {
            return;
        }
        let now = self.sim.now();
        let track = state.trace.mem_track;
        state.tracer.counter(
            now,
            track,
            "soc",
            "mem arena bytes",
            self.arena_footprint_bytes() as f64,
        );
        state.tracer.counter(
            now,
            track,
            "soc",
            "mem peak in flight",
            self.peak_in_flight() as f64,
        );
    }

    /// Measurements of a stream.
    pub fn stream_metrics(&self, id: StreamId) -> &StreamMetrics {
        &self.state.streams.metrics[id.0]
    }

    /// Measurements of a source.
    pub fn source_metrics(&self, id: SourceId) -> &SourceMetrics {
        &self.state.sources[id.0].metrics
    }

    /// Snapshot of a processor's counters at the current time.
    pub fn processor_metrics(&self, id: ProcId) -> ProcessorMetrics {
        let now = self.sim.now();
        let name = self.state.topo.spec(id).name.clone();
        match &self.state.servers[id.index()] {
            ServerImpl::Fifo(s) => {
                let slots = match self.state.topo.spec(id).policy {
                    ServicePolicy::Fifo { slots } => slots as f64,
                    ServicePolicy::ProcessorSharing => 1.0,
                };
                ProcessorMetrics {
                    name,
                    completed: s.completed,
                    avg_active: s.active.average(now),
                    avg_busy: (s.active.average(now) / slots).min(1.0),
                    running_now: s.active.level() as usize,
                    queued_now: s.queue_len(),
                }
            }
            ServerImpl::Ps(s) => ProcessorMetrics {
                name,
                completed: s.completed,
                avg_active: s.active.average(now),
                avg_busy: s.busy.average(now).min(1.0),
                running_now: s.resident(),
                queued_now: 0,
            },
        }
    }

    /// Number of streams added so far.
    pub fn stream_count(&self) -> usize {
        self.state.streams.len()
    }
}

impl SocState {
    fn validate_stages(&self, stages: &StageSeq) {
        for stage in stages.stages() {
            if let Stage::Compute { proc, .. } = stage {
                assert!(
                    self.topo.contains(*proc),
                    "stage references unknown processor {proc}"
                );
            }
        }
    }

    fn handle(&mut self, sched: &mut Sched<'_>, ev: SocEvent) {
        match ev {
            SocEvent::StreamStart { stream } => self.start_stream_instance(sched, stream),
            SocEvent::SourceTick { source } => self.source_tick(sched, source),
            SocEvent::DelayDone { key } => self.on_stage_done(sched, key),
            SocEvent::FifoDone { proc, slot } => {
                let now = sched.now();
                let ServerImpl::Fifo(server) = &mut self.servers[proc] else {
                    unreachable!("FifoDone on a non-FIFO processor");
                };
                let (finished, next) = server.on_done(now, slot);
                let depth = server.queue_len();
                if let Some(start) = next {
                    sched.schedule_at(
                        start.done_at,
                        SocEvent::FifoDone {
                            proc,
                            slot: start.slot,
                        },
                    );
                }
                if self.tracer.is_enabled() {
                    self.tracer
                        .end(now, self.trace.fifo_slots[proc][slot], "soc");
                    if let Some(start) = next {
                        self.trace_job_begin(now, proc, start.slot, start.key);
                        self.tracer.counter(
                            now,
                            self.trace.proc_track[proc],
                            "soc",
                            &self.trace.proc_counter[proc],
                            depth as f64,
                        );
                    }
                }
                self.on_stage_done(sched, finished);
            }
            SocEvent::PsCheck { proc, generation } => {
                let now = sched.now();
                let ServerImpl::Ps(server) = &mut self.servers[proc] else {
                    unreachable!("PsCheck on a non-PS processor");
                };
                if generation != server.generation {
                    return; // stale check superseded by a membership change
                }
                let mut finished = std::mem::take(&mut self.finished_scratch);
                finished.clear();
                let next = server.on_check_into(now, &mut finished);
                let resident = server.resident();
                if let Some(t) = next {
                    let generation = server.generation;
                    sched.schedule_at(t, SocEvent::PsCheck { proc, generation });
                }
                if !finished.is_empty() && self.tracer.is_enabled() {
                    self.tracer.counter(
                        now,
                        self.trace.proc_track[proc],
                        "soc",
                        &self.trace.proc_counter[proc],
                        resident as f64,
                    );
                }
                for key in finished.drain(..) {
                    self.on_stage_done(sched, key);
                }
                self.finished_scratch = finished;
            }
        }
    }

    fn start_stream_instance(&mut self, sched: &mut Sched<'_>, stream: usize) {
        let now = sched.now();
        let st = &mut self.streams;
        debug_assert!(!st.in_flight[stream], "stream restarted while in flight");
        if let Some(stages) = st.pending[stream].take() {
            st.specs[stream].stages = stages;
        }
        st.seq[stream] += 1;
        st.started_at[stream] = now;
        st.in_flight[stream] = true;
        let key = JobKey {
            owner: Owner::Stream(StreamId(stream)),
            seq: st.seq[stream],
            stage: 0,
            token: 0,
        };
        self.submit_stage(sched, key);
    }

    fn source_tick(&mut self, sched: &mut Sched<'_>, source: usize) {
        let now = sched.now();
        let st = &mut self.sources[source];
        sched.schedule_after(st.spec.period, SocEvent::SourceTick { source });
        if st.outstanding.live() >= st.spec.max_outstanding {
            st.metrics.skipped += 1;
            let skipped = st.metrics.skipped;
            if self.tracer.is_enabled() {
                self.tracer.counter(
                    now,
                    self.trace.sources[source],
                    "soc",
                    &self.trace.source_counter[source],
                    skipped as f64,
                );
            }
            return;
        }
        st.seq += 1;
        let token = st.outstanding.alloc(now).to_raw();
        st.metrics.released += 1;
        let key = JobKey {
            owner: Owner::Source(SourceId(source)),
            seq: st.seq,
            stage: 0,
            token,
        };
        self.submit_stage(sched, key);
    }

    fn stage_of(&self, key: JobKey) -> Option<Stage> {
        let stages = match key.owner {
            Owner::Stream(id) => self.streams.specs[id.0].stages.stages(),
            Owner::Source(id) => self.sources[id.0].spec.stages.stages(),
        };
        stages.get(key.stage).copied()
    }

    fn submit_stage(&mut self, sched: &mut Sched<'_>, key: JobKey) {
        let Some(stage) = self.stage_of(key) else {
            // The stage sequence shrank under an in-flight source job:
            // treat the instance as complete.
            self.complete_instance(sched, key);
            return;
        };
        let now = sched.now();
        match stage {
            Stage::Delay { duration } => {
                sched.schedule_after(duration, SocEvent::DelayDone { key });
            }
            Stage::Compute { proc, work } => {
                let p = proc.index();
                // Outcome of the enqueue, captured so the trace emission
                // below runs after the server borrow ends.
                enum Enqueued {
                    FifoStarted { slot: usize, key: JobKey },
                    FifoQueued { depth: usize },
                    Ps { resident: usize },
                }
                let outcome = match &mut self.servers[p] {
                    ServerImpl::Fifo(server) => {
                        if let Some(start) = server.enqueue(now, key, work) {
                            sched.schedule_at(
                                start.done_at,
                                SocEvent::FifoDone {
                                    proc: p,
                                    slot: start.slot,
                                },
                            );
                            Enqueued::FifoStarted {
                                slot: start.slot,
                                key: start.key,
                            }
                        } else {
                            Enqueued::FifoQueued {
                                depth: server.queue_len(),
                            }
                        }
                    }
                    ServerImpl::Ps(server) => {
                        if let Some(t) = server.enqueue(now, key, work) {
                            let generation = server.generation;
                            sched.schedule_at(
                                t,
                                SocEvent::PsCheck {
                                    proc: p,
                                    generation,
                                },
                            );
                        }
                        Enqueued::Ps {
                            resident: server.resident(),
                        }
                    }
                };
                match outcome {
                    Enqueued::FifoStarted { slot, key } => {
                        if self.tracer.is_enabled() {
                            self.trace_job_begin(now, p, slot, key);
                        }
                    }
                    Enqueued::FifoQueued { depth } => {
                        self.peak_queue[p] = self.peak_queue[p].max(depth);
                        if self.tracer.is_enabled() {
                            self.tracer.counter(
                                now,
                                self.trace.proc_track[p],
                                "soc",
                                &self.trace.proc_counter[p],
                                depth as f64,
                            );
                        }
                    }
                    Enqueued::Ps { resident } => {
                        if self.tracer.is_enabled() {
                            self.tracer.counter(
                                now,
                                self.trace.proc_track[p],
                                "soc",
                                &self.trace.proc_counter[p],
                                resident as f64,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Name used for an owner's spans: its label, or a positional
    /// fallback. Only called when tracing is enabled.
    fn owner_name(&self, owner: Owner) -> String {
        match owner {
            Owner::Stream(id) => {
                let label = &self.streams.specs[id.0].label;
                if label.is_empty() {
                    format!("stream{}", id.0)
                } else {
                    label.clone()
                }
            }
            Owner::Source(id) => {
                let label = &self.sources[id.0].spec.label;
                if label.is_empty() {
                    format!("source{}", id.0)
                } else {
                    label.clone()
                }
            }
        }
    }

    /// Emits the begin-span for a job entering a FIFO slot.
    fn trace_job_begin(&self, now: SimTime, proc: usize, slot: usize, key: JobKey) {
        self.tracer.begin(
            now,
            self.trace.fifo_slots[proc][slot],
            "soc",
            &self.owner_name(key.owner),
            &[
                ("seq", ArgValue::U64(key.seq)),
                ("stage", ArgValue::U64(key.stage as u64)),
            ],
        );
    }

    fn on_stage_done(&mut self, sched: &mut Sched<'_>, key: JobKey) {
        let next = JobKey {
            stage: key.stage + 1,
            ..key
        };
        let has_next = match key.owner {
            Owner::Stream(id) => next.stage < self.streams.specs[id.0].stages.len(),
            Owner::Source(id) => next.stage < self.sources[id.0].spec.stages.len(),
        };
        if has_next {
            self.submit_stage(sched, next);
        } else {
            self.complete_instance(sched, key);
        }
    }

    fn complete_instance(&mut self, sched: &mut Sched<'_>, key: JobKey) {
        let now = sched.now();
        match key.owner {
            Owner::Stream(id) => {
                let st = &mut self.streams;
                debug_assert_eq!(
                    key.seq, st.seq[id.0],
                    "completion of a stale stream instance"
                );
                let started_at = st.started_at[id.0];
                let latency_ms = (now - started_at).as_millis_f64();
                st.metrics[id.0].record(now, latency_ms);
                st.in_flight[id.0] = false;
                // Rate-anchored streams aim for `start + period`; if the
                // instance overran, the next starts right away (after the
                // think-time gap), i.e. the loop skips ahead.
                let spec = &st.specs[id.0];
                let mut next = now + spec.gap;
                if let Some(period) = spec.period {
                    next = next.max(started_at + period);
                }
                if !spec.jitter.is_zero() {
                    let j = simcore::rng::mix(id.0 as u64, st.seq[id.0])
                        % spec.jitter.as_nanos().max(1);
                    next += simcore::SimDuration::from_nanos(j);
                }
                sched.schedule_at(next, SocEvent::StreamStart { stream: id.0 });
                if self.tracer.is_enabled() {
                    // One complete span per inference on the stream's own
                    // track (streams keep at most one instance in flight,
                    // so spans never overlap) — the Fig. 2 story.
                    self.tracer.complete(
                        started_at,
                        now - started_at,
                        self.trace.streams[id.0],
                        "soc",
                        &self.owner_name(key.owner),
                        &[
                            ("seq", ArgValue::U64(key.seq)),
                            ("latency_ms", ArgValue::F64(latency_ms)),
                        ],
                    );
                }
            }
            Owner::Source(id) => {
                let st = &mut self.sources[id.0];
                // `try_free`: a shrunken stage sequence can complete the
                // same instance through two paths; the second sees a
                // stale handle and is a no-op.
                if let Some(released) = st.outstanding.try_free(Handle::from_raw(key.token)) {
                    let latency_ms = (now - released).as_millis_f64();
                    st.metrics.latency.record(latency_ms);
                    st.metrics.completions.push(now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use simcore::SimDuration;

    fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }

    fn secs(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo_cgn() -> (Topology, ProcId, ProcId, ProcId) {
        let mut t = Topology::new();
        let cpu = t.add_processor("cpu", ServicePolicy::Fifo { slots: 4 });
        let gpu = t.add_processor("gpu", ServicePolicy::ProcessorSharing);
        let npu = t.add_processor("npu", ServicePolicy::Fifo { slots: 1 });
        (t, cpu, gpu, npu)
    }

    #[test]
    fn single_stream_runs_at_nominal_latency() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(1.0));
        let m = sim.stream_metrics(s);
        assert_eq!(m.completed(), 100);
        assert!((m.latency_overall().mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_contention_doubles_latency() {
        let (t, _, _, npu) = topo_cgn();
        let mut sim = SocSim::new(t);
        let a = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(npu, ms(10.0))],
            ms(0.0),
        ));
        let b = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(npu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(2.0));
        // Two back-to-back streams on a single-slot FIFO alternate: each
        // inference waits ~10 ms then runs 10 ms.
        for id in [a, b] {
            let mean = sim.stream_metrics(id).latency_overall().mean();
            assert!((mean - 20.0).abs() < 1.0, "mean = {mean}");
        }
    }

    #[test]
    fn ps_contention_shares_rate() {
        let (t, _, gpu, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let a = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(gpu, ms(10.0))],
            ms(0.0),
        ));
        let b = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(gpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(2.0));
        for id in [a, b] {
            let mean = sim.stream_metrics(id).latency_overall().mean();
            assert!((mean - 20.0).abs() < 1.0, "mean = {mean}");
        }
    }

    #[test]
    fn delay_stages_do_not_contend() {
        let (t, _, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let a = sim.add_stream(StreamSpec::new(vec![Stage::delay(ms(5.0))], ms(0.0)));
        let b = sim.add_stream(StreamSpec::new(vec![Stage::delay(ms(5.0))], ms(0.0)));
        sim.run_until(secs(1.0));
        for id in [a, b] {
            assert!((sim.stream_metrics(id).latency_overall().mean() - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn multi_stage_pipeline_chains() {
        let (t, cpu, gpu, npu) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![
                Stage::delay(ms(1.0)),
                Stage::compute(npu, ms(4.0)),
                Stage::compute(gpu, ms(3.0)),
                Stage::compute(cpu, ms(2.0)),
            ],
            ms(0.0),
        ));
        sim.run_until(secs(1.0));
        let m = sim.stream_metrics(s);
        assert!((m.latency_overall().mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn update_stream_applies_at_restart() {
        let (t, cpu, _, npu) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(npu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(1.0));
        sim.update_stream(s, vec![Stage::compute(cpu, ms(20.0))]);
        sim.run_until(secs(2.0));
        let m = sim.stream_metrics(s);
        // Second half should run at ~20 ms.
        let late = m.mean_since(secs(1.5)).unwrap();
        assert!((late - 20.0).abs() < 1.0, "late mean = {late}");
    }

    #[test]
    fn source_releases_periodically_and_skips_under_overload() {
        let (t, _, gpu, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        // Each frame needs 50 ms of GPU but the period is 10 ms: with at
        // most 2 outstanding, most releases are skipped.
        let src = sim.add_source(SourceSpec::new(
            vec![Stage::compute(gpu, ms(50.0))],
            ms(10.0),
            2,
        ));
        sim.run_until(secs(1.0));
        let m = sim.source_metrics(src);
        assert!(m.skipped > 0, "expected skipped frames");
        assert!(m.completed() > 0);
        assert!(m.released >= m.completed());
    }

    #[test]
    fn render_load_slows_gpu_stream() {
        let (t, _, gpu, _) = topo_cgn();
        // Baseline: stream alone.
        let mut sim = SocSim::new(t.clone());
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(gpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(2.0));
        let alone = sim.stream_metrics(s).latency_overall().mean();

        // With a render source taking ~50% of the GPU.
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(gpu, ms(10.0))],
            ms(0.0),
        ));
        sim.add_source(SourceSpec::new(
            vec![Stage::compute(gpu, ms(8.0))],
            ms(16.0),
            2,
        ));
        sim.run_until(secs(2.0));
        let contended = sim.stream_metrics(s).latency_overall().mean();
        assert!(
            contended > alone * 1.3,
            "render load should slow the stream: {alone} -> {contended}"
        );
    }

    #[test]
    fn update_source_changes_render_load() {
        let (t, _, gpu, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(gpu, ms(10.0))],
            ms(0.0),
        ));
        let src = sim.add_source(SourceSpec::new(
            vec![Stage::compute(gpu, ms(1.0))],
            ms(16.0),
            2,
        ));
        sim.run_until(secs(1.0));
        let light = sim.stream_metrics(s).mean_since(secs(0.5)).unwrap();
        sim.update_source(src, vec![Stage::compute(gpu, ms(12.0))]);
        sim.run_until(secs(2.0));
        let heavy = sim.stream_metrics(s).mean_since(secs(1.5)).unwrap();
        assert!(heavy > light * 1.5, "{light} -> {heavy}");
    }

    #[test]
    fn stream_gap_reduces_throughput_not_latency() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(10.0),
        ));
        sim.run_until(secs(1.0));
        let m = sim.stream_metrics(s);
        assert_eq!(m.completed(), 50);
        assert!((m.latency_overall().mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn processor_metrics_report_activity() {
        let (t, cpu, gpu, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(1.0));
        let cm = sim.processor_metrics(cpu);
        assert_eq!(cm.name, "cpu");
        assert!(cm.completed >= 99);
        assert!(cm.avg_active > 0.9);
        let gm = sim.processor_metrics(gpu);
        assert_eq!(gm.completed, 0);
    }

    #[test]
    fn latency_percentiles_bracket_the_mean() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let a = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(0.0),
        ));
        let b = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(2.0));
        for id in [a, b] {
            let m = sim.stream_metrics(id);
            let p50 = m.latency_percentile_ms(0.5).unwrap();
            let p99 = m.latency_percentile_ms(0.99).unwrap();
            assert!(p99 >= p50);
            // Log buckets are ~10% wide: p50 brackets the mean loosely.
            let mean = m.latency_overall().mean();
            assert!(
                p50 > mean * 0.5 && p50 < mean * 2.0,
                "p50 {p50} mean {mean}"
            );
        }
    }

    #[test]
    fn mean_since_filters_by_time() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(StreamSpec::new(
            vec![Stage::compute(cpu, ms(10.0))],
            ms(0.0),
        ));
        sim.run_until(secs(1.0));
        let m = sim.stream_metrics(s);
        assert!(m.mean_since(secs(0.99)).is_some());
        assert!(m.mean_since(secs(2.0)).is_none());
        assert!(m.last_latency_ms().is_some());
    }

    #[test]
    #[should_panic(expected = "unknown processor")]
    fn unknown_processor_rejected() {
        let (t, _, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        sim.add_stream(StreamSpec::new(
            vec![Stage::compute(ProcId(99), ms(1.0))],
            ms(0.0),
        ));
    }

    #[test]
    fn rate_anchored_stream_respects_period() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let s = sim.add_stream(
            StreamSpec::new(vec![Stage::compute(cpu, ms(10.0))], ms(0.0)).with_period(ms(50.0)),
        );
        sim.run_until(secs(1.0));
        let m = sim.stream_metrics(s);
        // One instance per 50 ms, each at nominal latency.
        assert_eq!(m.completed(), 20);
        assert!((m.latency_overall().mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn overrunning_rate_anchored_stream_skips_ahead() {
        let (t, cpu, _, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        // 30 ms of work on a 20 ms period: the stream runs back-to-back.
        let s = sim.add_stream(
            StreamSpec::new(vec![Stage::compute(cpu, ms(30.0))], ms(0.0)).with_period(ms(20.0)),
        );
        sim.run_until(secs(0.9));
        let m = sim.stream_metrics(s);
        assert_eq!(m.completed(), 30);
    }

    #[test]
    fn tracer_captures_balanced_slot_spans_and_counters() {
        use simcore::trace::{ChromeTraceSink, TracePhase, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let (t, _, _, npu) = topo_cgn();
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let mut sim = SocSim::new(t);
        sim.set_tracer(Tracer::with_sink(sink.clone()));
        sim.add_stream(
            StreamSpec::new(vec![Stage::compute(npu, ms(10.0))], ms(0.0)).with_label("a"),
        );
        sim.add_stream(
            StreamSpec::new(vec![Stage::compute(npu, ms(10.0))], ms(0.0)).with_label("b"),
        );
        sim.run_until(secs(0.5));
        let buf = sink.borrow().snapshot();
        assert!(!buf.records.is_empty());
        // Two contending streams on a 1-slot FIFO: queue-depth counters
        // must appear, and begin/end spans must balance per track.
        let begins = buf
            .records
            .iter()
            .filter(|r| r.phase == TracePhase::Begin)
            .count();
        let ends = buf
            .records
            .iter()
            .filter(|r| r.phase == TracePhase::End)
            .count();
        assert!(begins > 0);
        assert!(
            begins - ends <= 1,
            "at most the in-flight job may be unbalanced: {begins} begins, {ends} ends"
        );
        assert!(buf
            .records
            .iter()
            .any(|r| r.phase == TracePhase::Counter && r.name == "npu queue"));
        // Per-inference stream spans carry the stream label.
        assert!(buf
            .records
            .iter()
            .any(|r| r.phase == TracePhase::Complete && r.name == "a"));
        assert!(sim.peak_queue(npu) >= 1);
    }

    #[test]
    fn memory_accounting_tracks_in_flight_sources_and_emits_counters() {
        use simcore::trace::{ChromeTraceSink, TracePhase, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let (t, _, gpu, _) = topo_cgn();
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let mut sim = SocSim::new(t);
        sim.set_tracer(Tracer::with_sink(sink.clone()));
        // max_outstanding 2 with a slow stage: the arena's high-water
        // mark must reach the cap, and the footprint must be nonzero.
        sim.add_source(SourceSpec::new(
            vec![Stage::compute(gpu, ms(40.0))],
            ms(16.0),
            2,
        ));
        sim.run_until(secs(1.0));
        assert_eq!(sim.peak_in_flight(), 2);
        assert!(sim.arena_footprint_bytes() > 0);
        let buf = sink.borrow().snapshot();
        for series in ["mem arena bytes", "mem peak in flight"] {
            assert!(
                buf.records
                    .iter()
                    .any(|r| r.phase == TracePhase::Counter && r.name == series),
                "missing '{series}' counter"
            );
        }
    }

    #[test]
    fn tracing_does_not_change_measurements() {
        use simcore::trace::{NullSink, Tracer};

        let run = |traced: bool| {
            let (t, cpu, gpu, _) = topo_cgn();
            let mut sim = SocSim::new(t);
            if traced {
                sim.set_tracer(Tracer::new(NullSink));
            }
            let s = sim.add_stream(StreamSpec::new(
                vec![Stage::compute(cpu, ms(10.0)), Stage::compute(gpu, ms(3.0))],
                ms(1.0),
            ));
            sim.add_source(SourceSpec::new(
                vec![Stage::compute(gpu, ms(8.0))],
                ms(16.0),
                2,
            ));
            sim.run_until(secs(2.0));
            let m = sim.stream_metrics(s);
            (m.completed(), m.latency_overall().mean().to_bits())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sample_retention_cap_bounds_memory_and_keeps_recent_window() {
        let run = |retention: SampleRetention| {
            let (t, cpu, _, _) = topo_cgn();
            let mut sim = SocSim::new(t);
            sim.set_sample_retention(retention);
            let s = sim.add_stream(StreamSpec::new(
                vec![Stage::compute(cpu, ms(10.0))],
                ms(0.0),
            ));
            sim.run_until(secs(10.0));
            let m = sim.stream_metrics(s).clone();
            (m.samples().len(), m.mean_since(secs(9.0)), m.completed())
        };
        let (full_len, full_mean, full_completed) = run(SampleRetention::Full);
        let (cap_len, cap_mean, cap_completed) = run(SampleRetention::Cap(200));
        assert_eq!(full_len, 1000);
        assert!(cap_len < 400, "cap must bound the buffer: {cap_len}");
        assert!(cap_len >= 200, "cap must keep the newest samples");
        // Windowed queries over the retained tail and aggregate counters
        // are unaffected.
        assert_eq!(full_mean.map(f64::to_bits), cap_mean.map(f64::to_bits));
        assert_eq!(full_completed, cap_completed);
    }

    #[test]
    fn source_rate_since_measures_fps() {
        let (t, _, gpu, _) = topo_cgn();
        let mut sim = SocSim::new(t);
        let src = sim.add_source(SourceSpec::new(
            vec![Stage::compute(gpu, ms(2.0))],
            ms(10.0),
            2,
        ));
        sim.run_until(secs(2.0));
        let fps = sim.source_metrics(src).rate_since(secs(1.0), secs(2.0));
        assert!((fps - 100.0).abs() < 5.0, "fps = {fps}");
    }
}
