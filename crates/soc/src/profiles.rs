//! Calibrated device profiles for the two phones used in the paper.
//!
//! A [`DeviceProfile`] bundles the processor topology of a phone with the
//! cost coefficients of its render pipeline. The AI-model service times
//! live in the `nnmodel` crate (they are per-model, not per-device
//! constants — see Table I of the paper); the profile carries everything
//! that is a property of the *device*.

use simcore::SimDuration;

use crate::server::ServicePolicy;
use crate::topology::{ProcId, Topology};

/// Cost coefficients of the render pipeline.
///
/// Each frame issues a CPU prep job (draw-call assembly, scene-graph
/// traversal) followed by a GPU job whose service time grows with the
/// number of *visible* triangles (after backface culling and distance
/// attenuation — computed by `arscene`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderCost {
    /// Fixed GPU time per frame (ms): swapchain, composition.
    pub gpu_base_ms: f64,
    /// GPU time per million visible triangles (ms).
    pub gpu_ms_per_mtri: f64,
    /// Fixed CPU prep time per frame (ms).
    pub cpu_base_ms: f64,
    /// CPU prep time per on-screen object (ms).
    pub cpu_ms_per_object: f64,
}

impl RenderCost {
    /// GPU service time of one frame showing `visible_tris` triangles.
    pub fn gpu_frame(&self, visible_tris: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.gpu_base_ms + self.gpu_ms_per_mtri * visible_tris / 1e6)
    }

    /// CPU prep time of one frame showing `objects` objects.
    pub fn cpu_frame(&self, objects: usize) -> SimDuration {
        SimDuration::from_millis_f64(self.cpu_base_ms + self.cpu_ms_per_object * objects as f64)
    }
}

/// The processor ids of a standard phone topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocProcs {
    /// The CPU inference lanes (FIFO, [`DeviceProfile::cpu_slots`] slots —
    /// 2 on the calibrated phones): a couple of multi-threaded TFLite
    /// inferences fit side by side, further ones queue, which is what the
    /// paper's Fig. 2 shows as CPU tasks pile up.
    pub cpu: ProcId,
    /// The core the render thread lives on (Android pins the render/UI
    /// threads away from the inference threads), running frame prep.
    pub cpu_render: ProcId,
    /// The GPU (processor sharing between render passes and compute).
    pub gpu: ProcId,
    /// The NPU / TPU (single-slot FIFO).
    pub npu: ProcId,
}

/// A calibrated phone: topology plus render cost model.
///
/// # Example
///
/// ```
/// use soc::DeviceProfile;
///
/// let dev = DeviceProfile::pixel7();
/// let (topo, procs) = dev.topology();
/// assert_eq!(topo.spec(procs.gpu).name, "gpu");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name of the device.
    pub name: String,
    /// Concurrent CPU inference slots. The big/mid core pairs fit about
    /// two multi-threaded TFLite inferences side by side on the calibrated
    /// phones; a third CPU inference queues behind them.
    pub cpu_slots: usize,
    /// Display vsync period.
    pub frame_period: SimDuration,
    /// Maximum in-flight frames before the render loop drops releases.
    pub max_frames_in_flight: usize,
    /// Render pipeline costs.
    pub render: RenderCost,
    /// One-way host ↔ accelerator copy overhead per delegate invocation.
    pub copy_ms: f64,
}

impl DeviceProfile {
    /// Google Pixel 7 (Tensor G2: octa-core CPU, Mali-G710 GPU, TPU).
    /// The main evaluation device of the paper (Section V-A).
    pub fn pixel7() -> Self {
        DeviceProfile {
            name: "Google Pixel 7".to_owned(),
            cpu_slots: 2,
            frame_period: SimDuration::from_millis_f64(16.7),
            max_frames_in_flight: 2,
            render: RenderCost {
                gpu_base_ms: 0.6,
                gpu_ms_per_mtri: 30.0,
                cpu_base_ms: 0.8,
                cpu_ms_per_object: 0.3,
            },
            copy_ms: 0.5,
        }
    }

    /// Samsung Galaxy S22 (used for the motivation study, Fig. 2/Table I).
    pub fn galaxy_s22() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy S22".to_owned(),
            cpu_slots: 2,
            frame_period: SimDuration::from_millis_f64(16.7),
            max_frames_in_flight: 2,
            render: RenderCost {
                gpu_base_ms: 0.5,
                gpu_ms_per_mtri: 26.0,
                cpu_base_ms: 0.7,
                cpu_ms_per_object: 0.25,
            },
            copy_ms: 0.5,
        }
    }

    /// Builds the device's topology: `cpu` (FIFO, [`Self::cpu_slots`]
    /// inference slots), `cpu_render` (FIFO, 1 slot for frame prep),
    /// `gpu` (processor sharing), `npu` (FIFO, 1 slot).
    pub fn topology(&self) -> (Topology, SocProcs) {
        let mut topo = Topology::new();
        let cpu = topo.add_processor(
            "cpu",
            ServicePolicy::Fifo {
                slots: self.cpu_slots,
            },
        );
        let cpu_render = topo.add_processor("cpu_render", ServicePolicy::Fifo { slots: 1 });
        let gpu = topo.add_processor("gpu", ServicePolicy::ProcessorSharing);
        let npu = topo.add_processor("npu", ServicePolicy::Fifo { slots: 1 });
        (
            topo,
            SocProcs {
                cpu,
                cpu_render,
                gpu,
                npu,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_have_four_processors() {
        for dev in [DeviceProfile::pixel7(), DeviceProfile::galaxy_s22()] {
            let (topo, procs) = dev.topology();
            assert_eq!(topo.len(), 4);
            assert_eq!(topo.spec(procs.cpu_render).name, "cpu_render");
            assert_eq!(topo.spec(procs.cpu).name, "cpu");
            assert_eq!(topo.spec(procs.gpu).name, "gpu");
            assert_eq!(topo.spec(procs.npu).name, "npu");
            assert_eq!(
                topo.spec(procs.npu).policy,
                ServicePolicy::Fifo { slots: 1 }
            );
        }
    }

    #[test]
    fn render_cost_scales_with_triangles() {
        let r = DeviceProfile::pixel7().render;
        let light = r.gpu_frame(30_000.0);
        let heavy = r.gpu_frame(1_200_000.0);
        assert!(heavy > light);
        // SC1-scale load (~0.45M visible tris) should consume most of a
        // 16.7 ms frame, so rendering strongly contends with AI.
        let sc1 = r.gpu_frame(450_000.0).as_millis_f64();
        assert!(sc1 > 10.0 && sc1 < 16.7, "sc1 frame = {sc1} ms");
    }

    #[test]
    fn cpu_prep_scales_with_objects() {
        let r = DeviceProfile::pixel7().render;
        assert!(r.cpu_frame(9) > r.cpu_frame(1));
    }
}
