//! Power and energy accounting for the simulated SoC.
//!
//! The paper's lineage (eAR, IEEE TMC 2023) is energy-driven, and its
//! Section VI discusses offloading the optimizer to save device energy.
//! This module makes the trade quantifiable in the reproduction: each
//! processor has an idle and an active power draw, and the simulator's
//! time-weighted activity tracking converts directly into Joules.
//!
//! The numbers are representative of published phone SoC measurements
//! (big-core clusters ~2 W active, mobile GPUs ~2.5 W under load, NPUs
//! ~1 W — an NPU's whole advantage is perf/W), not device-exact; the
//! energy *comparisons* between configurations are the meaningful output.

use simcore::SimTime;

use crate::sim::SocSim;
use crate::topology::ProcId;

/// Idle/active power of one processor, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorPower {
    /// Power drawn when no job is resident.
    pub idle_w: f64,
    /// Additional power per unit of activity (one running/resident job
    /// counts as activity 1; a processor-sharing server with `n` resident
    /// jobs is still one physical engine, so its activity saturates at 1).
    pub active_w: f64,
}

impl ProcessorPower {
    /// Creates a power pair.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or not finite.
    pub fn new(idle_w: f64, active_w: f64) -> Self {
        assert!(
            idle_w.is_finite() && idle_w >= 0.0 && active_w.is_finite() && active_w >= 0.0,
            "invalid power values"
        );
        ProcessorPower { idle_w, active_w }
    }
}

/// Power model of a device: one entry per processor of its topology.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    entries: Vec<(String, ProcessorPower)>,
}

impl PowerModel {
    /// Builds a model from `(processor name, power)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(entries: Vec<(String, ProcessorPower)>) -> Self {
        assert!(!entries.is_empty(), "power model needs processors");
        PowerModel { entries }
    }

    /// A representative model for the standard phone topology built by
    /// [`crate::DeviceProfile::topology`] (cpu, cpu_render, gpu, npu).
    pub fn phone_default() -> Self {
        PowerModel::new(vec![
            ("cpu".to_owned(), ProcessorPower::new(0.25, 2.0)),
            ("cpu_render".to_owned(), ProcessorPower::new(0.10, 0.9)),
            ("gpu".to_owned(), ProcessorPower::new(0.20, 2.5)),
            ("npu".to_owned(), ProcessorPower::new(0.05, 1.0)),
        ])
    }

    /// The power entry for a processor name, if modeled.
    pub fn for_name(&self, name: &str) -> Option<ProcessorPower> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }
}

/// An energy breakdown over a simulation span.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// `(processor name, energy in joules)` per processor.
    pub per_processor_j: Vec<(String, f64)>,
    /// Span of simulated time covered, in seconds.
    pub span_secs: f64,
}

impl EnergyReport {
    /// Total energy across processors, in joules.
    pub fn total_j(&self) -> f64 {
        self.per_processor_j.iter().map(|(_, j)| j).sum()
    }

    /// Average power across the span, in watts.
    pub fn average_w(&self) -> f64 {
        if self.span_secs <= 0.0 {
            return 0.0;
        }
        self.total_j() / self.span_secs
    }
}

impl SocSim {
    /// Estimates the energy consumed since simulation start under `model`:
    /// for each processor, `idle_w · span + active_w · busy_time`, where
    /// busy time is the time-weighted activity (capped at 1 engine for
    /// processor-sharing servers).
    ///
    /// Processors missing from the model contribute zero (and are listed
    /// with zero energy so the omission is visible).
    pub fn energy_report(&self, model: &PowerModel) -> EnergyReport {
        let now: SimTime = self.now();
        let span_secs = now.as_secs_f64();
        let per_processor_j = self
            .topology()
            .iter()
            .map(|(id, spec)| (id, spec.name.clone()))
            .collect::<Vec<(ProcId, String)>>()
            .into_iter()
            .map(|(id, name)| {
                let metrics = self.processor_metrics(id);
                let energy = match model.for_name(&name) {
                    Some(p) => p.idle_w * span_secs + p.active_w * metrics.avg_busy * span_secs,
                    None => 0.0,
                };
                (name, energy)
            })
            .collect();
        EnergyReport {
            per_processor_j,
            span_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceProfile, SocSim, Stage, StreamSpec};
    use simcore::SimDuration;

    #[test]
    fn idle_soc_draws_idle_power() {
        let dev = DeviceProfile::pixel7();
        let (topo, _) = dev.topology();
        let mut sim = SocSim::new(topo);
        sim.run_until(SimTime::from_secs_f64(10.0));
        let report = sim.energy_report(&PowerModel::phone_default());
        // 0.25 + 0.10 + 0.20 + 0.05 = 0.6 W idle for 10 s = 6 J.
        assert!(
            (report.total_j() - 6.0).abs() < 1e-6,
            "{}",
            report.total_j()
        );
        assert!((report.average_w() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn busy_cpu_draws_more() {
        let dev = DeviceProfile::pixel7();
        let (topo, procs) = dev.topology();
        let mut sim = SocSim::new(topo);
        // Saturate one CPU lane (50% of the 2-slot cluster).
        sim.add_stream(StreamSpec::new(
            vec![Stage::compute(
                procs.cpu,
                SimDuration::from_millis_f64(10.0),
            )],
            SimDuration::ZERO,
        ));
        sim.run_until(SimTime::from_secs_f64(10.0));
        let report = sim.energy_report(&PowerModel::phone_default());
        let cpu_j = report
            .per_processor_j
            .iter()
            .find(|(n, _)| n == "cpu")
            .unwrap()
            .1;
        // idle 0.25*10 + active 2.0 * 0.5 busy * 10 = 2.5 + 10 = 12.5 J.
        assert!((cpu_j - 12.5).abs() < 0.3, "cpu_j = {cpu_j}");
        assert!(report.total_j() > 6.0);
    }

    #[test]
    fn ps_activity_saturates_at_one_engine() {
        let dev = DeviceProfile::pixel7();
        let (topo, procs) = dev.topology();
        let mut sim = SocSim::new(topo);
        // Two always-resident GPU streams: residency 2, but one engine.
        for _ in 0..2 {
            sim.add_stream(StreamSpec::new(
                vec![Stage::compute(
                    procs.gpu,
                    SimDuration::from_millis_f64(20.0),
                )],
                SimDuration::ZERO,
            ));
        }
        sim.run_until(SimTime::from_secs_f64(5.0));
        let report = sim.energy_report(&PowerModel::phone_default());
        let gpu_j = report
            .per_processor_j
            .iter()
            .find(|(n, _)| n == "gpu")
            .unwrap()
            .1;
        // idle 0.2*5 + active 2.5*1.0*5 = 13.5 J, never more.
        assert!(gpu_j <= 13.5 + 1e-6, "gpu_j = {gpu_j}");
        assert!(gpu_j > 13.0);
    }

    #[test]
    fn unmodeled_processor_contributes_zero() {
        let dev = DeviceProfile::pixel7();
        let (topo, _) = dev.topology();
        let mut sim = SocSim::new(topo);
        sim.run_until(SimTime::from_secs_f64(1.0));
        let model = PowerModel::new(vec![("gpu".to_owned(), ProcessorPower::new(0.2, 2.5))]);
        let report = sim.energy_report(&model);
        assert!((report.total_j() - 0.2).abs() < 1e-9);
        assert_eq!(report.per_processor_j.len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn negative_power_panics() {
        ProcessorPower::new(-1.0, 1.0);
    }
}
