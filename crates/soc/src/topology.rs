//! Processor topology description.
//!
//! # Id visibility
//!
//! [`ProcId`]s are deliberately only minted by this module: callers obtain
//! them from [`Topology::add_processor`], [`Topology::proc_by_name`], or the
//! iterators ([`Topology::iter`], [`Topology::proc_ids`]). The inner index
//! stays `pub(crate)` so an id can never be fabricated for a topology it
//! does not belong to; external crates (e.g. `edgelink`, which builds
//! per-client device topologies) enumerate processors through the public
//! iterators instead of constructing raw indices.

use crate::server::ServicePolicy;

/// Index of a processor within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// The raw index of the processor in its topology.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Static description of one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    /// Human-readable name, e.g. `"cpu"`, `"gpu"`, `"npu"`.
    pub name: String,
    /// How the processor serves queued work.
    pub policy: ServicePolicy,
}

/// The set of processors on a simulated SoC.
///
/// # Example
///
/// ```
/// use soc::{ServicePolicy, Topology};
///
/// let mut topo = Topology::new();
/// let cpu = topo.add_processor("cpu", ServicePolicy::Fifo { slots: 4 });
/// let gpu = topo.add_processor("gpu", ServicePolicy::ProcessorSharing);
/// assert_eq!(topo.len(), 2);
/// assert_eq!(topo.proc_by_name("gpu"), Some(gpu));
/// assert_eq!(topo.spec(cpu).name, "cpu");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Topology {
    processors: Vec<ProcessorSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology {
            processors: Vec::new(),
        }
    }

    /// Adds a processor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a processor with the same name already exists, or if a
    /// FIFO policy has zero slots.
    pub fn add_processor(&mut self, name: impl Into<String>, policy: ServicePolicy) -> ProcId {
        let name = name.into();
        assert!(
            self.proc_by_name(&name).is_none(),
            "duplicate processor name: {name}"
        );
        if let ServicePolicy::Fifo { slots } = policy {
            assert!(slots > 0, "FIFO processor needs at least one slot");
        }
        self.processors.push(ProcessorSpec { name, policy });
        ProcId(self.processors.len() - 1)
    }

    /// Looks a processor up by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.processors
            .iter()
            .position(|p| p.name == name)
            .map(ProcId)
    }

    /// The static spec of a processor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this topology.
    pub fn spec(&self, id: ProcId) -> &ProcessorSpec {
        &self.processors[id.0]
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// True if the topology has no processors.
    pub fn is_empty(&self) -> bool {
        self.processors.is_empty()
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &ProcessorSpec)> {
        self.processors
            .iter()
            .enumerate()
            .map(|(i, s)| (ProcId(i), s))
    }

    /// Iterates over all processor ids, in insertion order.
    ///
    /// This is the sanctioned way for other crates to enumerate processors
    /// without access to `ProcId`'s private index (see the module docs).
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.processors.len()).map(ProcId)
    }

    /// Checks that `id` belongs to this topology.
    pub fn contains(&self, id: ProcId) -> bool {
        id.0 < self.processors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut t = Topology::new();
        let a = t.add_processor("cpu", ServicePolicy::Fifo { slots: 2 });
        let b = t.add_processor("gpu", ServicePolicy::ProcessorSharing);
        assert_eq!(t.proc_by_name("cpu"), Some(a));
        assert_eq!(t.proc_by_name("gpu"), Some(b));
        assert_eq!(t.proc_by_name("npu"), None);
        assert!(t.contains(a));
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.proc_ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "duplicate processor name")]
    fn duplicate_name_panics() {
        let mut t = Topology::new();
        t.add_processor("cpu", ServicePolicy::Fifo { slots: 2 });
        t.add_processor("cpu", ServicePolicy::Fifo { slots: 2 });
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let mut t = Topology::new();
        t.add_processor("cpu", ServicePolicy::Fifo { slots: 0 });
    }

    #[test]
    fn display_and_index() {
        let mut t = Topology::new();
        let a = t.add_processor("cpu", ServicePolicy::Fifo { slots: 1 });
        assert_eq!(a.index(), 0);
        assert_eq!(format!("{a}"), "proc#0");
    }
}
