//! Heterogeneous mobile SoC substrate.
//!
//! The paper's measurements all hinge on *contention*: AI inference ops and
//! AR render work queue on the same processors (CPU cluster, GPU, NPU), so
//! the latency of an AI task depends on the whole taskset and on how many
//! triangles the GPU is rasterizing. This crate reproduces that mechanism
//! with a discrete-event simulation of a mobile SoC:
//!
//! * [`Topology`] describes the processors. CPU clusters and NPUs are
//!   multi-slot/single-slot FIFO servers; the GPU is an egalitarian
//!   processor-sharing server (all resident work progresses at rate `1/n`),
//!   mirroring how a mobile GPU interleaves render passes and compute
//!   dispatches.
//! * [`SocSim`] executes **streams** (back-to-back AI inference chains,
//!   each a sequence of [`Stage`]s on processors, with host↔accelerator
//!   copy delays) and **sources** (the render loop: one multi-stage frame
//!   job per vsync period, with frame skipping under overload).
//! * [`DeviceProfile`] provides calibrated topologies for the two phones of
//!   the paper (Samsung Galaxy S22, Google Pixel 7).
//!
//! # Example
//!
//! ```
//! use simcore::{SimDuration, SimTime};
//! use soc::{ServicePolicy, SocSim, Stage, StreamSpec, Topology};
//!
//! let mut topo = Topology::new();
//! let cpu = topo.add_processor("cpu", ServicePolicy::Fifo { slots: 4 });
//! let mut sim = SocSim::new(topo);
//! let stream = sim.add_stream(StreamSpec::new(
//!     vec![Stage::compute(cpu, SimDuration::from_millis_f64(10.0))],
//!     SimDuration::from_millis_f64(1.0),
//! ));
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! let m = sim.stream_metrics(stream);
//! assert!(m.completed() > 50);
//! assert!((m.latency_overall().mean() - 10.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
pub mod power;
pub mod profiles;
mod server;
mod sim;
mod topology;

pub use job::{SourceId, SourceSpec, Stage, StageSeq, StreamId, StreamSpec};
pub use power::{EnergyReport, PowerModel, ProcessorPower};
pub use profiles::{DeviceProfile, RenderCost, SocProcs};
pub use server::{FifoServer, FifoStart, PsServer, ServicePolicy};
pub use sim::{ProcessorMetrics, SampleRetention, SocSim, SourceMetrics, StreamMetrics};
pub use topology::{ProcId, ProcessorSpec, Topology};
