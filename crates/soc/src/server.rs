//! Queueing servers: multi-slot FIFO and egalitarian processor sharing.
//!
//! Servers are pure state machines: they never touch the event queue.
//! [`crate::SocSim`] calls into them and turns the returned actions
//! (job starts, completions, next-check times) into events, which keeps the
//! queueing logic independently testable.
//!
//! [`FifoServer`] and [`PsServer`] are generic in their job-key type and
//! exported publicly so other discrete-event simulations (the `edgelink`
//! wireless-link/edge-server crate) reuse the same queueing machinery with
//! their own key types instead of re-deriving it.

use std::collections::VecDeque;

use simcore::stats::TimeWeighted;
use simcore::{SimDuration, SimTime};

use crate::job::{SourceId, StreamId};

/// How a processor serves queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePolicy {
    /// `slots` parallel servers fed from one FIFO queue (CPU cluster, NPU).
    Fifo {
        /// Number of jobs that can run concurrently.
        slots: usize,
    },
    /// All resident jobs progress at rate `1/n` (GPU interleaving render
    /// passes and compute dispatches).
    ProcessorSharing,
}

/// Identifies who submitted a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Owner {
    /// An AI-task stream.
    Stream(StreamId),
    /// A periodic (render) source.
    Source(SourceId),
}

/// Uniquely identifies one stage execution of one job instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct JobKey {
    pub owner: Owner,
    /// Monotone per-owner instance counter. Identity, RNG streams, and
    /// trace span args key off this — never off `token`.
    pub seq: u64,
    /// Index of the stage within the instance's stage sequence.
    pub stage: usize,
    /// Raw arena handle of the instance's pooled state
    /// ([`simcore::arena::Handle::to_raw`]); 0 for owners that pool
    /// nothing (streams).
    pub token: u64,
}

/// A job admitted to a FIFO slot; completion is firm (never preempted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FifoStart<K: Copy> {
    /// The slot the job occupies until `done_at`.
    pub slot: usize,
    /// The job that started.
    pub key: K,
    /// The firm completion time.
    pub done_at: SimTime,
}

/// Multi-slot FIFO server, generic in the job-key type `K`.
#[derive(Debug)]
pub struct FifoServer<K: Copy> {
    running: Vec<Option<K>>,
    queue: VecDeque<(K, SimDuration)>,
    /// Time-weighted number of occupied slots (for utilization metrics).
    pub active: TimeWeighted,
    /// Jobs completed so far.
    pub completed: u64,
}

impl<K: Copy> FifoServer<K> {
    /// Creates a server with `slots` parallel lanes, idle at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, start: SimTime) -> Self {
        assert!(slots > 0, "FIFO server needs at least one slot");
        FifoServer {
            running: vec![None; slots],
            queue: VecDeque::new(),
            active: TimeWeighted::new(start, 0.0),
            completed: 0,
        }
    }

    /// Number of jobs waiting (not counting those running in slots).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of jobs currently occupying slots.
    pub fn running_len(&self) -> usize {
        self.running.iter().filter(|s| s.is_some()).count()
    }

    /// Submits a job. If a slot is free the job starts immediately and its
    /// firm completion is returned; otherwise it waits in the queue.
    pub fn enqueue(&mut self, now: SimTime, key: K, work: SimDuration) -> Option<FifoStart<K>> {
        if let Some(slot) = self.running.iter().position(Option::is_none) {
            self.running[slot] = Some(key);
            self.active.add(now, 1.0);
            Some(FifoStart {
                slot,
                key,
                done_at: now + work,
            })
        } else {
            self.queue.push_back((key, work));
            None
        }
    }

    /// Handles the completion of the job in `slot`, returning the finished
    /// job and, if the queue was non-empty, the next job's start.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (a completion event without a running
    /// job is a simulator bug).
    pub fn on_done(&mut self, now: SimTime, slot: usize) -> (K, Option<FifoStart<K>>) {
        let finished = self.running[slot]
            .take()
            .expect("FIFO completion for an empty slot");
        self.completed += 1;
        if let Some((key, work)) = self.queue.pop_front() {
            self.running[slot] = Some(key);
            (
                finished,
                Some(FifoStart {
                    slot,
                    key,
                    done_at: now + work,
                }),
            )
        } else {
            self.active.add(now, -1.0);
            (finished, None)
        }
    }
}

/// Egalitarian processor-sharing server: `n` resident jobs each progress at
/// rate `1/n`. Simulated exactly by re-deriving the next completion time on
/// every membership change. Generic in the job-key type `K`.
#[derive(Debug)]
pub struct PsServer<K: Copy> {
    jobs: Vec<PsJob<K>>,
    last_update: SimTime,
    /// Bumped on every membership change; stale check events are discarded
    /// by comparing generations.
    pub generation: u64,
    /// Time-weighted number of resident jobs.
    pub active: TimeWeighted,
    /// Time-weighted 0/1 busy indicator (any job resident) — the engine's
    /// actual utilization, unlike `active`, which counts residency.
    pub busy: TimeWeighted,
    /// Jobs completed so far.
    pub completed: u64,
}

#[derive(Debug, Clone, Copy)]
struct PsJob<K: Copy> {
    key: K,
    /// Remaining dedicated service time, in seconds.
    remaining: f64,
}

/// Slack under which a PS job counts as finished (covers nanosecond
/// rounding of scheduled check times).
const PS_EPSILON: f64 = 1e-9;

impl<K: Copy> PsServer<K> {
    /// Creates an idle server at `start`.
    pub fn new(start: SimTime) -> Self {
        PsServer {
            jobs: Vec::new(),
            last_update: start,
            generation: 0,
            active: TimeWeighted::new(start, 0.0),
            busy: TimeWeighted::new(start, 0.0),
            completed: 0,
        }
    }

    /// Number of resident jobs.
    pub fn resident(&self) -> usize {
        self.jobs.len()
    }

    /// Advances all resident jobs to `now` at the shared rate.
    fn advance(&mut self, now: SimTime) {
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 && !self.jobs.is_empty() {
            let rate = 1.0 / self.jobs.len() as f64;
            for j in &mut self.jobs {
                j.remaining -= dt * rate;
            }
        }
        self.last_update = now;
    }

    /// The next time any resident job can finish, or `None` if idle.
    /// Rounded *up* by one nanosecond so the job is guaranteed complete
    /// when the check fires.
    pub fn next_check(&self, now: SimTime) -> Option<SimTime> {
        if self.jobs.is_empty() {
            return None;
        }
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining.max(0.0))
            .fold(f64::INFINITY, f64::min);
        let n = self.jobs.len() as f64;
        let dt = SimDuration::from_nanos((min_remaining * n * 1e9).ceil() as u64 + 1);
        Some(now + dt)
    }

    /// Adds a job; returns the new next-check time. Bumps the generation.
    pub fn enqueue(&mut self, now: SimTime, key: K, work: SimDuration) -> Option<SimTime> {
        self.advance(now);
        if self.jobs.is_empty() {
            self.busy.set(now, 1.0);
        }
        self.jobs.push(PsJob {
            key,
            remaining: work.as_secs_f64(),
        });
        self.active.add(now, 1.0);
        self.generation += 1;
        self.next_check(now)
    }

    /// Processes a check event: completes every job whose remaining work is
    /// within [`PS_EPSILON`], returning the finished jobs and the next
    /// check time. Bumps the generation iff membership changed.
    pub fn on_check(&mut self, now: SimTime) -> (Vec<K>, Option<SimTime>) {
        let mut finished = Vec::new();
        let next = self.on_check_into(now, &mut finished);
        (finished, next)
    }

    /// Allocation-free [`on_check`](PsServer::on_check): appends finished
    /// jobs to a caller-owned scratch buffer (the hot simulation loop
    /// reuses one across events).
    pub fn on_check_into(&mut self, now: SimTime, finished: &mut Vec<K>) -> Option<SimTime> {
        self.advance(now);
        let before = finished.len();
        self.jobs.retain(|j| {
            if j.remaining <= PS_EPSILON {
                finished.push(j.key);
                false
            } else {
                true
            }
        });
        let done = finished.len() - before;
        if done > 0 {
            self.completed += done as u64;
            self.active.add(now, -(done as f64));
            if self.jobs.is_empty() {
                self.busy.set(now, 0.0);
            }
            self.generation += 1;
        }
        self.next_check(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seq: u64) -> JobKey {
        JobKey {
            owner: Owner::Stream(StreamId(0)),
            seq,
            stage: 0,
            token: 0,
        }
    }

    fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }

    fn t(x: f64) -> SimTime {
        SimTime::from_millis_f64(x)
    }

    #[test]
    fn fifo_starts_immediately_when_free() {
        let mut s = FifoServer::new(2, SimTime::ZERO);
        let start = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        assert_eq!(start.done_at, t(10.0));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn fifo_queues_when_full() {
        let mut s = FifoServer::new(1, SimTime::ZERO);
        let a = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        assert!(s.enqueue(SimTime::ZERO, key(2), ms(5.0)).is_none());
        assert_eq!(s.queue_len(), 1);
        let (fin, next) = s.on_done(a.done_at, a.slot);
        assert_eq!(fin, key(1));
        let next = next.unwrap();
        assert_eq!(next.key, key(2));
        assert_eq!(next.done_at, t(15.0));
    }

    #[test]
    fn fifo_completion_count_and_util() {
        let mut s = FifoServer::new(1, SimTime::ZERO);
        let a = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        s.on_done(a.done_at, a.slot);
        assert_eq!(s.completed, 1);
        // Busy 10 ms of 20 ms => average active 0.5.
        assert!((s.active.average(t(20.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty slot")]
    fn fifo_double_done_panics() {
        let mut s = FifoServer::new(1, SimTime::ZERO);
        let a = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        s.on_done(a.done_at, a.slot);
        s.on_done(a.done_at, a.slot);
    }

    #[test]
    fn ps_single_job_runs_at_full_rate() {
        let mut s = PsServer::new(SimTime::ZERO);
        let check = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        assert!((check.as_millis_f64() - 10.0).abs() < 1e-3);
        let (fin, next) = s.on_check(check);
        assert_eq!(fin, vec![key(1)]);
        assert!(next.is_none());
    }

    #[test]
    fn ps_two_equal_jobs_halve_the_rate() {
        let mut s = PsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, key(1), ms(10.0));
        let check = s.enqueue(SimTime::ZERO, key(2), ms(10.0)).unwrap();
        // Both share the server, so each takes 20 ms.
        assert!((check.as_millis_f64() - 20.0).abs() < 1e-3);
        let (fin, next) = s.on_check(check);
        assert_eq!(fin.len(), 2);
        assert!(next.is_none());
    }

    #[test]
    fn ps_late_arrival_slows_the_first_job() {
        let mut s = PsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, key(1), ms(10.0));
        // After 5 ms alone, job 1 has 5 ms left. Job 2 (10 ms) arrives.
        let check = s.enqueue(t(5.0), key(2), ms(10.0)).unwrap();
        // Job 1 needs 5 ms of service at rate 1/2 => finishes at 15 ms.
        assert!((check.as_millis_f64() - 15.0).abs() < 1e-3);
        let (fin, next) = s.on_check(check);
        assert_eq!(fin, vec![key(1)]);
        // Job 2 got 5 ms of service in those 10 ms; 5 ms left alone => 20 ms.
        let next = next.unwrap();
        assert!((next.as_millis_f64() - 20.0).abs() < 1e-3);
        let (fin, _) = s.on_check(next);
        assert_eq!(fin, vec![key(2)]);
    }

    #[test]
    fn ps_generation_bumps_on_membership_change() {
        let mut s = PsServer::new(SimTime::ZERO);
        let g0 = s.generation;
        let check = s.enqueue(SimTime::ZERO, key(1), ms(1.0)).unwrap();
        assert!(s.generation > g0);
        let g1 = s.generation;
        s.on_check(check);
        assert!(s.generation > g1);
    }

    #[test]
    fn ps_check_without_completion_keeps_generation() {
        let mut s = PsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, key(1), ms(10.0));
        let g = s.generation;
        // An early (stale-ish) check finds nothing done.
        let (fin, next) = s.on_check(t(1.0));
        assert!(fin.is_empty());
        assert_eq!(s.generation, g);
        assert!(next.is_some());
    }

    #[test]
    fn ps_utilization_tracks_residency() {
        let mut s = PsServer::new(SimTime::ZERO);
        let check = s.enqueue(SimTime::ZERO, key(1), ms(10.0)).unwrap();
        s.on_check(check);
        // 1 job resident for 10 ms out of 40 ms => 0.25 average residency.
        assert!((s.active.average(t(40.0)) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn ps_busy_fraction_differs_from_residency() {
        // Two jobs resident simultaneously: residency 2, busy 1.
        let mut s = PsServer::new(SimTime::ZERO);
        s.enqueue(SimTime::ZERO, key(1), ms(10.0));
        let check = s.enqueue(SimTime::ZERO, key(2), ms(10.0)).unwrap();
        s.on_check(check);
        // Both finish at 20 ms; over 40 ms: residency avg = 1.0, busy 0.5.
        assert!((s.active.average(t(40.0)) - 1.0).abs() < 1e-6);
        assert!((s.busy.average(t(40.0)) - 0.5).abs() < 1e-6);
    }
}
