//! Work descriptions: stages, streams (AI inference loops), and sources
//! (the render loop).

use simcore::SimDuration;

use crate::topology::ProcId;

/// Handle to a stream created by [`crate::SocSim::add_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Handle to a periodic source created by [`crate::SocSim::add_source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

impl StreamId {
    /// Raw index of the stream.
    pub fn index(self) -> usize {
        self.0
    }
}

impl SourceId {
    /// Raw index of the source.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One step of a job: either compute time on a processor (subject to
/// queueing/sharing) or a fixed delay (e.g. a DMA copy between host and
/// accelerator memory, which does not contend for the processors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// `work` of dedicated service time on processor `proc`.
    Compute {
        /// Target processor.
        proc: ProcId,
        /// Dedicated service time (time to finish with the processor all to
        /// itself).
        work: SimDuration,
    },
    /// A contention-free delay.
    Delay {
        /// Length of the delay.
        duration: SimDuration,
    },
}

impl Stage {
    /// A compute stage on `proc` taking `work` of dedicated service time.
    pub fn compute(proc: ProcId, work: SimDuration) -> Stage {
        Stage::Compute { proc, work }
    }

    /// A contention-free delay stage.
    pub fn delay(duration: SimDuration) -> Stage {
        Stage::Delay { duration }
    }

    /// Total dedicated time of the stage, ignoring contention.
    pub fn nominal(&self) -> SimDuration {
        match *self {
            Stage::Compute { work, .. } => work,
            Stage::Delay { duration } => duration,
        }
    }
}

/// A validated, non-empty sequence of stages.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSeq(Vec<Stage>);

impl StageSeq {
    /// Wraps a stage list.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "a job needs at least one stage");
        StageSeq(stages)
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.0
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false: sequences are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sum of the nominal (contention-free) stage durations.
    pub fn nominal_total(&self) -> SimDuration {
        self.0
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.nominal())
    }
}

impl From<Vec<Stage>> for StageSeq {
    fn from(stages: Vec<Stage>) -> Self {
        StageSeq::new(stages)
    }
}

/// Description of a stream: a job that re-runs continuously (an AI task
/// performing inferences).
///
/// The next instance starts at
/// `max(previous_start + period, completion + gap)`: with a `period` the
/// task is *rate-anchored* (a camera-frame-driven inference loop that
/// skips ahead when it falls behind); without one it runs back-to-back
/// after `gap` of think time.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// The stages of one job instance (one inference).
    pub stages: StageSeq,
    /// Pause between a completion and the next start (think time).
    pub gap: SimDuration,
    /// Target start-to-start period, if rate-anchored.
    pub period: Option<SimDuration>,
    /// Maximum deterministic per-instance start jitter (breaks the phase
    /// lock that identical periods would otherwise cause).
    pub jitter: SimDuration,
    /// Optional label used in debug output.
    pub label: String,
}

impl StreamSpec {
    /// Creates a back-to-back stream spec with an empty label.
    pub fn new(stages: impl Into<StageSeq>, gap: SimDuration) -> Self {
        StreamSpec {
            stages: stages.into(),
            gap,
            period: None,
            jitter: SimDuration::ZERO,
            label: String::new(),
        }
    }

    /// Rate-anchors the stream at `period` between starts.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        self.period = Some(period);
        self
    }

    /// Adds deterministic per-instance start jitter in `[0, jitter)`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the debug label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Description of a periodic source: a job released every `period`
/// (the render loop releasing one frame per vsync), skipping releases when
/// `max_outstanding` jobs are already in flight (frame dropping).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// The stages of one job instance (one frame).
    pub stages: StageSeq,
    /// Release period (16.7 ms for a 60 Hz display).
    pub period: SimDuration,
    /// Maximum jobs in flight before releases are skipped.
    pub max_outstanding: usize,
    /// Optional label used in debug output.
    pub label: String,
}

impl SourceSpec {
    /// Creates a source spec with an empty label.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `max_outstanding` is zero.
    pub fn new(stages: impl Into<StageSeq>, period: SimDuration, max_outstanding: usize) -> Self {
        assert!(!period.is_zero(), "source period must be positive");
        assert!(max_outstanding > 0, "max_outstanding must be positive");
        SourceSpec {
            stages: stages.into(),
            period,
            max_outstanding,
            label: String::new(),
        }
    }

    /// Sets the debug label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }

    #[test]
    fn stage_nominal() {
        let c = Stage::compute(ProcId(0), ms(5.0));
        let d = Stage::delay(ms(2.0));
        assert_eq!(c.nominal(), ms(5.0));
        assert_eq!(d.nominal(), ms(2.0));
    }

    #[test]
    fn seq_totals() {
        let seq = StageSeq::new(vec![
            Stage::delay(ms(1.0)),
            Stage::compute(ProcId(0), ms(4.0)),
        ]);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.nominal_total(), ms(5.0));
        assert!(!seq.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_seq_panics() {
        StageSeq::new(vec![]);
    }

    #[test]
    fn spec_builders() {
        let s = StreamSpec::new(vec![Stage::delay(ms(1.0))], ms(0.5)).with_label("t1");
        assert_eq!(s.label, "t1");
        let src = SourceSpec::new(vec![Stage::delay(ms(1.0))], ms(16.7), 2).with_label("render");
        assert_eq!(src.max_outstanding, 2);
        assert_eq!(src.label, "render");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        SourceSpec::new(vec![Stage::delay(ms(1.0))], SimDuration::ZERO, 1);
    }
}
