//! Criterion-free walltime benchmarking.
//!
//! The workspace builds hermetically (no registry crates), so `cargo
//! bench` targets use this small harness instead of `criterion`: warm up,
//! take N timed samples, report the median as one JSON line on stdout.
//! JSON-lines output keeps results machine-diffable across runs without
//! pulling in a serialization crate.
//!
//! ```text
//! {"group":"bayesopt","bench":"gp_fit_20x4","median_ns":183042,"samples":15,"warmup_iters":3}
//! ```
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! use hbo_bench::harness::Harness;
//!
//! let mut h = Harness::from_args("kernels");
//! h.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! ```

use std::time::Instant;

use marsim::RunnerReport;

/// Emits a [`RunnerReport`] as one JSON line on stdout — the same
/// JSON-lines contract as the bench output above, so runner-backed
/// experiment binaries report wall time, job counts, and merged metrics
/// in a machine-diffable form:
///
/// ```text
/// {"runner":"fig7","jobs":12,"threads":4,"wall_secs":3.141593,"metrics":{...}}
/// ```
pub fn emit_runner_report(report: &RunnerReport) {
    println!("{}", report.to_json());
}

/// Number of timed samples per benchmark (median reported).
const DEFAULT_SAMPLES: u32 = 15;
/// Warmup iterations before sampling.
const DEFAULT_WARMUP: u32 = 3;

/// A benchmark group: runs closures, reports median walltime as JSON.
#[derive(Debug)]
pub struct Harness {
    group: String,
    filter: Option<String>,
    samples: u32,
    warmup: u32,
}

impl Harness {
    /// A harness for `group` with default sample counts.
    pub fn new(group: &str) -> Self {
        Harness {
            group: group.to_owned(),
            filter: None,
            samples: DEFAULT_SAMPLES,
            warmup: DEFAULT_WARMUP,
        }
    }

    /// Like [`Harness::new`], but honors command-line options
    /// (`cargo bench --bench kernels -- gp_fit --samples 3 --warmup 1`):
    ///
    /// * the first bare argument is a substring filter on bench names;
    /// * `--samples N` / `--samples=N` overrides the timed sample count
    ///   (smoke runs in CI use a tiny N);
    /// * `--warmup N` / `--warmup=N` overrides the warmup iterations;
    /// * any other `--flag` (e.g. the `--bench` cargo forwards) is ignored.
    pub fn from_args(group: &str) -> Self {
        Self::from_arg_list(group, std::env::args().skip(1))
    }

    fn from_arg_list(group: &str, args: impl IntoIterator<Item = String>) -> Self {
        let mut h = Harness::new(group);
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |inline: Option<&str>| -> Option<u32> {
                inline
                    .map(str::to_owned)
                    .or_else(|| args.next())
                    .and_then(|v| v.parse().ok())
            };
            if let Some(v) = arg.strip_prefix("--samples") {
                if let Some(n) = take(v.strip_prefix('=')) {
                    h.samples = n.max(1);
                }
            } else if let Some(v) = arg.strip_prefix("--warmup") {
                if let Some(n) = take(v.strip_prefix('=')) {
                    h.warmup = n;
                }
            } else if !arg.starts_with("--") && h.filter.is_none() {
                h.filter = Some(arg);
            }
        }
        h
    }

    /// Overrides the number of timed samples (median of N).
    pub fn samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// True if `name` passes the command-line filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmarks `routine`, timing each call.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut routine: F) {
        self.bench_batched(name, || (), |()| routine());
    }

    /// Benchmarks `routine` on a fresh `setup()` value per sample, timing
    /// only the routine (the criterion `iter_batched` pattern).
    pub fn bench_batched<I, T, S, F>(&mut self, name: &str, setup: S, routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        if let Some(median_ns) = self.measure(name, setup, routine) {
            println!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"samples\":{},\"warmup_iters\":{}}}",
                self.group, name, median_ns, self.samples, self.warmup
            );
        }
    }

    /// Benchmarks a simulation routine that advances virtual time by
    /// `simulated_secs` per call, reporting the headline throughput ratio
    /// `sims_per_wall_sec` = simulated seconds ÷ wall seconds alongside
    /// the usual median. A ratio of 1000 means the simulator runs a
    /// thousand times faster than real time.
    pub fn bench_sim<I, T, S, F>(&mut self, name: &str, simulated_secs: f64, setup: S, routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        if let Some(median_ns) = self.measure(name, setup, routine) {
            let wall_secs = median_ns as f64 * 1e-9;
            let sims_per_wall_sec = simulated_secs / wall_secs;
            println!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"samples\":{},\"warmup_iters\":{},\"sims_per_wall_sec\":{:.1}}}",
                self.group, name, median_ns, self.samples, self.warmup, sims_per_wall_sec
            );
        }
    }

    /// Shared measurement core: warm up, take N samples of
    /// `routine(setup())` timing only the routine, return the median.
    /// `None` when `name` fails the command-line filter.
    fn measure<I, T, S, F>(&mut self, name: &str, mut setup: S, mut routine: F) -> Option<u128>
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        if !self.selected(name) {
            return None;
        }
        for _ in 0..self.warmup {
            std::hint::black_box(routine(setup()));
        }
        let mut sample_ns: Vec<u128> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                start.elapsed().as_nanos()
            })
            .collect();
        sample_ns.sort_unstable();
        Some(sample_ns[sample_ns.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_filter() {
        let mut h = Harness::new("test");
        h.filter = Some("yes".to_owned());
        let mut ran = 0;
        h.bench("yes_this_one", || ran += 1);
        let ran_selected = ran;
        let mut skipped = 0;
        h.bench("not_matching", || skipped += 1);
        assert!(ran_selected >= 1, "selected bench must execute");
        assert_eq!(skipped, 0, "filtered-out bench must not execute");
    }

    fn parse(args: &[&str]) -> Harness {
        Harness::from_arg_list("g", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn from_arg_list_parses_filter_samples_and_warmup() {
        let h = parse(&["--bench", "gp_fit", "--samples", "3", "--warmup=1"]);
        assert_eq!(h.filter.as_deref(), Some("gp_fit"));
        assert_eq!(h.samples, 3);
        assert_eq!(h.warmup, 1);
        // Values of consumed flags must not be mistaken for a filter.
        let h = parse(&["--samples", "7"]);
        assert_eq!(h.filter, None);
        assert_eq!(h.samples, 7);
        // samples is clamped to at least one; defaults survive garbage.
        let h = parse(&["--samples=0", "--warmup", "junk"]);
        assert_eq!(h.samples, 1);
        assert_eq!(h.warmup, DEFAULT_WARMUP);
    }

    #[test]
    fn bench_sim_respects_filter_and_samples() {
        let mut h = Harness::new("test").samples(2);
        h.filter = Some("sim_".to_owned());
        let mut ran = 0;
        h.bench_sim("sim_socsim_1s", 1.0, || (), |()| ran += 1);
        assert_eq!(ran as u32, 2 + DEFAULT_WARMUP);
        let mut skipped = 0;
        h.bench_sim("other", 1.0, || (), |()| skipped += 1);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn batched_setup_runs_once_per_sample() {
        let mut h = Harness::new("test").samples(5);
        let mut setups = 0;
        let mut runs = 0;
        h.bench_batched(
            "batched",
            || {
                setups += 1;
            },
            |()| {
                runs += 1;
            },
        );
        assert_eq!(setups, 5 + DEFAULT_WARMUP);
        assert_eq!(runs, setups);
    }
}
