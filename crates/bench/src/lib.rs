//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one table/figure (see `DESIGN.md`
//! for the full index); this library holds the shared plumbing — fixed
//! seeds, text-table and series renderers, and comparison summaries that
//! are written into `EXPERIMENTS.md`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — isolated model latencies on both devices |
//! | `fig2` | Fig. 2 — contention time-series under allocation changes |
//! | `table2` | Table II — scenario inventories |
//! | `fig4_table3` | Fig. 4 + Table III — HBO across four scenarios |
//! | `fig5_table4` | Fig. 5 + Table IV — HBO vs the four baselines |
//! | `fig6` | Fig. 6 — convergence detail on SC1-CF1 |
//! | `fig7` | Fig. 7 — robustness across six seeded runs |
//! | `fig8` | Fig. 8 — event-based vs periodic activation |
//! | `fig9` | Fig. 9 — simulated user study |
//! | `run_all` | all of the above, in order |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod render;
pub mod seeds;

pub use render::{Series, Table};
