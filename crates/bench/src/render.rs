//! Plain-text renderers for tables and series, shared by every
//! experiment binary.

/// A text table with a title, column headers, and string cells.
///
/// # Example
///
/// ```
/// use hbo_bench::Table;
///
/// let mut t = Table::new("Demo", vec!["model".into(), "ms".into()]);
/// t.row(vec!["mnist".into(), "5.0".into()]);
/// let s = t.render();
/// assert!(s.contains("mnist"));
/// assert!(s.contains("Demo"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if there are no headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC 4180-ish: cells containing commas or quotes
    /// are quoted, quotes doubled), header row first — for piping results
    /// into a plotting tool.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// A labeled numeric series (one line of a figure), rendered as aligned
/// `t value` pairs plus an ASCII sparkline for quick visual inspection.
#[derive(Debug, Clone)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one `(x, y)` point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// The collected points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// An ASCII sparkline of the y values.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.points.is_empty() {
            return String::new();
        }
        let (min, max) = self
            .points
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
                (lo.min(y), hi.max(y))
            });
        let span = (max - min).max(1e-12);
        self.points
            .iter()
            .map(|&(_, y)| GLYPHS[(((y - min) / span) * 7.0).round() as usize])
            .collect()
    }

    /// Renders the series: label, sparkline, then every point.
    pub fn render(&self) -> String {
        let mut out = format!("-- {} {}\n", self.label, self.sparkline());
        for &(x, y) in &self.points {
            out.push_str(&format!("   {x:>10.2}  {y:>12.4}\n"));
        }
        out
    }

    /// Renders as two-column CSV (`x,y`) with the label as a comment line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\nx,y\n", self.label);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }

    /// Renders compactly: label, sparkline, and summary stats only.
    pub fn render_summary(&self) -> String {
        if self.points.is_empty() {
            return format!("-- {} (empty)\n", self.label);
        }
        let ys: Vec<f64> = self.points.iter().map(|&(_, y)| y).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let min = ys.iter().cloned().fold(f64::MAX, f64::min);
        let max = ys.iter().cloned().fold(f64::MIN, f64::max);
        format!(
            "-- {} {} n={} min={min:.3} mean={mean:.3} max={max:.3}\n",
            self.label,
            self.sparkline(),
            ys.len()
        )
    }
}

/// Formats an `Option<f64>` latency cell as the paper prints them
/// (`NA` for incompatible pairs).
pub fn ms_cell(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.1}"),
        None => "NA".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.row(vec!["1".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|"));
        assert!(md.contains("| 1 |"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn bad_row_panics() {
        Table::new("T", vec!["a".into()]).row(vec![]);
    }

    #[test]
    fn sparkline_spans_glyphs() {
        let mut s = Series::new("s");
        for i in 0..8 {
            s.push(i as f64, i as f64);
        }
        let spark = s.sparkline();
        assert!(spark.starts_with('▁'));
        assert!(spark.ends_with('█'));
    }

    #[test]
    fn series_summary_contains_stats() {
        let mut s = Series::new("lat");
        s.push(0.0, 1.0).push(1.0, 3.0);
        let sum = s.render_summary();
        assert!(sum.contains("mean=2.000"));
        assert!(sum.contains("n=2"));
        assert!(s.render().contains("lat"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        t.row(vec!["has\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn series_csv_round_trips_points() {
        let mut s = Series::new("lat");
        s.push(1.0, 2.5).push(2.0, 3.5);
        let csv = s.to_csv();
        assert!(csv.starts_with("# lat\n"));
        assert!(csv.contains("1,2.5\n"));
        assert!(csv.contains("2,3.5\n"));
    }

    #[test]
    fn ms_cell_formats_na() {
        assert_eq!(ms_cell(None), "NA");
        assert_eq!(ms_cell(Some(12.34)), "12.3");
    }
}
