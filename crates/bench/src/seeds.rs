//! Fixed seeds for every experiment, so `run_all` output is reproducible
//! bit-for-bit and EXPERIMENTS.md can cite exact numbers.

/// Seed for the Fig. 4 / Table III scenario sweep.
pub const FIG4: u64 = 2024;
/// Seed for the Fig. 5 / Table IV baseline comparison.
pub const FIG5: u64 = 2024;
/// Seed for the Fig. 6 convergence detail.
pub const FIG6: u64 = 2024;
/// Base seed for the Fig. 7 robustness runs (offset by run index).
pub const FIG7: u64 = 700;
/// Seed for the Fig. 8 activation study.
pub const FIG8: u64 = 88;
/// Seed for the Fig. 9 simulated user panel.
pub const FIG9: u64 = 49;
