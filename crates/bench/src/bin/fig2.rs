//! Regenerates **Figure 2**: AI task latency time-series under manual
//! allocation changes and virtual-object additions on the Galaxy S22.
//!
//! Three sub-experiments, scripted after the paper's narration:
//!
//! * **(a)** four deconv-munet instances shuffled between CPU and GPU,
//! * **(b)** five deeplabv3 instances on NNAPI/CPU with two batches of
//!   virtual objects added mid-run (the paper's fully narrated case),
//! * **(c)** a mixed taskset on GPU/NNAPI.
//!
//! The three scripted timelines run concurrently on the deterministic
//! parallel runner (`--threads N` / `HBO_THREADS`); printing happens
//! afterwards, in figure order.
//!
//! The printed per-task series should show the paper's qualitative
//! reversals: adding tasks to one delegate degrades everyone on it;
//! adding objects inflates NNAPI latencies; relocating a task to the CPU
//! *helps* once the load is high, and piling further tasks onto the CPU
//! hurts the CPU residents.

use hbo_bench::{harness, Series};
use marsim::runner;
use marsim::timeline::{run_script, ContentionTrace, ScriptEvent, ScriptPoint};
use nnmodel::{Delegate, ModelZoo};
use soc::DeviceProfile;

fn start(at_secs: f64, model: &str, delegate: Delegate) -> ScriptPoint {
    ScriptPoint {
        at_secs,
        event: ScriptEvent::StartTask {
            model: model.to_owned(),
            delegate,
        },
    }
}

fn mv(at_secs: f64, task: usize, delegate: Delegate) -> ScriptPoint {
    ScriptPoint {
        at_secs,
        event: ScriptEvent::MoveTask { task, delegate },
    }
}

fn objects(at_secs: f64, visible_tris: f64, objects: usize) -> ScriptPoint {
    ScriptPoint {
        at_secs,
        event: ScriptEvent::SetRenderLoad {
            visible_tris,
            objects,
        },
    }
}

fn print_trace(title: &str, trace: &ContentionTrace) {
    println!("== {title} ==");
    for (t, label) in &trace.markers {
        println!("   marker t={t:.0}s: {label}");
    }
    for task in &trace.tasks {
        let changes: Vec<String> = task
            .delegate_changes
            .iter()
            .map(|(t, d)| format!("{}@{t:.0}s", d.letter()))
            .collect();
        let mut series = Series::new(format!("{} [{}]", task.name, changes.join(" ")));
        for (t, l) in trace.sample_secs.iter().zip(&task.latency_ms) {
            if let Some(l) = l {
                series.push(*t, *l);
            }
        }
        print!("{}", series.render_summary());
    }
    // Windowed means make the reversal quantitative.
    println!();
}

fn window_mean(trace: &ContentionTrace, task: usize, from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = trace
        .sample_secs
        .iter()
        .zip(&trace.tasks[task].latency_ms)
        .filter(|(t, _)| **t > from && **t <= to)
        .filter_map(|(_, l)| *l)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// One scripted sub-figure: label, script, and horizon.
struct SubFigure {
    script: Vec<ScriptPoint>,
    total_secs: f64,
}

fn fig2a_script() -> SubFigure {
    // deconv-munet: GPU-affine on the S22 (18 GPU / 33 NNAPI / 58 CPU).
    SubFigure {
        script: vec![
            start(0.0, "deconv-munet", Delegate::Cpu),
            mv(15.0, 0, Delegate::Gpu),
            start(30.0, "deconv-munet", Delegate::Gpu),
            start(45.0, "deconv-munet", Delegate::Gpu),
            start(60.0, "deconv-munet", Delegate::Gpu),
            // Heavy objects: the GPU-resident tasks now fight the renderer.
            objects(80.0, 450_000.0, 7),
            // Move one back to the CPU: it escapes the render contention.
            mv(100.0, 3, Delegate::Cpu),
        ],
        total_secs: 120.0,
    }
}

fn fig2b_script() -> SubFigure {
    // The paper's narrated experiment: five deeplabv3 instances.
    SubFigure {
        script: vec![
            start(0.0, "deeplabv3", Delegate::Cpu),    // C1
            mv(25.0, 0, Delegate::Nnapi),              // N1 at t=25
            start(40.0, "deeplabv3", Delegate::Nnapi), // N2
            start(55.0, "deeplabv3", Delegate::Nnapi), // N3
            start(75.0, "deeplabv3", Delegate::Nnapi), // N4
            start(95.0, "deeplabv3", Delegate::Nnapi), // N5
            mv(120.0, 4, Delegate::Cpu),               // C5: relief without objects
            mv(140.0, 4, Delegate::Nnapi),             // N5: back
            objects(150.0, 250_000.0, 4),              // first object batch
            objects(180.0, 500_000.0, 8),              // second object batch
            mv(200.0, 4, Delegate::Cpu),               // C5: now a big win for all
            mv(215.0, 3, Delegate::Cpu),               // C4: second CPU resident fits
            mv(230.0, 2, Delegate::Cpu),               // C3: third CPU resident queues
        ],
        total_secs: 250.0,
    }
}

fn fig2c_script() -> SubFigure {
    // Mixed classification taskset across GPU/NNAPI.
    SubFigure {
        script: vec![
            start(0.0, "mobilenet-v1", Delegate::Nnapi),
            start(15.0, "inception-v1-q", Delegate::Nnapi),
            start(30.0, "mobilenet-v1", Delegate::Gpu),
            start(45.0, "inception-v1-q", Delegate::Gpu),
            objects(60.0, 350_000.0, 5),
            mv(75.0, 2, Delegate::Nnapi),
            mv(95.0, 3, Delegate::Cpu),
        ],
        total_secs: 110.0,
    }
}

fn main() {
    let device = DeviceProfile::galaxy_s22();
    let zoo = ModelZoo::galaxy_s22();
    let threads = runner::threads_from_args();

    let figures = [fig2a_script(), fig2b_script(), fig2c_script()];
    let (traces, report) = runner::run_map("fig2", threads, &figures, |_, f| {
        run_script(&device, &zoo, &f.script, f.total_secs, 1.0)
    });

    let a = &traces[0];
    print_trace("Fig. 2a — deconv-munet on CPU/GPU", a);
    let gpu_before = window_mean(a, 0, 70.0, 80.0);
    let gpu_after = window_mean(a, 0, 90.0, 100.0);
    println!(
        "   [check] objects inflate GPU-delegate latency: {gpu_before:.1} -> {gpu_after:.1} ms\n"
    );

    let b = &traces[1];
    print_trace("Fig. 2b — deeplabv3 x5 on NNAPI/CPU with objects", b);
    let isolated_nnapi = window_mean(b, 0, 30.0, 40.0);
    let five_on_nnapi = window_mean(b, 0, 110.0, 120.0);
    let with_objects = window_mean(b, 0, 190.0, 200.0);
    let after_c5 = window_mean(b, 0, 205.0, 215.0);
    let cpu_pair = window_mean(b, 4, 220.0, 230.0);
    let cpu_trio = window_mean(b, 4, 240.0, 250.0);
    println!("   [check] N1 alone:                 {isolated_nnapi:.1} ms (Table I: 27)");
    println!("   [check] five instances on NNAPI:  {five_on_nnapi:.1} ms (queueing)");
    println!("   [check] + objects:                {with_objects:.1} ms (render steals bandwidth)");
    println!("   [check] after C5 relocation:      {after_c5:.1} ms (relief for NNAPI residents)");
    println!("   [check] CPU residents, 2 on CPU:  {cpu_pair:.1} ms (two lanes fit)");
    println!("   [check] CPU residents, 3 on CPU:  {cpu_trio:.1} ms (CPU lanes saturate)\n");

    print_trace("Fig. 2c — mixed classifiers on GPU/NNAPI", &traces[2]);
    harness::emit_runner_report(&report);
}
