//! Edge-offload sweep: client count × uplink bandwidth, three systems per
//! cell (local-only, edge-only, HBO-joint with Edge in the decision
//! space).
//!
//! ```text
//! edge_offload [--smoke] [--seed N] [--threads T]
//! ```
//!
//! Emits one JSON line per `(cell, system)` row plus the runner report.
//! Cells run on the deterministic parallel runner: each cell's seed
//! derives from `(--seed, cell index)`, so the row set is bit-identical
//! for any `--threads` setting and across runs.

use hbo_bench::harness;
use hbo_core::HboConfig;
use marsim::edge::sweep_cell;
use marsim::runner::{self, job_seed};
use marsim::ScenarioSpec;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);
    let threads = runner::threads_from_args();

    // SC1 is the heavy scene (decimation matters), CF2 keeps the taskset
    // small enough that every cell runs a full activation quickly.
    let base = ScenarioSpec::sc1_cf2();
    let config = if smoke {
        HboConfig {
            n_initial: 2,
            iterations: 3,
            ..HboConfig::default()
        }
    } else {
        HboConfig::default()
    };
    let (client_counts, bandwidths): (Vec<usize>, Vec<f64>) = if smoke {
        (vec![2], vec![5.0, 50.0])
    } else {
        (vec![1, 4, 8], vec![5.0, 25.0, 100.0])
    };

    let cells: Vec<(usize, f64)> = client_counts
        .iter()
        .flat_map(|&n| bandwidths.iter().map(move |&b| (n, b)))
        .collect();
    let (rows, report) = runner::run_map("edge_offload", threads, &cells, |i, &(clients, mbps)| {
        sweep_cell(&base, clients, mbps, &config, job_seed(seed, i as u64))
    });
    for cell_rows in &rows {
        for row in cell_rows {
            println!("{row}");
        }
    }
    harness::emit_runner_report(&report);
}
