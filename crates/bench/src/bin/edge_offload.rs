//! Edge-offload sweep: client count × uplink bandwidth, three systems per
//! cell (local-only, edge-only, HBO-joint with Edge in the decision
//! space).
//!
//! ```text
//! edge_offload [--smoke] [--seed N] [--threads T] [--trace PATH]
//! ```
//!
//! Emits one JSON line per `(cell, system)` row plus the runner report.
//! Cells run on the deterministic parallel runner: each cell's seed
//! derives from `(--seed, cell index)`, so the row set is bit-identical
//! for any `--threads` setting and across runs.
//!
//! With `--trace PATH` every cell's HBO activation records a span/counter
//! trace (one Chrome `pid` per cell, in cell order) written to `PATH` as
//! Chrome trace-event JSON; the emitted rows stay byte-identical, and the
//! runner report gains the merged telemetry totals across cells.

use std::cell::RefCell;
use std::rc::Rc;

use hbo_bench::harness;
use hbo_core::HboConfig;
use marsim::edge::sweep_cell_traced;
use marsim::runner::{self, job_seed};
use marsim::{ScenarioSpec, TelemetrySummary};
use simcore::trace::{chrome_trace_json, ChromeTraceSink, TraceBuffer, TraceJob, Tracer};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);
    let trace_path: Option<String> = argv
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let threads = runner::threads_from_args();

    // SC1 is the heavy scene (decimation matters), CF2 keeps the taskset
    // small enough that every cell runs a full activation quickly.
    let base = ScenarioSpec::sc1_cf2();
    let config = if smoke {
        HboConfig {
            n_initial: 2,
            iterations: 3,
            ..HboConfig::default()
        }
    } else {
        HboConfig::default()
    };
    let (client_counts, bandwidths): (Vec<usize>, Vec<f64>) = if smoke {
        (vec![2], vec![5.0, 50.0])
    } else {
        (vec![1, 4, 8], vec![5.0, 25.0, 100.0])
    };

    let cells: Vec<(usize, f64)> = client_counts
        .iter()
        .flat_map(|&n| bandwidths.iter().map(move |&b| (n, b)))
        .collect();
    let traced = trace_path.is_some();
    type CellOutcome = (Vec<String>, TelemetrySummary, Option<TraceBuffer>);
    let (outcomes, mut report): (Vec<CellOutcome>, _) =
        runner::run_map("edge_offload", threads, &cells, |i, &(clients, mbps)| {
            let cell_seed = job_seed(seed, i as u64);
            if traced {
                let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
                let (rows, telemetry) = sweep_cell_traced(
                    &base,
                    clients,
                    mbps,
                    &config,
                    cell_seed,
                    Tracer::with_sink(Rc::clone(&sink)),
                );
                let buffer = sink.borrow().snapshot();
                (rows, telemetry, Some(buffer))
            } else {
                let (rows, telemetry) =
                    sweep_cell_traced(&base, clients, mbps, &config, cell_seed, Tracer::disabled());
                (rows, telemetry, None)
            }
        });
    for (rows, _, _) in &outcomes {
        for row in rows {
            println!("{row}");
        }
    }
    // Merge per-cell telemetry totals in cell order (deterministic for
    // any thread count) into the runner report.
    let mut telemetry = TelemetrySummary::default();
    for (_, t, _) in &outcomes {
        telemetry.merge(t);
    }
    report.telemetry = Some(telemetry);
    harness::emit_runner_report(&report);

    if let Some(path) = trace_path {
        let jobs: Vec<TraceJob> = outcomes
            .iter()
            .zip(&cells)
            .filter_map(|((_, _, trace), &(clients, mbps))| {
                trace.as_ref().map(|buffer| TraceJob {
                    name: format!("c{clients} {mbps}mbps"),
                    buffer: buffer.clone(),
                })
            })
            .collect();
        if let Err(e) = std::fs::write(&path, chrome_trace_json(&jobs)) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }
}
