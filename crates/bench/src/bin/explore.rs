//! Interactive scenario explorer: run HBO on any scenario with custom
//! parameters from the command line.
//!
//! ```text
//! explore [SCENARIO] [--seed N] [--weight W] [--iterations K] [--initial M]
//!         [--device pixel7|s22] [--distance D] [--baselines] [--warm]
//!         [--replicates R] [--threads T] [--trace PATH]
//!
//! SCENARIO: SC1-CF1 (default) | SC2-CF1 | SC1-CF2 | SC2-CF2
//! ```
//!
//! With `--warm` the scenario is run twice through the fleet-wide
//! warm-start cache: once cold (empty cache, a miss) and once warm
//! (seeded by the first run's converged configuration), printing the
//! windows / suggest-call / convergence comparison — the source of the
//! cold-vs-warm table in EXPERIMENTS.md.
//!
//! With `--replicates R` (R > 1) the activation is repeated R times as a
//! sweep on the deterministic parallel runner: each replicate's PRNG
//! stream is derived from `(--seed, replicate index)`, so the sweep is
//! bit-identical for any `--threads` setting, and the merged best-cost /
//! convergence statistics are printed alongside the per-replicate bests.
//!
//! With `--trace PATH` the activation (or every replicate of the sweep)
//! records a deterministic span/counter trace and writes it to `PATH` as
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//! Tracing changes no published output: the printed iterations, bests,
//! and merged statistics are bit-identical with and without `--trace`,
//! and the trace file itself is byte-identical across reruns and
//! `--threads` settings. `--trace` is ignored under `--baselines`.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p hbo-bench --bin explore -- SC2-CF1 --seed 7
//! cargo run --release -p hbo-bench --bin explore -- SC1-CF1 --weight 5 --baselines
//! cargo run --release -p hbo-bench --bin explore -- SC2-CF2 --replicates 8 --threads 4
//! ```

use hbo_bench::harness;
use hbo_core::{Baseline, HboConfig, WarmCache};
use marsim::experiment::{compare_baselines, run_hbo, run_hbo_traced, run_hbo_warm};
use marsim::runner::{self, ObserveConfig, SweepJob};
use marsim::ScenarioSpec;
use simcore::metrics::with_observers;
use simcore::rng::mix;
use simcore::trace::{chrome_trace_json, TraceJob};

struct Args {
    scenario: String,
    seed: u64,
    weight: f64,
    iterations: usize,
    initial: usize,
    device: String,
    distance: Option<f64>,
    baselines: bool,
    warm: bool,
    replicates: usize,
    threads: Option<usize>,
    trace: Option<String>,
    metrics: Option<String>,
    trace_sample: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "SC1-CF1".to_owned(),
        seed: 2024,
        weight: 2.5,
        iterations: 15,
        initial: 5,
        device: "pixel7".to_owned(),
        distance: None,
        baselines: false,
        warm: false,
        replicates: 1,
        threads: None,
        trace: None,
        metrics: None,
        trace_sample: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("seed: {e}"))?,
            "--weight" => {
                args.weight = value(&mut i)?.parse().map_err(|e| format!("weight: {e}"))?
            }
            "--iterations" => {
                args.iterations = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("iterations: {e}"))?
            }
            "--initial" => {
                args.initial = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("initial: {e}"))?
            }
            "--device" => args.device = value(&mut i)?,
            "--distance" => {
                args.distance = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("distance: {e}"))?,
                )
            }
            "--baselines" => args.baselines = true,
            "--warm" => args.warm = true,
            "--replicates" => {
                args.replicates = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("replicates: {e}"))?;
                if args.replicates == 0 {
                    return Err("replicates must be >= 1".to_owned());
                }
            }
            "--threads" => {
                args.threads = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("threads: {e}"))?,
                )
            }
            "--trace" => args.trace = Some(value(&mut i)?),
            "--metrics" => args.metrics = Some(value(&mut i)?),
            "--trace-sample" => {
                args.trace_sample = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("trace-sample: {e}"))?,
                )
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other if !other.starts_with('-') => args.scenario = other.to_owned(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [SC1-CF1|SC2-CF1|SC1-CF2|SC2-CF2] [--seed N] [--weight W]\n\
         \x20              [--iterations K] [--initial M] [--device pixel7|s22]\n\
         \x20              [--distance D] [--baselines] [--warm] [--replicates R]\n\
         \x20              [--threads T] [--trace PATH] [--metrics PATH]\n\
         \x20              [--trace-sample K]"
    );
    std::process::exit(2);
}

fn print_best(run: &marsim::experiment::HboRunResult) {
    println!(
        "best: x={:.2} alloc={} Q={:.3} eps={:.3} cost={:+.3} (converged at iter {})",
        run.best.point.x,
        run.best
            .point
            .allocation
            .iter()
            .map(|d| d.letter())
            .collect::<String>(),
        run.best.quality,
        run.best.epsilon,
        run.best.cost,
        run.iterations_to_converge()
    );
}

fn write_trace(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write trace to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("trace written to {path}");
}

fn write_metrics(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("error: cannot write metrics to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("metrics written to {path}");
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            usage();
        }
    };

    let mut spec = match args.scenario.to_uppercase().as_str() {
        "SC1-CF1" => ScenarioSpec::sc1_cf1(),
        "SC2-CF1" => ScenarioSpec::sc2_cf1(),
        "SC1-CF2" => ScenarioSpec::sc1_cf2(),
        "SC2-CF2" => ScenarioSpec::sc2_cf2(),
        other => {
            eprintln!("error: unknown scenario {other}");
            usage();
        }
    };
    match args.device.as_str() {
        "pixel7" => {}
        "s22" => spec.device = soc::DeviceProfile::galaxy_s22(),
        other => {
            eprintln!("error: unknown device {other}");
            usage();
        }
    }
    if let Some(d) = args.distance {
        spec.user_distance = d;
    }
    let config = HboConfig {
        w: args.weight,
        n_initial: args.initial,
        iterations: args.iterations,
        ..HboConfig::default()
    };

    println!(
        "scenario {} on {} (seed {}, w = {}, {}+{} iterations, distance {:.2} m)\n",
        spec.name,
        spec.device.name,
        args.seed,
        args.weight,
        args.initial,
        args.iterations,
        spec.user_distance
    );

    if args.baselines {
        let result = compare_baselines(&spec, &config, args.seed);
        for b in Baseline::ALL {
            let o = result.outcome(b);
            println!(
                "{:<5} x={:.2}  Q={:.3}  eps={:.3}  reward={:+.3}  alloc={}",
                b.label(),
                o.x,
                o.measurement.quality,
                o.measurement.epsilon,
                o.reward(config.w),
                o.allocation.iter().map(|d| d.letter()).collect::<String>()
            );
        }
    } else if args.warm {
        // Cold-vs-warm comparison through the fleet-wide cache: run 1
        // misses (empty cache) and stores its converged configuration;
        // run 2 (a derived seed, so a genuinely different activation)
        // hits and seeds its BO design from it.
        let mut cache = WarmCache::new();
        let cold = run_hbo_warm(&spec, &config, args.seed, &mut cache);
        let warm = run_hbo_warm(&spec, &config, mix(args.seed, 1), &mut cache);
        for (label, r) in [("cold", &cold), ("warm", &warm)] {
            println!(
                "{label}: hit={} windows={} bo_suggests={} converged_at={}",
                r.warm_hit,
                r.run.records.len(),
                r.run.telemetry.bo_suggests,
                r.run.iterations_to_converge()
            );
            print!("  ");
            print_best(&r.run);
        }
    } else if args.replicates > 1 {
        // Replicate sweep: seeds derived from (--seed, replicate index) on
        // the runner, so the merged statistics are bit-identical for any
        // --threads setting.
        let threads = args.threads.unwrap_or_else(runner::threads_from_env);
        let jobs: Vec<SweepJob> = (0..args.replicates)
            .map(|r| SweepJob::derived(format!("rep{}", r + 1), spec.clone(), config.clone()))
            .collect();
        let observe = ObserveConfig {
            traced: args.trace.is_some(),
            trace_sample: args.trace_sample,
            metrics: args.metrics.is_some(),
        };
        let sweep = runner::run_sweep_observed("explore", jobs, args.seed, threads, observe);
        for o in &sweep.outcomes {
            print!("{} (seed {:>20}) ", o.label, o.seed);
            print_best(&o.run);
        }
        println!("\nmerged statistics over {} replicates:", args.replicates);
        for m in &sweep.report.metrics {
            println!(
                "  {:<18} mean={:+.3}  std={:.3}  min={:+.3}  max={:+.3}  (n={})",
                m.name,
                m.stats.mean(),
                m.stats.std_dev(),
                m.stats.min().unwrap_or(f64::NAN),
                m.stats.max().unwrap_or(f64::NAN),
                m.stats.count()
            );
        }
        harness::emit_runner_report(&sweep.report);
        if let Some(path) = &args.trace {
            match sweep.trace_json() {
                Some(json) => write_trace(path, &json),
                // --trace-sample 0 keeps detail for no replicate at all.
                None => eprintln!("trace {path} skipped: no replicate sampled"),
            }
        }
        if let Some(path) = &args.metrics {
            let text = sweep.metrics_text().expect("metrics collected");
            write_metrics(path, &text);
        }
    } else {
        let run = if args.trace.is_some() || args.metrics.is_some() {
            let (run, trace, metrics) =
                with_observers(args.trace.is_some(), args.metrics.is_some(), |tracer| {
                    run_hbo_traced(&spec, &config, args.seed, tracer)
                });
            if let (Some(path), Some(buffer)) = (&args.trace, trace) {
                let job = TraceJob {
                    name: spec.name.clone(),
                    buffer,
                };
                write_trace(path, &chrome_trace_json(&[job]));
            }
            if let (Some(path), Some(m)) = (&args.metrics, metrics) {
                write_metrics(path, &m.render_prometheus());
            }
            run
        } else {
            run_hbo(&spec, &config, args.seed)
        };
        for (i, r) in run.records.iter().enumerate() {
            println!(
                "iter {:>2}: x={:.2} alloc={} Q={:.3} eps={:.3} cost={:+.3}",
                i + 1,
                r.point.x,
                r.point
                    .allocation
                    .iter()
                    .map(|d| d.letter())
                    .collect::<String>(),
                r.quality,
                r.epsilon,
                r.cost
            );
        }
        println!();
        print_best(&run);
    }
}
