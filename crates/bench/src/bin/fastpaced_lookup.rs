//! The Section VI "Dynamic Environment" study: HBO in a fast-paced
//! (gaming-like) session, with and without the lookup-table extension the
//! paper sketches as future work.
//!
//! The paper: *"this solution may not be suitable in other scenarios where
//! users tend to frequently move … HBO may lead to too many activations
//! … we could construct a lookup table that stores environmental
//! conditions … when the user's interaction approaches conditions that
//! closely resemble those stored in the table, the framework could simply
//! apply the solution from the lookup table instead of initiating a new
//! and potentially unnecessary HBO activation."*
//!
//! Here the user bounces between close and far every ~35 s for 500 s.
//! Plain event-based HBO re-explores on every swing; the lookup-assisted
//! variant pays for each condition once and then reuses.

use hbo_bench::Table;
use hbo_core::HboConfig;
use marsim::timeline::{run_activation_study, ActivationTrace, PolicyKind};
use marsim::ScenarioSpec;

fn summarize(trace: &ActivationTrace) -> (usize, usize, f64, f64) {
    let exploring = trace.samples.iter().filter(|s| s.during_activation).count();
    let steady: Vec<f64> = trace
        .samples
        .iter()
        .filter(|s| !s.during_activation)
        .map(|s| s.reward)
        .collect();
    let mean_steady = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    (
        trace.activations.len(),
        trace.reuses.len(),
        100.0 * exploring as f64 / trace.samples.len() as f64,
        mean_steady,
    )
}

fn main() {
    let spec = ScenarioSpec::sc1_cf2();
    let config = HboConfig {
        n_initial: 3,
        iterations: 7,
        ..HboConfig::default()
    };
    // All objects placed up front; then the user oscillates between two
    // viewing positions every ~35 s (a patrol loop in a game).
    let placements: Vec<f64> = (0..9).map(|i| 2.0 + 2.0 * i as f64).collect();
    let mut moves = Vec::new();
    let mut t = 40.0;
    let mut far = true;
    while t < 480.0 {
        moves.push((t, if far { 2.4 } else { 1.0 }));
        far = !far;
        t += 35.0;
    }
    let total = 500.0;

    let event = run_activation_study(
        &spec,
        &config,
        PolicyKind::EventBased,
        &placements,
        &moves,
        total,
        77,
    );
    let assisted = run_activation_study(
        &spec,
        &config,
        PolicyKind::LookupAssisted,
        &placements,
        &moves,
        total,
        77,
    );

    let mut table = Table::new(
        "Section VI study — fast-paced session (user moves every ~35 s, 500 s)",
        vec![
            "policy".into(),
            "full activations".into(),
            "lookup reuses".into(),
            "% time exploring".into(),
            "mean steady reward".into(),
        ],
    );
    for (label, trace) in [
        ("event-based (paper)", &event),
        ("lookup-assisted (Sec. VI)", &assisted),
    ] {
        let (acts, reuses, explore, reward) = summarize(trace);
        table.row(vec![
            label.to_owned(),
            acts.to_string(),
            reuses.to_string(),
            format!("{explore:.0}%"),
            format!("{reward:+.3}"),
        ]);
    }
    println!("{}", table.render());
    let (e_acts, _, e_explore, e_reward) = summarize(&event);
    let (a_acts, a_reuses, a_explore, a_reward) = summarize(&assisted);
    println!(
        "Check: the lookup table converts repeat conditions into instant reuses\n\
         ({a_reuses} reuses vs {e_acts}->{a_acts} full activations), cutting exploration\n\
         time from {e_explore:.0}% to {a_explore:.0}%. Steady-state reward moves from\n\
         {e_reward:+.3} to {a_reward:+.3}: reused configurations can be slightly stale,\n\
         the price of skipping re-exploration — the paper's anticipated trade."
    );
}
