//! Ablation of HBO's Bayesian-optimization design choices (Section IV-C).
//!
//! The paper states two tuning decisions without showing the data:
//!
//! * **Acquisition function** — "Expected Improvement is a well-suited
//!   acquisition function for our problem compared to … probability of
//!   improvement, which is too conservative during exploration, and lower
//!   confidence bound, which requires tuning a dedicated
//!   exploration/exploitation parameter."
//! * **Kernel smoothness** — "Based on extensive testing we use ν = 5/2."
//!
//! This experiment regenerates that comparison on SC1-CF1: each variant
//! runs the full HBO activation across several seeds and is scored by the
//! mean final best cost (lower is better) and the mean iterations to
//! convergence. All variant × seed activations run as one flat job list
//! on the deterministic parallel runner (`--threads N` / `HBO_THREADS`).

use bayesopt::{Acquisition, BoConfig, Kernel};
use hbo_bench::{harness, Table};
use hbo_core::HboConfig;
use marsim::runner::{self, SweepJob, SweepResult};
use marsim::ScenarioSpec;

const SEEDS: [u64; 5] = [11, 23, 47, 2024, 9001];

fn variant_jobs(label: &str, config: &HboConfig) -> Vec<SweepJob> {
    let spec = ScenarioSpec::sc1_cf1();
    SEEDS
        .iter()
        .map(|&seed| SweepJob::seeded(label, spec.clone(), config.clone(), seed))
        .collect()
}

fn summarize(label: &str, sweep: &SweepResult, table: &mut Table) {
    let outcomes = sweep.labeled(label);
    assert_eq!(outcomes.len(), SEEDS.len(), "missing runs for {label}");
    let costs: Vec<f64> = outcomes.iter().map(|o| o.run.best.cost).collect();
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let worst = costs.iter().cloned().fold(f64::MIN, f64::max);
    let mean_iters = outcomes
        .iter()
        .map(|o| o.run.iterations_to_converge() as f64)
        .sum::<f64>()
        / outcomes.len() as f64;
    table.row(vec![
        label.to_owned(),
        format!("{mean:+.3}"),
        format!("{worst:+.3}"),
        format!("{mean_iters:.1}"),
    ]);
}

fn with_acquisition(acquisition: Acquisition) -> HboConfig {
    HboConfig {
        bo: BoConfig {
            acquisition,
            ..BoConfig::default()
        },
        ..HboConfig::default()
    }
}

fn with_kernel(kernel: Kernel) -> HboConfig {
    HboConfig {
        bo: BoConfig {
            kernel,
            ..BoConfig::default()
        },
        ..HboConfig::default()
    }
}

fn main() {
    let threads = runner::threads_from_args();

    let acquisition_variants: Vec<(&str, HboConfig)> = vec![
        (
            "EI (xi=0.01, paper)",
            with_acquisition(Acquisition::ExpectedImprovement { xi: 0.01 }),
        ),
        (
            "PI (xi=0.01)",
            with_acquisition(Acquisition::ProbabilityOfImprovement { xi: 0.01 }),
        ),
        (
            "LCB (kappa=0.5)",
            with_acquisition(Acquisition::LowerConfidenceBound { kappa: 0.5 }),
        ),
        (
            "LCB (kappa=2.0)",
            with_acquisition(Acquisition::LowerConfidenceBound { kappa: 2.0 }),
        ),
        (
            "LCB (kappa=8.0)",
            with_acquisition(Acquisition::LowerConfidenceBound { kappa: 8.0 }),
        ),
    ];
    let kernel_variants: Vec<(&str, HboConfig)> = vec![
        (
            "Matern 1/2",
            with_kernel(Kernel::Matern12 {
                length_scale: 1.0,
                signal_var: 1.0,
            }),
        ),
        (
            "Matern 3/2",
            with_kernel(Kernel::Matern32 {
                length_scale: 1.0,
                signal_var: 1.0,
            }),
        ),
        (
            "Matern 5/2 (paper)",
            with_kernel(Kernel::Matern52 {
                length_scale: 1.0,
                signal_var: 1.0,
            }),
        ),
        (
            "RBF",
            with_kernel(Kernel::Rbf {
                length_scale: 1.0,
                signal_var: 1.0,
            }),
        ),
    ];

    // One flat variant × seed job list for the whole ablation.
    let mut jobs = Vec::new();
    for (label, config) in acquisition_variants.iter().chain(&kernel_variants) {
        jobs.extend(variant_jobs(label, config));
    }
    let sweep = runner::run_sweep("ablation_bo", jobs, SEEDS[0], threads);

    let mut t = Table::new(
        "Ablation — acquisition function (SC1-CF1, 5 seeds, lower cost is better)",
        vec![
            "acquisition".into(),
            "mean best cost".into(),
            "worst best cost".into(),
            "mean iters-to-converge".into(),
        ],
    );
    for (label, _) in &acquisition_variants {
        summarize(label, &sweep, &mut t);
    }
    println!("{}", t.render());
    println!(
        "Paper claim: EI wins; PI is too conservative during exploration; LCB's\n\
         result depends on hand-tuning kappa (note the spread across kappas).\n"
    );

    let mut t = Table::new(
        "Ablation — kernel smoothness (SC1-CF1, 5 seeds)",
        vec![
            "kernel".into(),
            "mean best cost".into(),
            "worst best cost".into(),
            "mean iters-to-converge".into(),
        ],
    );
    for (label, _) in &kernel_variants {
        summarize(label, &sweep, &mut t);
    }
    println!("{}", t.render());
    println!("Paper claim: \"based on extensive testing we use v = 5/2\".");
    harness::emit_runner_report(&sweep.report);
}
