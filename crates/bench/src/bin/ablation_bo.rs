//! Ablation of HBO's Bayesian-optimization design choices (Section IV-C).
//!
//! The paper states two tuning decisions without showing the data:
//!
//! * **Acquisition function** — "Expected Improvement is a well-suited
//!   acquisition function for our problem compared to … probability of
//!   improvement, which is too conservative during exploration, and lower
//!   confidence bound, which requires tuning a dedicated
//!   exploration/exploitation parameter."
//! * **Kernel smoothness** — "Based on extensive testing we use ν = 5/2."
//!
//! This experiment regenerates that comparison on SC1-CF1: each variant
//! runs the full HBO activation across several seeds and is scored by the
//! mean final best cost (lower is better) and the mean iterations to
//! convergence.

use bayesopt::{Acquisition, BoConfig, Kernel};
use hbo_bench::Table;
use hbo_core::HboConfig;
use marsim::experiment::run_hbo;
use marsim::ScenarioSpec;

const SEEDS: [u64; 5] = [11, 23, 47, 2024, 9001];

fn evaluate(label: &str, config: &HboConfig, table: &mut Table) {
    let spec = ScenarioSpec::sc1_cf1();
    let mut costs = Vec::new();
    let mut iters = Vec::new();
    for &seed in &SEEDS {
        let run = run_hbo(&spec, config, seed);
        costs.push(run.best.cost);
        iters.push(run.iterations_to_converge() as f64);
    }
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let worst = costs.iter().cloned().fold(f64::MIN, f64::max);
    let mean_iters = iters.iter().sum::<f64>() / iters.len() as f64;
    table.row(vec![
        label.to_owned(),
        format!("{mean:+.3}"),
        format!("{worst:+.3}"),
        format!("{mean_iters:.1}"),
    ]);
}

fn with_acquisition(acquisition: Acquisition) -> HboConfig {
    HboConfig {
        bo: BoConfig {
            acquisition,
            ..BoConfig::default()
        },
        ..HboConfig::default()
    }
}

fn with_kernel(kernel: Kernel) -> HboConfig {
    HboConfig {
        bo: BoConfig {
            kernel,
            ..BoConfig::default()
        },
        ..HboConfig::default()
    }
}

fn main() {
    let mut t = Table::new(
        "Ablation — acquisition function (SC1-CF1, 5 seeds, lower cost is better)",
        vec![
            "acquisition".into(),
            "mean best cost".into(),
            "worst best cost".into(),
            "mean iters-to-converge".into(),
        ],
    );
    evaluate(
        "EI (xi=0.01, paper)",
        &with_acquisition(Acquisition::ExpectedImprovement { xi: 0.01 }),
        &mut t,
    );
    evaluate(
        "PI (xi=0.01)",
        &with_acquisition(Acquisition::ProbabilityOfImprovement { xi: 0.01 }),
        &mut t,
    );
    evaluate(
        "LCB (kappa=0.5)",
        &with_acquisition(Acquisition::LowerConfidenceBound { kappa: 0.5 }),
        &mut t,
    );
    evaluate(
        "LCB (kappa=2.0)",
        &with_acquisition(Acquisition::LowerConfidenceBound { kappa: 2.0 }),
        &mut t,
    );
    evaluate(
        "LCB (kappa=8.0)",
        &with_acquisition(Acquisition::LowerConfidenceBound { kappa: 8.0 }),
        &mut t,
    );
    println!("{}", t.render());
    println!(
        "Paper claim: EI wins; PI is too conservative during exploration; LCB's\n\
         result depends on hand-tuning kappa (note the spread across kappas).\n"
    );

    let mut t = Table::new(
        "Ablation — kernel smoothness (SC1-CF1, 5 seeds)",
        vec![
            "kernel".into(),
            "mean best cost".into(),
            "worst best cost".into(),
            "mean iters-to-converge".into(),
        ],
    );
    for (label, kernel) in [
        (
            "Matern 1/2",
            Kernel::Matern12 {
                length_scale: 1.0,
                signal_var: 1.0,
            },
        ),
        (
            "Matern 3/2",
            Kernel::Matern32 {
                length_scale: 1.0,
                signal_var: 1.0,
            },
        ),
        (
            "Matern 5/2 (paper)",
            Kernel::Matern52 {
                length_scale: 1.0,
                signal_var: 1.0,
            },
        ),
        (
            "RBF",
            Kernel::Rbf {
                length_scale: 1.0,
                signal_var: 1.0,
            },
        ),
    ] {
        evaluate(label, &with_kernel(kernel), &mut t);
    }
    println!("{}", t.render());
    println!("Paper claim: \"based on extensive testing we use v = 5/2\".");
}
