//! Regenerates **Figure 9**: the user study — perceived virtual-object
//! quality of HBO vs the SML baseline, scored 1–5 by a panel of seven
//! (simulated) participants against a full-quality reference, at close and
//! far distances.
//!
//! Paper protocol (Section V-E): a scene mixing heavy and lightweight
//! objects with the six-task CF1 taskset; HBO settles at triangle ratio
//! ~0.52 (sensitivity-weighted), while SML must drop to ~0.2 (uniform) to
//! match HBO's AI latency. Paper scores: HBO 4.9 (close) / 5.0 (far);
//! SML 3.0 (close) / 3.6 (far) — up to a 38.7 % perceived-quality gap.

use arscene::scenarios::CatalogEntry;
use arscene::QualityParams;
use hbo_bench::{seeds, Table};
use hbo_core::{Baseline, HboConfig};
use marsim::experiment::compare_baselines;
use marsim::userstudy::{mos_from_quality, RaterPanel};
use marsim::ScenarioSpec;

/// The user-study scene: a mix of heavy (plane, bike) and lightweight
/// (andy, hammer, cabin) objects.
fn mixed_scene() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "plane",
            count: 4,
            triangles: 146_803,
            params: QualityParams::new(0.78, -1.96, 1.18, 1.2),
            distance_factor: 1.3,
        },
        CatalogEntry {
            name: "Cocacola",
            count: 2,
            triangles: 94_080,
            params: QualityParams::new(0.87, -2.18, 1.31, 1.4),
            distance_factor: 0.9,
        },
        CatalogEntry {
            name: "bike",
            count: 1,
            triangles: 178_552,
            params: QualityParams::new(1.09, -2.83, 1.74, 1.0),
            distance_factor: 1.0,
        },
        CatalogEntry {
            name: "andy",
            count: 2,
            triangles: 2_304,
            params: QualityParams::new(1.20, -2.60, 1.40, 0.9),
            distance_factor: 0.7,
        },
        CatalogEntry {
            name: "hammer",
            count: 2,
            triangles: 6_250,
            params: QualityParams::new(0.80, -1.80, 1.00, 1.0),
            distance_factor: 0.9,
        },
        CatalogEntry {
            name: "cabin",
            count: 1,
            triangles: 2_324,
            params: QualityParams::new(1.00, -2.20, 1.20, 1.0),
            distance_factor: 1.0,
        },
    ]
}

fn main() {
    let mut spec = ScenarioSpec::sc1_cf1();
    spec.objects = mixed_scene();
    spec.name = "UserStudy".to_owned();

    // Derive the two systems' configurations exactly as the comparison
    // harness does: HBO's activation picks (x, allocation); SML sweeps its
    // uniform ratio down to match HBO's latency.
    let result = compare_baselines(&spec, &HboConfig::default(), seeds::FIG9);
    let hbo = result.outcome(Baseline::Hbo);
    let sml = result.outcome(Baseline::Sml);

    let panel = RaterPanel::of_seven(seeds::FIG9);
    let mut table = Table::new(
        "Fig. 9a — perceived quality (1-5), 7 participants, vs full-quality reference",
        vec![
            "condition".into(),
            "x".into(),
            "model quality Q".into(),
            "predicted MOS".into(),
            "panel mean".into(),
            "paper".into(),
        ],
    );

    let mut measured = Vec::new();
    for (label, distance, paper) in [
        ("HBO close", 1.0, "4.9"),
        ("HBO far", 2.5, "5.0"),
        ("SML close", 1.0, "3.0"),
        ("SML far", 2.5, "3.6"),
    ] {
        let is_hbo = label.starts_with("HBO");
        let mut scene = arscene::scenarios::scene_from_catalog(&spec.objects, distance);
        let x = if is_hbo { hbo.x } else { sml.x };
        if is_hbo {
            scene.distribute_triangles(x);
        } else {
            scene.set_uniform_ratio(x);
        }
        let q = scene.average_quality();
        let mean = panel.mean_score(q, label);
        measured.push((label, mean));
        table.row(vec![
            label.to_owned(),
            format!("{x:.2}"),
            format!("{q:.3}"),
            format!("{:.2}", mos_from_quality(q)),
            format!("{mean:.2}"),
            paper.to_owned(),
        ]);
    }
    println!("{}", table.render());

    let gap_close = 100.0 * (measured[0].1 - measured[2].1) / measured[2].1;
    let gap_far = 100.0 * (measured[1].1 - measured[3].1) / measured[3].1;
    println!(
        "Perceived-quality improvement of HBO over SML: {:.1}% (close), {:.1}% (far)\n\
         Paper: up to 38.7%. HBO keeps x = {:.2} via sensitivity-weighted distribution\n\
         while SML needs the uniform ratio down at x = {:.2} for comparable AI latency\n\
         (paper: 0.52 vs 0.2).",
        gap_close, gap_far, hbo.x, sml.x
    );
}
