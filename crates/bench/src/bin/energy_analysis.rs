//! Extension study: the energy cost of each system's configuration.
//!
//! The paper optimizes quality and latency; its lineage (eAR) and its
//! Section VI discussion are energy-driven. This study measures, under a
//! representative phone power model, how much SoC energy each of the
//! Fig. 5 configurations burns over a 30-second SC1-CF1 session — showing
//! that HBO's triangle reduction also pays an energy dividend (less GPU
//! rasterization, less DRAM-inflated NPU time).

//!
//! The five 30-second measurement sessions are independent simulations;
//! they run concurrently on the deterministic parallel runner
//! (`--threads N` / `HBO_THREADS`).

use hbo_bench::{harness, seeds, Table};
use hbo_core::{Baseline, HboConfig};
use marsim::experiment::compare_baselines;
use marsim::{runner, MarApp, ScenarioSpec};
use soc::PowerModel;

const SPAN_SECS: f64 = 30.0;

fn main() {
    let spec = ScenarioSpec::sc1_cf1();
    let result = compare_baselines(&spec, &HboConfig::default(), seeds::FIG5);
    let power = PowerModel::phone_default();

    let threads = runner::threads_from_args();
    let (reports, runner_report) =
        runner::run_map("energy_analysis", threads, &Baseline::ALL, |_, &b| {
            let outcome = result.outcome(b);
            let mut app = MarApp::new(&spec);
            app.place_all_objects();
            app.set_allocation(&outcome.allocation);
            if b == Baseline::Sml {
                app.set_uniform_ratio(outcome.x);
            } else {
                app.set_triangle_ratio(outcome.x);
            }
            app.run_for_secs(SPAN_SECS);
            app.energy_report(&power)
        });

    let mut table = Table::new(
        format!("Energy over a {SPAN_SECS:.0}-second SC1-CF1 session"),
        vec![
            "system".into(),
            "x".into(),
            "total J".into(),
            "avg W".into(),
            "cpu J".into(),
            "gpu J".into(),
            "npu J".into(),
            "J per inference".into(),
        ],
    );
    for (&b, report) in Baseline::ALL.iter().zip(&reports) {
        let outcome = result.outcome(b);
        let per = |name: &str| {
            report
                .per_processor_j
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, j)| *j)
                .unwrap_or(0.0)
        };
        // ~10 inferences/s/task at the task period.
        let inferences = spec.task_count() as f64 * SPAN_SECS * 1000.0 / marsim::TASK_PERIOD_MS;
        table.row(vec![
            b.label().to_owned(),
            format!("{:.2}", outcome.x),
            format!("{:.1}", report.total_j()),
            format!("{:.2}", report.average_w()),
            format!("{:.1}", per("cpu")),
            format!("{:.1}", per("gpu")),
            format!("{:.1}", per("npu")),
            format!("{:.3}", report.total_j() / inferences),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Check: HBO's decimation cuts GPU energy vs the full-quality systems\n\
         (BNT, AllN) while its allocation keeps the NPU — the most efficient\n\
         engine — loaded with the tasks it serves best."
    );
    harness::emit_runner_report(&runner_report);
}
