//! Regenerates **Table I**: isolated response time (ms) of the TFLite
//! model zoo on the Galaxy S22 and Pixel 7, per delegate.
//!
//! Each `(model, delegate)` pair runs alone on a freshly booted simulated
//! SoC (no other AI tasks, no virtual objects) — the exact protocol the
//! paper uses for its one-time offline profiling. The printed `paper`
//! columns are the published numbers; `measured` is what the simulator
//! reproduces.

use hbo_bench::render::ms_cell;
use hbo_bench::Table;
use marsim::isolated;
use nnmodel::{Delegate, ModelZoo};
use soc::DeviceProfile;

fn device_table(device: &DeviceProfile, zoo: &ModelZoo) -> Table {
    let rows = isolated::table1(device, zoo);
    let mut table = Table::new(
        format!("Table I — {} (isolated latency, ms)", device.name),
        vec![
            "model".into(),
            "task".into(),
            "GPU meas".into(),
            "GPU paper".into(),
            "NNAPI meas".into(),
            "NNAPI paper".into(),
            "CPU meas".into(),
            "CPU paper".into(),
        ],
    );
    for row in rows {
        let model = zoo.get(&row.model).expect("row model in zoo");
        let paper = [
            model.isolated_ms(Delegate::Gpu),
            model.isolated_ms(Delegate::Nnapi),
            model.isolated_ms(Delegate::Cpu),
        ];
        table.row(vec![
            row.model.clone(),
            row.kind.to_owned(),
            ms_cell(row.latency_ms[0]),
            ms_cell(paper[0]),
            ms_cell(row.latency_ms[1]),
            ms_cell(paper[1]),
            ms_cell(row.latency_ms[2]),
            ms_cell(paper[2]),
        ]);
    }
    table
}

fn main() {
    for (device, zoo) in [
        (DeviceProfile::galaxy_s22(), ModelZoo::galaxy_s22()),
        (DeviceProfile::pixel7(), ModelZoo::pixel7()),
    ] {
        println!("{}", device_table(&device, &zoo).render());
    }
    println!(
        "Check: measured values are produced by discrete-event simulation of the\n\
         calibrated execution plans; agreement with the paper column validates the\n\
         calibration that every downstream experiment builds on."
    );
}
