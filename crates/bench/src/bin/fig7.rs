//! Regenerates **Figure 7**: HBO's convergence robustness — six
//! independent runs (different random initializations) of the same
//! activation on SC1-CF2 and SC2-CF2, all expected to converge to
//! similar-cost solutions even when the chosen configuration differs.
//!
//! The 2 scenarios × 6 replicates run as one flat job list on the
//! deterministic parallel runner (`--threads N` / `HBO_THREADS`).

use hbo_bench::{harness, seeds, Series};
use hbo_core::HboConfig;
use marsim::runner::{self, SweepJob, SweepOutcome};
use marsim::ScenarioSpec;

fn print_study(name: &str, outcomes: &[&SweepOutcome]) {
    println!("== Fig. 7 — best-cost convergence across 6 runs ({name}) ==");
    let mut finals = Vec::new();
    for (run_idx, outcome) in outcomes.iter().enumerate() {
        let run = &outcome.run;
        let mut s = Series::new(format!(
            "run {} (x={:.2}, c=[{}], alloc={})",
            run_idx + 1,
            run.best.point.x,
            run.best
                .point
                .c
                .iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join(", "),
            run.best
                .point
                .allocation
                .iter()
                .map(|d| d.letter())
                .collect::<String>()
        ));
        for (i, c) in run.best_cost_trace.iter().enumerate() {
            s.push((i + 1) as f64, *c);
        }
        print!("{}", s.render_summary());
        finals.push(run.best.cost);
    }
    let mean = finals.iter().sum::<f64>() / finals.len() as f64;
    let spread = finals.iter().cloned().fold(f64::MIN, f64::max)
        - finals.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "   final best costs: [{}]  mean {:.3}, spread {:.3}\n",
        finals
            .iter()
            .map(|c| format!("{c:+.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        mean,
        spread
    );
}

fn main() {
    let config = HboConfig::default();
    let threads = runner::threads_from_args();
    let specs = [ScenarioSpec::sc1_cf2(), ScenarioSpec::sc2_cf2()];
    // Flat scenario × replicate job list, each replicate pinned to the
    // historic seed offset so the published series stay bit-identical.
    let mut jobs = Vec::new();
    for spec in &specs {
        for run_idx in 0..6u64 {
            jobs.push(SweepJob::seeded(
                spec.name.clone(),
                spec.clone(),
                config.clone(),
                seeds::FIG7 + run_idx,
            ));
        }
    }
    let sweep = runner::run_sweep("fig7", jobs, seeds::FIG7, threads);

    for spec in &specs {
        print_study(&spec.name, &sweep.labeled(&spec.name));
    }
    println!(
        "Paper check: despite different initial datapoints, all runs converge to a\n\
         similar-cost solution (robustness to BO initialization), even when the\n\
         chosen allocation or ratio differs between runs."
    );
    harness::emit_runner_report(&sweep.report);
}
