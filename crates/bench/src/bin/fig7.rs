//! Regenerates **Figure 7**: HBO's convergence robustness — six
//! independent runs (different random initializations) of the same
//! activation on SC1-CF2 and SC2-CF2, all expected to converge to
//! similar-cost solutions even when the chosen configuration differs.

use hbo_bench::{seeds, Series};
use hbo_core::HboConfig;
use marsim::experiment::run_hbo;
use marsim::ScenarioSpec;

fn study(spec: &ScenarioSpec) {
    println!(
        "== Fig. 7 — best-cost convergence across 6 runs ({}) ==",
        spec.name
    );
    let config = HboConfig::default();
    let mut finals = Vec::new();
    for run_idx in 0..6u64 {
        let run = run_hbo(spec, &config, seeds::FIG7 + run_idx);
        let mut s = Series::new(format!(
            "run {} (x={:.2}, c=[{}], alloc={})",
            run_idx + 1,
            run.best.point.x,
            run.best
                .point
                .c
                .iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join(", "),
            run.best
                .point
                .allocation
                .iter()
                .map(|d| d.letter())
                .collect::<String>()
        ));
        for (i, c) in run.best_cost_trace.iter().enumerate() {
            s.push((i + 1) as f64, *c);
        }
        print!("{}", s.render_summary());
        finals.push(run.best.cost);
    }
    let mean = finals.iter().sum::<f64>() / finals.len() as f64;
    let spread = finals.iter().cloned().fold(f64::MIN, f64::max)
        - finals.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "   final best costs: [{}]  mean {:.3}, spread {:.3}\n",
        finals
            .iter()
            .map(|c| format!("{c:+.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        mean,
        spread
    );
}

fn main() {
    study(&ScenarioSpec::sc1_cf2());
    study(&ScenarioSpec::sc2_cf2());
    println!(
        "Paper check: despite different initial datapoints, all runs converge to a\n\
         similar-cost solution (robustness to BO initialization), even when the\n\
         chosen allocation or ratio differs between runs."
    );
}
