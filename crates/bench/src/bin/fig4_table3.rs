//! Regenerates **Figure 4 and Table III**: HBO's chosen AI allocation,
//! triangle-count ratio, and best-cost convergence across the four
//! scenario combinations (SC1/SC2 × CF1/CF2) on the Pixel 7.
//!
//! Paper protocol (Section V-B): weight `w = 2.5`, dataset seeded with 5
//! random configurations, then 15 BO iterations; HBO activates after all
//! objects are placed with all AI tasks running.

use hbo_bench::{harness, seeds, Series, Table};
use hbo_core::HboConfig;
use marsim::runner::{self, SweepJob};
use marsim::ScenarioSpec;

fn main() {
    let config = HboConfig::default();
    let threads = runner::threads_from_args();
    // The four scenarios as a flat parallel job list, each pinned to the
    // historic figure seed so the published numbers stay bit-identical.
    let jobs: Vec<SweepJob> = ScenarioSpec::all_four()
        .into_iter()
        .map(|spec| SweepJob::seeded(spec.name.clone(), spec, config.clone(), seeds::FIG4))
        .collect();
    let sweep = runner::run_sweep("fig4_table3", jobs, seeds::FIG4, threads);
    let runs: Vec<_> = ScenarioSpec::all_four()
        .into_iter()
        .zip(&sweep.outcomes)
        .map(|(spec, o)| (spec, o.run.clone()))
        .collect();

    // Fig. 4a — allocation proportions chosen per scenario.
    let mut t = Table::new(
        "Fig. 4a — AI task allocation proportions chosen by HBO",
        vec![
            "scenario".into(),
            "CPU".into(),
            "GPU".into(),
            "NNAPI".into(),
        ],
    );
    for (spec, run) in &runs {
        let alloc = &run.best.point.allocation;
        let m = alloc.len() as f64;
        let frac = |d: nnmodel::Delegate| {
            format!(
                "{:.2}",
                alloc.iter().filter(|&&a| a == d).count() as f64 / m
            )
        };
        t.row(vec![
            spec.name.clone(),
            frac(nnmodel::Delegate::Cpu),
            frac(nnmodel::Delegate::Gpu),
            frac(nnmodel::Delegate::Nnapi),
        ]);
    }
    println!("{}", t.render());

    // Fig. 4b — triangle count ratio (paper: 0.72 / 1 / 0.85 / 0.94).
    let mut t = Table::new(
        "Fig. 4b — triangle count ratio chosen by HBO",
        vec!["scenario".into(), "x measured".into(), "x paper".into()],
    );
    for ((spec, run), paper) in runs.iter().zip(["0.72", "1.00", "0.85", "0.94"]) {
        t.row(vec![
            spec.name.clone(),
            format!("{:.2}", run.best.point.x),
            paper.to_owned(),
        ]);
    }
    println!("{}", t.render());

    // Table III — per-task assignments.
    let mut t = Table::new(
        "Table III — AI allocation per task",
        vec![
            "task".into(),
            "SC1-CF1".into(),
            "SC2-CF1".into(),
            "SC1-CF2".into(),
            "SC2-CF2".into(),
        ],
    );
    let names = runs[0].0.task_names();
    for (i, name) in names.iter().enumerate() {
        let cell = |run_idx: usize| -> String {
            let (spec, run) = &runs[run_idx];
            let names = spec.task_names();
            match names.iter().position(|n| n == name) {
                Some(j) => run.best.point.allocation[j].to_string(),
                None => "-".to_owned(),
            }
        };
        let _ = i;
        t.row(vec![name.clone(), cell(0), cell(1), cell(2), cell(3)]);
    }
    println!("{}", t.render());

    // Fig. 4c — best-cost convergence across iterations.
    println!("== Fig. 4c — best cost through iterations ==");
    for (spec, run) in &runs {
        let mut s = Series::new(format!(
            "{} (best Q={:.3}, eps={:.3}, converged at iter {})",
            spec.name,
            run.best.quality,
            run.best.epsilon,
            run.iterations_to_converge()
        ));
        for (i, c) in run.best_cost_trace.iter().enumerate() {
            s.push((i + 1) as f64, *c);
        }
        print!("{}", s.render_summary());
    }
    println!();
    println!(
        "Paper checks: SC2-CF2 attains the lowest best cost (lightest contention);\n\
         SC1 scenarios reduce triangles while SC2 scenarios keep x near 1;\n\
         convergence lands within the 20-iteration budget (paper: 7 best / 13 avg)."
    );
    let costs: Vec<f64> = runs.iter().map(|(_, r)| r.best.cost).collect();
    let min_idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "Measured: lowest best cost = {} ({:.3}); avg iterations-to-converge = {:.1}",
        runs[min_idx].0.name,
        costs[min_idx],
        runs.iter()
            .map(|(_, r)| r.iterations_to_converge() as f64)
            .sum::<f64>()
            / runs.len() as f64
    );
    harness::emit_runner_report(&sweep.report);
}
