//! Extension study: does HBO generalize beyond the paper's four hand-built
//! scenarios?
//!
//! We synthesize randomized scenarios — object sets drawn across the
//! SC1/SC2 weight spectrum, tasksets drawn from the zoo with random
//! instance counts, random user distance — and pit HBO against the static
//! best-isolated allocation at full quality (the sensible out-of-the-box
//! configuration). The paper claims HBO "can automatically adapt to
//! different scenarios of virtual objects and tasksets with little
//! information prior execution"; the win rate quantifies it.

//!
//! The random scenarios are independent end-to-end pipelines (synthesize,
//! measure the static start, run HBO, re-measure); each is one job on the
//! deterministic parallel runner (`--threads N` / `HBO_THREADS`).

use hbo_bench::{harness, Table};
use hbo_core::HboConfig;
use marsim::experiment::run_hbo;
use marsim::runner;
use marsim::synth::{random_scenario, SynthConfig};
use marsim::MarApp;

const N_SCENARIOS: usize = 12;

/// Everything one scenario contributes to the table.
struct ScenarioVerdict {
    name: String,
    objects: usize,
    tasks: usize,
    mtris: f64,
    hbo_x: f64,
    hbo_reward: f64,
    static_reward: f64,
}

fn main() {
    let config = HboConfig {
        n_initial: 4,
        iterations: 10,
        ..HboConfig::default()
    };
    let scenario_ids: Vec<u64> = (0..N_SCENARIOS as u64).collect();
    let (verdicts, report) = runner::run_map(
        "generalization",
        runner::threads_from_args(),
        &scenario_ids,
        |_, &i| {
            let spec = random_scenario(31_000 + i, &SynthConfig::default());

            // Static start: best-isolated allocation at full quality.
            let mut app = MarApp::new(&spec);
            app.place_all_objects();
            app.run_for_secs(1.0);
            let static_m = app.measure_for_secs(8.0);
            let static_reward = static_m.reward(config.w);

            let run = run_hbo(&spec, &config, 5_000 + i);
            app.apply(&run.best.point);
            app.run_for_secs(1.0);
            let hbo_m = app.measure_for_secs(8.0);

            ScenarioVerdict {
                name: spec.name.clone(),
                objects: spec.objects.len(),
                tasks: spec.task_count(),
                mtris: spec
                    .objects
                    .iter()
                    .map(|o| o.triangles as f64 * o.count as f64)
                    .sum::<f64>()
                    / 1e6,
                hbo_x: run.best.point.x,
                hbo_reward: hbo_m.reward(config.w),
                static_reward,
            }
        },
    );

    let mut table = Table::new(
        format!(
            "Generalization — HBO vs static-best/full-quality on {N_SCENARIOS} random scenarios"
        ),
        vec![
            "scenario".into(),
            "objects".into(),
            "tasks".into(),
            "Mtris".into(),
            "HBO x".into(),
            "HBO reward".into(),
            "static reward".into(),
            "winner".into(),
        ],
    );
    let mut wins = 0;
    for v in &verdicts {
        let win = v.hbo_reward > v.static_reward;
        wins += win as usize;
        table.row(vec![
            v.name.clone(),
            v.objects.to_string(),
            v.tasks.to_string(),
            format!("{:.2}", v.mtris),
            format!("{:.2}", v.hbo_x),
            format!("{:+.3}", v.hbo_reward),
            format!("{:+.3}", v.static_reward),
            format!(
                "{} ({:+.3})",
                if win { "HBO" } else { "static" },
                v.hbo_reward - v.static_reward
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "HBO wins {wins}/{N_SCENARIOS} random scenarios; the margins column shows\n\
         losses are mostly within the per-window measurement noise (~0.05): on\n\
         light scenes the static full-quality start is already near-optimal and\n\
         the incumbent-seeded activation simply confirms it."
    );
    harness::emit_runner_report(&report);
}
