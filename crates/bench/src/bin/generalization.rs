//! Extension study: does HBO generalize beyond the paper's four hand-built
//! scenarios?
//!
//! We synthesize randomized scenarios — object sets drawn across the
//! SC1/SC2 weight spectrum, tasksets drawn from the zoo with random
//! instance counts, random user distance — and pit HBO against the static
//! best-isolated allocation at full quality (the sensible out-of-the-box
//! configuration). The paper claims HBO "can automatically adapt to
//! different scenarios of virtual objects and tasksets with little
//! information prior execution"; the win rate quantifies it.

use hbo_bench::Table;
use hbo_core::HboConfig;
use marsim::experiment::run_hbo;
use marsim::synth::{random_scenario, SynthConfig};
use marsim::MarApp;

const N_SCENARIOS: usize = 12;

fn main() {
    let config = HboConfig {
        n_initial: 4,
        iterations: 10,
        ..HboConfig::default()
    };
    let mut table = Table::new(
        format!(
            "Generalization — HBO vs static-best/full-quality on {N_SCENARIOS} random scenarios"
        ),
        vec![
            "scenario".into(),
            "objects".into(),
            "tasks".into(),
            "Mtris".into(),
            "HBO x".into(),
            "HBO reward".into(),
            "static reward".into(),
            "winner".into(),
        ],
    );
    let mut wins = 0;
    for i in 0..N_SCENARIOS {
        let spec = random_scenario(31_000 + i as u64, &SynthConfig::default());

        // Static start: best-isolated allocation at full quality.
        let mut app = MarApp::new(&spec);
        app.place_all_objects();
        app.run_for_secs(1.0);
        let static_m = app.measure_for_secs(8.0);
        let static_reward = static_m.reward(config.w);

        let run = run_hbo(&spec, &config, 5_000 + i as u64);
        app.apply(&run.best.point);
        app.run_for_secs(1.0);
        let hbo_m = app.measure_for_secs(8.0);
        let hbo_reward = hbo_m.reward(config.w);

        let win = hbo_reward > static_reward;
        wins += win as usize;
        table.row(vec![
            spec.name.clone(),
            spec.objects.len().to_string(),
            spec.task_count().to_string(),
            format!(
                "{:.2}",
                spec.objects
                    .iter()
                    .map(|o| o.triangles as f64 * o.count as f64)
                    .sum::<f64>()
                    / 1e6
            ),
            format!("{:.2}", run.best.point.x),
            format!("{hbo_reward:+.3}"),
            format!("{static_reward:+.3}"),
            format!(
                "{} ({:+.3})",
                if win { "HBO" } else { "static" },
                hbo_reward - static_reward
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "HBO wins {wins}/{N_SCENARIOS} random scenarios; the margins column shows\n\
         losses are mostly within the per-window measurement noise (~0.05): on\n\
         light scenes the static full-quality start is already near-optimal and\n\
         the incumbent-seeded activation simply confirms it."
    );
}
