//! Regenerates **Figure 5 and Table IV**: HBO against the four baselines
//! (SMQ, SML, BNT, AllN) on the most challenging scenario, SC1-CF1.
//!
//! Paper headline numbers to compare against: SMQ suffers ~1.5× HBO's
//! average latency at matched quality; HBO keeps ~14.5 % more quality than
//! SML at matched latency; HBO is ~2.2× / ~3.5× faster than BNT / AllN
//! while giving up only ~13 % quality.

//! The tail-latency extension re-measures all five baselines over a 20 s
//! window; those five measurements run concurrently on the deterministic
//! parallel runner (`--threads N` / `HBO_THREADS`).

use hbo_bench::{harness, seeds, Table};
use hbo_core::{Baseline, HboConfig};
use marsim::experiment::compare_baselines;
use marsim::{runner, MarApp, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::sc1_cf1();
    let config = HboConfig::default();
    let result = compare_baselines(&spec, &config, seeds::FIG5);

    // Table IV — allocations and ratios.
    let mut t = Table::new(
        "Table IV — AI allocation and triangle ratio per system (SC1-CF1)",
        vec![
            "task".into(),
            "HBO".into(),
            "SMQ, SML".into(),
            "BNT".into(),
            "AllN".into(),
        ],
    );
    for (i, name) in spec.task_names().iter().enumerate() {
        t.row(vec![
            name.clone(),
            result.outcome(Baseline::Hbo).allocation[i].to_string(),
            result.outcome(Baseline::Smq).allocation[i].to_string(),
            result.outcome(Baseline::Bnt).allocation[i].to_string(),
            result.outcome(Baseline::AllN).allocation[i].to_string(),
        ]);
    }
    t.row(vec![
        "x (triangle ratio)".into(),
        format!("{:.2}", result.outcome(Baseline::Hbo).x),
        format!(
            "{:.2}, {:.2}",
            result.outcome(Baseline::Smq).x,
            result.outcome(Baseline::Sml).x
        ),
        "1.00".into(),
        "1.00".into(),
    ]);
    println!("{}", t.render());

    // Fig. 5b/5c — quality and latency per system.
    let mut t = Table::new(
        "Fig. 5b/5c — average quality, normalized latency, latency ratio vs HBO",
        vec![
            "system".into(),
            "x".into(),
            "avg quality Q".into(),
            "avg norm latency eps".into(),
            "latency ratio vs HBO".into(),
            "mean per-task ms".into(),
        ],
    );
    for b in Baseline::ALL {
        let o = result.outcome(b);
        let mean_ms =
            o.measurement.per_task_ms.iter().sum::<f64>() / o.measurement.per_task_ms.len() as f64;
        t.row(vec![
            b.label().to_owned(),
            format!("{:.2}", o.x),
            format!("{:.3}", o.measurement.quality),
            format!("{:.3}", o.measurement.epsilon),
            format!("{:.2}x", result.latency_ratio_vs_hbo(b)),
            format!("{mean_ms:.1}"),
        ]);
    }
    println!("{}", t.render());

    // Tail latency (not in the paper, but what a MAR user feels): p95 per
    // system, re-measured over a longer window. The five baseline
    // re-measurements are independent simulations — run them in parallel.
    let threads = runner::threads_from_args();
    let (tails, report) = runner::run_map("fig5_table4", threads, &Baseline::ALL, |_, &b| {
        let o = result.outcome(b);
        let mut app = MarApp::new(&spec);
        app.place_all_objects();
        app.set_allocation(&o.allocation);
        if b == Baseline::Sml {
            app.set_uniform_ratio(o.x);
        } else {
            app.set_triangle_ratio(o.x);
        }
        app.run_for_secs(20.0);
        let mean_pct = |q: f64| {
            let v = app.per_task_percentile_ms(q);
            let vals: Vec<f64> = v.into_iter().flatten().collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        [mean_pct(0.5), mean_pct(0.95), mean_pct(0.99)]
    });
    let mut t = Table::new(
        "Extension — tail latency over a 20 s window (p95 ms, mean across tasks)",
        vec!["system".into(), "p50".into(), "p95".into(), "p99".into()],
    );
    for (b, tail) in Baseline::ALL.iter().zip(&tails) {
        t.row(vec![
            b.label().to_owned(),
            format!("{:.1}", tail[0]),
            format!("{:.1}", tail[1]),
            format!("{:.1}", tail[2]),
        ]);
    }
    println!("{}", t.render());

    // Headline comparisons (paper vs measured).
    let hbo = result.outcome(Baseline::Hbo);
    let smq = result.outcome(Baseline::Smq);
    let sml = result.outcome(Baseline::Sml);
    let bnt = result.outcome(Baseline::Bnt);
    let alln = result.outcome(Baseline::AllN);
    let ms = |o: &marsim::BaselineOutcome| {
        o.measurement.per_task_ms.iter().sum::<f64>() / o.measurement.per_task_ms.len() as f64
    };
    println!("== Headline checks (paper -> measured) ==");
    println!(
        "SMQ latency vs HBO at matched quality:   paper 1.5x  -> measured {:.2}x (ms) / {:.2}x (eps)",
        ms(smq) / ms(hbo),
        smq.measurement.epsilon / hbo.measurement.epsilon.max(1e-9)
    );
    println!(
        "HBO quality vs SML at matched latency:   paper +14.5% -> measured +{:.1}% (SML x={:.2}, eps {:.3} vs HBO {:.3})",
        100.0 * (hbo.measurement.quality - sml.measurement.quality) / sml.measurement.quality,
        sml.x,
        sml.measurement.epsilon,
        hbo.measurement.epsilon
    );
    println!(
        "BNT latency vs HBO:                      paper 2.2x  -> measured {:.2}x (ms)",
        ms(bnt) / ms(hbo)
    );
    println!(
        "AllN latency vs HBO:                     paper 3.5x  -> measured {:.2}x (ms)",
        ms(alln) / ms(hbo)
    );
    println!(
        "HBO quality sacrificed vs full quality:  paper ~13%  -> measured {:.1}%",
        100.0 * (1.0 - hbo.measurement.quality)
    );
    harness::emit_runner_report(&report);
}
