//! Runs every table/figure reproduction in paper order by invoking the
//! sibling experiment binaries' logic is impractical across processes, so
//! this simply shells out to each binary when available — or, when run via
//! `cargo run`, prints the instructions.
//!
//! Practically: `cargo run --release -p hbo-bench --bin run_all` executes
//! each experiment binary in-process order using `std::process::Command`
//! against the already-built binaries next to itself.

use std::path::PathBuf;
use std::process::Command;

/// The experiment binaries: the paper's tables/figures in order, then the
/// extension studies (BO ablation, Section VI lookup table, energy).
const EXPERIMENTS: [&str; 14] = [
    "table1",
    "fig2",
    "table2",
    "fig4_table3",
    "fig5_table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation_bo",
    "fastpaced_lookup",
    "energy_analysis",
    "finegrained",
    "generalization",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir: PathBuf = me.parent().expect("binary directory").to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n########## {name} ##########\n");
        let exe = dir.join(name);
        let status = Command::new(&exe).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!(
                    "could not run {name} ({e}); build it first with \
                     `cargo build --release -p hbo-bench --bins`"
                );
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
