//! Fleet-scale cluster sweep: fleet size × routing policy, one
//! heterogeneous churning population per cell served by the fixed
//! four-server cluster of `marsim::fleet::mar_cluster`.
//!
//! ```text
//! fleet_sweep [--smoke] [--seed N] [--threads T]
//! ```
//!
//! Emits one JSON line per `(fleet size, policy)` cell — cluster-level
//! p50/p95/p99 latency, reject rate, per-server counters — plus the
//! runner report with merged telemetry. Cells run on the deterministic
//! parallel runner: each cell's seed derives from `(--seed, cell
//! index)`, so the row set is bit-identical for any `--threads` setting
//! (pinned, with a golden cell, by `tests/end_to_end.rs`).
//!
//! The full sweep covers hundreds of thousands of client-windows
//! (session-seconds); `--smoke` shrinks it to seconds of wall time for
//! CI.

use edgelink::RoutePolicy;
use hbo_bench::harness;
use marsim::fleet::{run_fleet_cell, FleetSpec};
use marsim::runner::{self, job_seed, MetricSummary};
use marsim::TelemetrySummary;
use simcore::stats::Running;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);
    let threads = runner::threads_from_args();

    // Fixed cluster, growing fleet: the sweep walks one deployment from
    // comfortable (~0.3× capacity) to heavily saturated, where routing
    // policy and load shedding dominate the tail.
    let (fleets, horizon): (Vec<usize>, f64) = if smoke {
        (vec![12], 4.0)
    } else {
        (vec![64, 256, 1024, 4096], 30.0)
    };

    let cells: Vec<(usize, RoutePolicy)> = fleets
        .iter()
        .flat_map(|&n| RoutePolicy::ALL.iter().map(move |&p| (n, p)))
        .collect();
    let (outcomes, mut report) =
        runner::run_map("fleet_sweep", threads, &cells, |i, &(fleet, policy)| {
            let spec = FleetSpec::mar_default(fleet).with_horizon(horizon);
            run_fleet_cell(&spec, policy, job_seed(seed, i as u64))
        });
    for r in &outcomes {
        println!("{}", r.row);
    }
    // Merge per-cell telemetry and metrics in cell order (deterministic
    // for any thread count).
    let mut telemetry = TelemetrySummary::default();
    let mut completed = Running::new();
    let mut mean_ms = Running::new();
    for r in &outcomes {
        telemetry.merge(&r.telemetry);
        completed.record(r.completed as f64);
        if let Some(m) = r.mean_ms {
            mean_ms.record(m);
        }
    }
    report.telemetry = Some(telemetry);
    report.metrics = vec![
        MetricSummary {
            name: "cell_completed".to_owned(),
            stats: completed,
        },
        // Empty (rendered null) if every cell rejected everything.
        MetricSummary {
            name: "cell_mean_ms".to_owned(),
            stats: mean_ms,
        },
    ];
    harness::emit_runner_report(&report);
}
