//! Fleet-scale cluster sweep: fleet size × routing policy, one
//! heterogeneous churning population per cell served by the fixed
//! four-server cluster of `marsim::fleet::mar_cluster`.
//!
//! ```text
//! fleet_sweep [--smoke] [--warm] [--seed N] [--threads T] [--trace PATH]
//!             [--metrics PATH] [--trace-sample K]
//! ```
//!
//! Emits one JSON line per `(fleet size, policy)` cell — cluster-level
//! p50/p95/p99 latency, reject rate, per-server counters — plus the
//! runner report with merged telemetry. Cells run on the deterministic
//! parallel runner: each cell's seed derives from `(--seed, cell
//! index)`, so the row set is bit-identical for any `--threads` setting
//! (pinned, with a golden cell, by `tests/end_to_end.rs`).
//!
//! `--warm` prepends a per-class HBO planning pass per fleet-size epoch,
//! sharing one fleet-wide warm-start cache across epochs: each class
//! plans against a clone of the epoch-start cache, and the per-job
//! shadow caches merge back in class order — so the `fleet_plan` rows
//! are bit-identical for any `--threads` setting too, and epochs after
//! the first run warm. The cell rows are byte-identical with and
//! without `--warm` (cell seeds never depend on the planning pass).
//!
//! The full sweep covers hundreds of thousands of client-windows
//! (session-seconds); `--smoke` shrinks it to seconds of wall time for
//! CI.
//!
//! With `--trace PATH` every cell's cluster records per-server queue
//! depth and busy-lane counters (one Chrome `pid` per cell, in cell
//! order), written to `PATH` as Chrome trace-event JSON; the emitted
//! rows stay byte-identical. `--trace-sample K` keeps full Chrome
//! detail for only the `K` cells whose seed-derived hashes are smallest
//! (deterministic across reruns and thread counts). With `--metrics
//! PATH` every cell — sampled or not — streams its spans and counters
//! into a bounded [`simcore::metrics::AggregatingSink`]; the per-cell
//! buffers merge in cell order and the Prometheus-style text exposition
//! is written to `PATH`, byte-identical for any `--threads` setting.

use edgelink::RoutePolicy;
use hbo_bench::harness;
use hbo_core::WarmCache;
use marsim::fleet::{run_class_plan, run_fleet_cell_traced, FleetSpec};
use marsim::runner::{self, job_seed, MetricSummary};
use marsim::TelemetrySummary;
use simcore::metrics::{head_sample, with_observers, MetricsBuffer};
use simcore::rng::mix;
use simcore::stats::Running;
use simcore::trace::{chrome_trace_json, TraceBuffer, TraceJob, Tracer};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let warm = argv.iter().any(|a| a == "--warm");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);
    let trace_path: Option<String> = argv
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let metrics_path: Option<String> = argv
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let trace_sample: Option<usize> = argv
        .iter()
        .position(|a| a == "--trace-sample")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok());
    let threads = runner::threads_from_args();

    // Fixed cluster, growing fleet: the sweep walks one deployment from
    // comfortable (~0.3× capacity) to heavily saturated, where routing
    // policy and load shedding dominate the tail.
    let (fleets, horizon): (Vec<usize>, f64) = if smoke {
        (vec![12], 4.0)
    } else {
        (vec![64, 256, 1024, 4096], 30.0)
    };

    // Warm-start planning pass: one HBO plan per device class per
    // fleet-size epoch, against a cache snapshot cloned at epoch start;
    // shadows merge back in class order (deterministic for any thread
    // count). Runs before the cells, whose seeds it never touches.
    let mut plan_telemetry = TelemetrySummary::default();
    if warm {
        let mut cache = WarmCache::new();
        for (epoch, &fleet) in fleets.iter().enumerate() {
            let spec = FleetSpec::mar_default(fleet).with_horizon(horizon);
            let class_idxs: Vec<usize> = (0..spec.classes.len()).collect();
            let snapshot = cache.clone();
            let seed_base = mix(mix(seed, 0x9A11_0001), epoch as u64);
            let (plans, _) = runner::run_map("fleet_plan", threads, &class_idxs, |_, &i| {
                run_class_plan(&spec, i, seed_base, &snapshot)
            });
            for p in &plans {
                println!("{}", p.row);
                plan_telemetry.merge(&p.telemetry);
                cache.merge(&p.shadow);
            }
        }
    }

    let cells: Vec<(usize, RoutePolicy)> = fleets
        .iter()
        .flat_map(|&n| RoutePolicy::ALL.iter().map(move |&p| (n, p)))
        .collect();
    let traced = trace_path.is_some();
    let want_metrics = metrics_path.is_some();
    let cell_seeds: Vec<u64> = (0..cells.len()).map(|i| job_seed(seed, i as u64)).collect();
    // Which cells keep full Chrome detail: all of them without
    // --trace-sample, otherwise the K with the smallest seed-derived
    // hashes — a pure function of (--seed, cell seeds), so the same
    // cells on every rerun and every --threads value.
    let sampled: Vec<bool> = match (traced, trace_sample) {
        (true, Some(k)) => head_sample(seed, &cell_seeds, k),
        (true, None) => vec![true; cells.len()],
        (false, _) => vec![false; cells.len()],
    };
    let (outcomes, mut report) =
        runner::run_map("fleet_sweep", threads, &cells, |i, &(fleet, policy)| {
            let spec = FleetSpec::mar_default(fleet).with_horizon(horizon);
            let cell_seed = cell_seeds[i];
            if sampled[i] || want_metrics {
                with_observers(sampled[i], want_metrics, |tracer| {
                    run_fleet_cell_traced(&spec, policy, cell_seed, tracer)
                })
            } else {
                (
                    run_fleet_cell_traced(&spec, policy, cell_seed, Tracer::disabled()),
                    None,
                    None,
                )
            }
        });
    for (r, _, _) in &outcomes {
        println!("{}", r.row);
    }
    // Merge per-cell telemetry and metrics in cell order (deterministic
    // for any thread count).
    let mut telemetry = plan_telemetry;
    let mut completed = Running::new();
    let mut mean_ms = Running::new();
    for (r, _, _) in &outcomes {
        telemetry.merge(&r.telemetry);
        completed.record(r.completed as f64);
        if let Some(m) = r.mean_ms {
            mean_ms.record(m);
        }
    }
    report.telemetry = Some(telemetry);
    report.metrics = vec![
        MetricSummary {
            name: "cell_completed".to_owned(),
            stats: completed,
        },
        // Empty (rendered null) if every cell rejected everything.
        MetricSummary {
            name: "cell_mean_ms".to_owned(),
            stats: mean_ms,
        },
    ];
    harness::emit_runner_report(&report);

    if let Some(path) = trace_path {
        let jobs: Vec<TraceJob> = outcomes
            .iter()
            .zip(&cells)
            .filter_map(|((_, trace, _), &(fleet, policy))| {
                trace.as_ref().map(|buffer: &TraceBuffer| TraceJob {
                    name: format!("fleet{fleet} {}", policy.name()),
                    buffer: buffer.clone(),
                })
            })
            .collect();
        if let Err(e) = std::fs::write(&path, chrome_trace_json(&jobs)) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }

    if let Some(path) = metrics_path {
        // Per-cell aggregates merge in cell order, so the exposition is
        // byte-identical for any --threads setting and any queue kind.
        let mut merged = MetricsBuffer::default();
        for (_, _, metrics) in &outcomes {
            if let Some(m) = metrics {
                merged.merge(m);
            }
        }
        if let Err(e) = std::fs::write(&path, merged.render_prometheus()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}
