//! Stadium sweep: a growing crowd shares one contended cell until HBO
//! flips the fleet back to local inference, plus a mobility/handover
//! cell where the population walks across a two-cell deployment.
//!
//! ```text
//! stadium_sweep [--smoke] [--seed N] [--threads T] [--trace PATH]
//!               [--metrics PATH] [--trace-sample K]
//! ```
//!
//! Emits one `stadium_sweep` JSON line per cell population — HBO's final
//! allocation and reward next to the effective per-client bandwidth at
//! that population — then one `stadium_mobility` line for the walking
//! fleet, plus the runner report. Cells run on the deterministic
//! parallel runner: each cell's seed derives from `(--seed, cell
//! index)`, so the row set is bit-identical for any `--threads` setting
//! (pinned, with a golden cell, by `tests/end_to_end.rs`).
//!
//! With `--trace PATH` every population cell's HBO activation and the
//! mobility cell's cluster record span/counter traces (per-cell radio
//! utilization and active-flow counters among them), written to `PATH`
//! as Chrome trace-event JSON; the emitted rows stay byte-identical.
//! `--trace-sample K` keeps full Chrome detail for only the `K` cells
//! (population cells plus the mobility cell) with the smallest
//! seed-derived hashes; `--metrics PATH` streams every cell's spans and
//! counters into a bounded aggregator and writes the merged
//! Prometheus-style exposition, byte-identical for any `--threads`
//! setting.

use edgelink::SharedCell;
use hbo_bench::harness;
use hbo_core::HboConfig;
use marsim::edge::stadium_cell_traced;
use marsim::fleet::{run_mobility_cell_traced, FleetSpec};
use marsim::runner::{self, job_seed};
use marsim::{ScenarioSpec, TelemetrySummary};
use simcore::metrics::{head_sample, with_observers, MetricsBuffer};
use simcore::trace::{chrome_trace_json, TraceBuffer, TraceJob, Tracer};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let seed: u64 = argv
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2024);
    let trace_path: Option<String> = argv
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let metrics_path: Option<String> = argv
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let trace_sample: Option<usize> = argv
        .iter()
        .position(|a| a == "--trace-sample")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok());
    let threads = runner::threads_from_args();

    // SC1-CF2 keeps the taskset small enough for a full activation per
    // population cell; the stadium cell's capacity (80/160 Mbit/s) is
    // generous for a handful of clients and saturating for dozens.
    let base = ScenarioSpec::sc1_cf2();
    let cell = SharedCell::stadium();
    // A full activation per cell costs well under a second even at the
    // largest population, so --smoke only shrinks the population grid
    // and the mobility horizon, never the HBO budget — the smoke rows
    // show the same edge-vs-local flip the full sweep demonstrates.
    let config = HboConfig::default();
    let populations: Vec<usize> = if smoke {
        vec![2, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    };

    let traced = trace_path.is_some();
    let want_metrics = metrics_path.is_some();
    // Head-sampling covers every cell of the sweep — the population
    // cells plus the trailing mobility cell — as one seed sequence, so
    // the same K cells keep Chrome detail on every rerun and thread
    // count.
    let cell_seeds: Vec<u64> = (0..=populations.len())
        .map(|i| job_seed(seed, i as u64))
        .collect();
    let sampled: Vec<bool> = match (traced, trace_sample) {
        (true, Some(k)) => head_sample(seed, &cell_seeds, k),
        (true, None) => vec![true; cell_seeds.len()],
        (false, _) => vec![false; cell_seeds.len()],
    };
    type CellOutcome = (
        String,
        TelemetrySummary,
        Option<TraceBuffer>,
        Option<MetricsBuffer>,
    );
    let (outcomes, mut report): (Vec<CellOutcome>, _) =
        runner::run_map("stadium_sweep", threads, &populations, |i, &clients| {
            let cell_seed = cell_seeds[i];
            if sampled[i] || want_metrics {
                let ((row, telemetry), trace, metrics) =
                    with_observers(sampled[i], want_metrics, |tracer| {
                        stadium_cell_traced(&base, cell, clients, &config, cell_seed, tracer)
                    });
                (row, telemetry, trace, metrics)
            } else {
                let (row, telemetry) = stadium_cell_traced(
                    &base,
                    cell,
                    clients,
                    &config,
                    cell_seed,
                    Tracer::disabled(),
                );
                (row, telemetry, None, None)
            }
        });
    for (row, _, _, _) in &outcomes {
        println!("{row}");
    }

    // The mobility/handover cell runs serially after the population
    // cells (one job; identical for any --threads setting). Its seed
    // continues the same job-seed sequence.
    let fleet = FleetSpec::mar_default(8).with_horizon(if smoke { 4.0 } else { 30.0 });
    let mobility_seed = cell_seeds[populations.len()];
    let mobility_sampled = sampled[populations.len()];
    let (mobility, mobility_trace, mobility_metrics) = if mobility_sampled || want_metrics {
        with_observers(mobility_sampled, want_metrics, |tracer| {
            run_mobility_cell_traced(&fleet, mobility_seed, tracer)
        })
    } else {
        (
            run_mobility_cell_traced(&fleet, mobility_seed, Tracer::disabled()),
            None,
            None,
        )
    };
    println!("{}", mobility.row);

    // Merge per-cell telemetry totals in cell order (deterministic for
    // any thread count) into the runner report.
    let mut telemetry = TelemetrySummary::default();
    for (_, t, _, _) in &outcomes {
        telemetry.merge(t);
    }
    telemetry.merge(&mobility.telemetry);
    report.telemetry = Some(telemetry);
    harness::emit_runner_report(&report);

    if let Some(path) = trace_path {
        let mut jobs: Vec<TraceJob> = outcomes
            .iter()
            .zip(&populations)
            .filter_map(|((_, _, trace, _), &clients)| {
                trace.as_ref().map(|buffer| TraceJob {
                    name: format!("stadium c{clients}"),
                    buffer: buffer.clone(),
                })
            })
            .collect();
        if let Some(buffer) = mobility_trace {
            jobs.push(TraceJob {
                name: "mobility".to_owned(),
                buffer,
            });
        }
        if let Err(e) = std::fs::write(&path, chrome_trace_json(&jobs)) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }

    if let Some(path) = metrics_path {
        // Cell order, mobility last — the same merge order for any
        // --threads setting, so the exposition is byte-identical.
        let mut merged = MetricsBuffer::default();
        for (_, _, _, metrics) in &outcomes {
            if let Some(m) = metrics {
                merged.merge(m);
            }
        }
        if let Some(m) = &mobility_metrics {
            merged.merge(m);
        }
        if let Err(e) = std::fs::write(&path, merged.render_prometheus()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}
