//! In-tree Chrome trace-event JSON validator (no serialization crate;
//! hermetic build). CI uses it to smoke-check `--trace` output:
//!
//! ```text
//! check_json PATH [--require-cat CAT]...
//! ```
//!
//! Parses `PATH` with [`simcore::trace::chrome_trace_stats`], prints a
//! one-line summary, and exits nonzero when the file is not valid Chrome
//! trace JSON or a `--require-cat` category has no spans.

use simcore::trace::chrome_trace_stats;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut required: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require-cat" => {
                i += 1;
                match argv.get(i) {
                    Some(cat) => required.push(cat),
                    None => {
                        eprintln!("error: missing value for --require-cat");
                        std::process::exit(2);
                    }
                }
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("error: unexpected argument {other}");
                eprintln!("usage: check_json PATH [--require-cat CAT]...");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: check_json PATH [--require-cat CAT]...");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let stats = match chrome_trace_stats(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path} is not valid Chrome trace JSON: {e}");
            std::process::exit(1);
        }
    };
    let cats: Vec<String> = stats
        .span_cats
        .iter()
        .map(|(c, n)| format!("{c}:{n}"))
        .collect();
    println!(
        "{path}: {} events, {} spans ({} B/{} E, {} X), {} counters, \
         {} instants, {} metadata [{}]",
        stats.events,
        stats.spans,
        stats.begins,
        stats.ends,
        stats.completes,
        stats.counters,
        stats.instants,
        stats.metadata,
        cats.join(" ")
    );
    let mut missing = false;
    for cat in required {
        if stats.spans_in_cat(cat) == 0 {
            eprintln!("error: no '{cat}' spans in {path}");
            missing = true;
        }
    }
    if missing {
        std::process::exit(1);
    }
}
