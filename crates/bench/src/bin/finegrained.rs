//! Extension study: the fine-grained per-operator scheduler the paper
//! argues against (Section II), evaluated head-to-head with the coarse
//! delegates and HBO.
//!
//! The paper's claims to verify:
//!
//! 1. *"similar model slicing techniques are already embedded in the
//!    available NNAPI delegate"* — in isolation, the greedy per-operator
//!    schedule performs about as well as the best coarse choice.
//! 2. *"due to inter-processor communication delays and inefficiencies,
//!    the … choice that maximizes the AI performance still highly depends
//!    on the … taskset and triangle count"* — under a loaded scene, the
//!    contention-blind per-op schedule collapses just like AllN, while
//!    HBO's joint coarse-allocation + triangle manipulation stays fast.

use hbo_bench::{seeds, Table};
use hbo_core::HboConfig;
use marsim::experiment::run_hbo;
use marsim::{MarApp, ScenarioSpec};
use nnmodel::{fine_grained_plan, OpGraph};

/// Operators per synthesized model graph.
const N_OPS: usize = 14;

fn main() {
    let spec = ScenarioSpec::sc1_cf1();
    let zoo = spec.zoo();
    let device = spec.device.clone();
    let (_, procs) = device.topology();

    // Per-model fine-grained plans (and their structure).
    let mut t = Table::new(
        "Fine-grained per-operator schedules (Pixel 7, isolated reasoning)",
        vec![
            "model".into(),
            "ops".into(),
            "NPU ops".into(),
            "transitions".into(),
            "nominal ms".into(),
            "best delegate ms".into(),
        ],
    );
    let mut plans = Vec::new();
    for model_name in spec.task_models() {
        let model = zoo.get(&model_name).expect("model in zoo");
        let graph = OpGraph::synthesize(model, N_OPS);
        let plan = fine_grained_plan(model, &graph, &device, procs).expect("plan");
        t.row(vec![
            model_name.clone(),
            graph.len().to_string(),
            plan.placements
                .iter()
                .filter(|&&p| p == nnmodel::OpPlacement::Npu)
                .count()
                .to_string(),
            plan.transitions.to_string(),
            format!("{:.1}", plan.stages.nominal_total().as_millis_f64()),
            format!("{:.1}", model.best_delegate().1),
        ]);
        plans.push(plan);
    }
    println!("{}", t.render());

    // Evaluate under load: fine-grained vs HBO on the full SC1-CF1 app.
    let measure_fine = |x: f64| {
        let mut app = MarApp::new(&spec);
        app.place_all_objects();
        for (i, plan) in plans.iter().enumerate() {
            app.set_custom_plan(i, plan.stages.clone());
        }
        app.set_triangle_ratio(x);
        app.run_for_secs(1.0);
        app.measure_for_secs(4.0)
    };
    let fine_full = measure_fine(1.0);
    let hbo_run = run_hbo(&spec, &HboConfig::default(), seeds::FIG5);
    let hbo = {
        let mut app = MarApp::new(&spec);
        app.place_all_objects();
        app.apply(&hbo_run.best.point);
        app.run_for_secs(1.0);
        app.measure_for_secs(4.0)
    };

    let mut t = Table::new(
        "Under load (SC1-CF1): fine-grained scheduling vs HBO",
        vec![
            "system".into(),
            "x".into(),
            "quality Q".into(),
            "norm latency eps".into(),
            "mean per-task ms".into(),
        ],
    );
    let mean =
        |m: &marsim::Measurement| m.per_task_ms.iter().sum::<f64>() / m.per_task_ms.len() as f64;
    t.row(vec![
        "fine-grained (per-op greedy), x=1".into(),
        "1.00".into(),
        format!("{:.3}", fine_full.quality),
        format!("{:.3}", fine_full.epsilon),
        format!("{:.1}", mean(&fine_full)),
    ]);
    t.row(vec![
        "HBO (coarse + triangles)".into(),
        format!("{:.2}", hbo_run.best.point.x),
        format!("{:.3}", hbo.quality),
        format!("{:.3}", hbo.epsilon),
        format!("{:.1}", mean(&hbo)),
    ]);
    println!("{}", t.render());
    println!(
        "Check: the per-operator schedule is near-optimal on paper (nominal ms vs\n\
         best delegate) but contention-blind: at full render load its latency is\n\
         {:.1}x HBO's, reproducing the paper's argument that operator-level\n\
         solutions \"may not necessarily enhance AI latency in MAR apps\".",
        mean(&fine_full) / mean(&hbo)
    );
}
