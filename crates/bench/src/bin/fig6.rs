//! Regenerates **Figure 6**: detailed analysis of one HBO activation on
//! SC1-CF1 (20 iterations, as in Section V-D):
//!
//! * **(a)** Euclidean distance between consecutive BO inputs
//!   (exploration = large jumps, exploitation = small refinements),
//! * **(b)** the best-cost trace with the selected iteration marked,
//! * **(c)** average quality and normalized latency per iteration,
//! * **(d)** per-model latency of HBO's final configuration vs SMQ's.

use hbo_bench::{harness, seeds, Series, Table};
use hbo_core::{static_best_allocation, HboConfig};
use marsim::experiment::{run_hbo, CONTROL_PERIOD_SECS};
use marsim::{runner, MarApp, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::sc1_cf1();
    let config = HboConfig::default();
    let run = run_hbo(&spec, &config, seeds::FIG6);

    // (a) consecutive-input distances.
    let mut s = Series::new("Fig. 6a — Euclidean distance between consecutive configurations");
    for (i, d) in run.consecutive_distances().iter().enumerate() {
        s.push((i + 2) as f64, *d);
    }
    print!("{}", s.render());

    // (b) best-cost trace.
    let best_iter = run
        .records
        .iter()
        .position(|r| r.cost == run.best.cost)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut s = Series::new(format!(
        "Fig. 6b — best cost per iteration (selected: iteration {best_iter})"
    ));
    for (i, c) in run.best_cost_trace.iter().enumerate() {
        s.push((i + 1) as f64, *c);
    }
    print!("{}", s.render_summary());

    // (c) quality and latency per iteration.
    let mut t = Table::new(
        "Fig. 6c — measured (Q, eps) per iteration",
        vec![
            "iter".into(),
            "x".into(),
            "quality Q".into(),
            "norm latency eps".into(),
            "cost".into(),
            "selected".into(),
        ],
    );
    for (i, r) in run.records.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            format!("{:.2}", r.point.x),
            format!("{:.3}", r.quality),
            format!("{:.3}", r.epsilon),
            format!("{:+.3}", r.cost),
            if i + 1 == best_iter {
                "  <-- best".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper reference: the selected iteration had quality 0.87 and normalized\n\
         latency 0.69; measured best: quality {:.3}, eps {:.3}.\n",
        run.best.quality, run.best.epsilon
    );

    // (d) per-model latency, HBO vs SMQ at HBO's triangle ratio. The two
    // measurement sessions are independent: run them on the parallel
    // runner (`--threads N` / `HBO_THREADS`).
    let static_alloc = static_best_allocation(&spec.profiles());
    let allocations = [run.best.point.allocation.clone(), static_alloc.clone()];
    let (measurements, report) = runner::run_map(
        "fig6",
        runner::threads_from_args(),
        &allocations,
        |_, allocation| {
            let mut app = MarApp::new(&spec);
            app.place_all_objects();
            app.set_allocation(allocation);
            app.set_triangle_ratio(run.best.point.x);
            app.run_for_secs(1.0);
            app.measure_for_secs(2.0 * CONTROL_PERIOD_SECS)
        },
    );
    let (hbo_m, smq_m) = (&measurements[0], &measurements[1]);

    let mut t = Table::new(
        format!(
            "Fig. 6d — per-task latency (ms) at x = {:.2}: HBO vs SMQ",
            run.best.point.x
        ),
        vec![
            "task".into(),
            "HBO alloc".into(),
            "HBO ms".into(),
            "SMQ alloc".into(),
            "SMQ ms".into(),
            "improvement".into(),
        ],
    );
    for (i, name) in spec.task_names().iter().enumerate() {
        let improvement =
            100.0 * (smq_m.per_task_ms[i] - hbo_m.per_task_ms[i]) / hbo_m.per_task_ms[i];
        t.row(vec![
            name.clone(),
            run.best.point.allocation[i].to_string(),
            format!("{:.1}", hbo_m.per_task_ms[i]),
            static_alloc[i].to_string(),
            format!("{:.1}", smq_m.per_task_ms[i]),
            format!("{improvement:+.1}%"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper reference: relocating the GPU-affine tasks off the GPU improved the\n\
         NNAPI residents by 103% (best case, mobilenet classification) and 23.8%\n\
         (worst case, mobilenet detection)."
    );
    harness::emit_runner_report(&report);
}
