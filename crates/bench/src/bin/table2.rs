//! Regenerates **Table II**: the example scenarios (virtual-object sets
//! SC1/SC2 and AI tasksets CF1/CF2) used by the evaluation, as encoded in
//! the workspace.

use hbo_bench::Table;
use marsim::{cf1_tasks, cf2_tasks};

fn main() {
    let mut t = Table::new(
        "Table II — Virtual objects (SC1)",
        vec!["object".into(), "count".into(), "triangles".into()],
    );
    for e in arscene::scenarios::sc1_catalog() {
        t.row(vec![
            e.name.to_owned(),
            e.count.to_string(),
            e.triangles.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(
        "Table II — Virtual objects (SC2)",
        vec!["object".into(), "count".into(), "triangles".into()],
    );
    for e in arscene::scenarios::sc2_catalog() {
        t.row(vec![
            e.name.to_owned(),
            e.count.to_string(),
            e.triangles.to_string(),
        ]);
    }
    println!("{}", t.render());

    for (name, tasks) in [("CF1", cf1_tasks()), ("CF2", cf2_tasks())] {
        let mut t = Table::new(
            format!("Table II — AI models ({name})"),
            vec!["model".into(), "count".into(), "task".into()],
        );
        let zoo = nnmodel::ModelZoo::pixel7();
        for spec in tasks {
            let kind = zoo
                .get(&spec.model)
                .map(|m| m.kind().abbrev())
                .unwrap_or("?");
            t.row(vec![
                spec.model.clone(),
                spec.count.to_string(),
                kind.to_owned(),
            ]);
        }
        println!("{}", t.render());
    }

    let sc1 = arscene::scenarios::sc1();
    let sc2 = arscene::scenarios::sc2();
    println!(
        "Totals: SC1 = {} objects / {} triangles; SC2 = {} objects / {} triangles",
        sc1.len(),
        sc1.total_max_triangles(),
        sc2.len(),
        sc2.total_max_triangles()
    );
}
