//! Regenerates **Figure 8**: the event-based activation policy (a) against
//! a periodic one (b).
//!
//! Paper protocol (Section V-D): ten virtual objects are placed between
//! t = 0 and t = 255 s, the user steps back around t = 320 s, and the
//! reward `B_t` is monitored every 2 s with trigger bounds +5 % / −10 %.
//! The event-based policy activates for the first placement, for the
//! placements that actually hurt performance (the heavy late objects), and
//! for the distance change — while the periodic policy fires on a timer
//! regardless of need.
//!
//! The two policy studies run concurrently on the deterministic parallel
//! runner (`--threads N` / `HBO_THREADS`).

use hbo_bench::{harness, seeds};
use hbo_core::HboConfig;
use marsim::runner;
use marsim::timeline::{run_activation_study, ActivationTrace, PolicyKind};
use marsim::ScenarioSpec;

/// The Fig. 8 scenario: ten objects placed over the run, with the CF1
/// taskset. The first eight are light props whose additions barely move
/// the render load — "not all object additions significantly impact AI
/// task performance" — while the ninth (a 120 k bust) and the paper's
/// 150 k-triangle tenth push the GPU into the contended regime and should
/// trigger activations.
fn fig8_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::sc1_cf1();
    let prop = arscene::scenarios::CatalogEntry {
        name: "prop",
        count: 8,
        triangles: 8_000,
        params: arscene::QualityParams::new(1.00, -2.20, 1.20, 1.0),
        distance_factor: 1.2,
    };
    let bust = arscene::scenarios::CatalogEntry {
        name: "bust",
        count: 1,
        triangles: 200_000,
        params: arscene::QualityParams::new(0.87, -2.18, 1.31, 1.4),
        distance_factor: 0.9,
    };
    // The paper's tenth object carries 150 k triangles; our simulated GPU
    // sits at a higher congestion knee, so the equivalent "heavy late
    // arrival" needs ~350 k to produce the same relative pressure.
    let statue = arscene::scenarios::CatalogEntry {
        name: "statue",
        count: 1,
        triangles: 350_000,
        params: arscene::QualityParams::new(1.09, -2.83, 1.74, 1.0),
        distance_factor: 0.8,
    };
    // MarApp places pending objects in reverse order (it pops from the
    // back), so list the late heavy arrivals first.
    spec.objects = vec![statue, bust, prop];
    spec.name = "Fig8".to_owned();
    spec
}

fn print_trace(title: &str, trace: &ActivationTrace, total_secs: f64) {
    println!("== {title} ==");
    println!(
        "   placements (O) at: {}",
        trace
            .placements
            .iter()
            .map(|t| format!("{t:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for t in &trace.distance_changes {
        println!("   distance change at: {t:.0}s");
    }
    println!(
        "   activations ({}) at: {}",
        trace.activations.len(),
        trace
            .activations
            .iter()
            .map(|(t, reason)| format!("{t:.0}({reason:?})"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Reward timeline, bucketed for readability.
    let mut line = String::from("   reward: ");
    for s in trace.samples.iter().step_by(4) {
        line += &format!(
            "{}{:+.2} ",
            if s.during_activation { "*" } else { "" },
            s.reward
        );
    }
    println!("{line}");
    let explore: usize = trace.samples.iter().filter(|s| s.during_activation).count();
    println!(
        "   {:.0}% of samples spent exploring (over {total_secs:.0}s)\n",
        100.0 * explore as f64 / trace.samples.len() as f64
    );
}

fn main() {
    let spec = fig8_spec();
    // A trimmed iteration budget keeps each activation's exploration phase
    // proportionate to the paper's timeline (their boxes span ~20-30 s).
    let config = HboConfig {
        n_initial: 3,
        iterations: 7,
        ..HboConfig::default()
    };
    // Object placements spread to t = 255 s; user steps back at t = 320 s.
    let placements: Vec<f64> = (0..10).map(|i| 3.0 + 28.0 * i as f64).collect();
    let distance_change = [(320.0, 3.0)];
    let total = 400.0;

    // Both policy studies share the same scripted timeline and seed, so
    // they are independent jobs: run them concurrently on the runner and
    // print in figure order afterwards.
    let threads = runner::threads_from_args();
    let policies = [
        (
            "Fig. 8a — event-based activation (ours)",
            PolicyKind::EventBased,
        ),
        (
            "Fig. 8b — periodic activation (every 50 s)",
            PolicyKind::Periodic {
                interval_secs: 50.0,
            },
        ),
    ];
    let (traces, report) = runner::run_map("fig8", threads, &policies, |_, (_, policy)| {
        run_activation_study(
            &spec,
            &config,
            *policy,
            &placements,
            &distance_change,
            total,
            seeds::FIG8,
        )
    });
    for ((title, _), trace) in policies.iter().zip(&traces) {
        print_trace(title, trace, total);
    }
    let (event, periodic) = (&traces[0], &traces[1]);

    println!(
        "Paper check: the event policy activates only a handful of times (first\n\
         placement, the late heavy objects, the distance change: {} activations\n\
         measured) while the periodic policy fires {} times regardless of need\n\
         (paper: seven), wasting exploration.",
        event.activations.len(),
        periodic.activations.len()
    );
    harness::emit_runner_report(&report);
}
