//! Walltime benchmarks of the algorithmic kernels HBO runs at every
//! activation: the per-iteration costs the paper's Section IV-D complexity
//! analysis talks about (`O(K³ + MN log(MN) + L log(L))`), plus the
//! substrates (rasterizer, GMSD, decimation, discrete-event simulation).
//!
//! Runs on the in-tree `hbo_bench::harness` (median-of-N walltime, JSON
//! lines on stdout) — no external benchmarking crate.

use bayesopt::SampleSpace;
use hbo_bench::harness::Harness;
use simcore::rand::{SeedableRng, StdRng};
use std::hint::black_box;

/// Seed for every GP/BO fixture below: history growth and the timed call
/// continue one RNG stream, so the timed suggestion always sees the same
/// surrogate state.
const BO_BENCH_SEED: u64 = 7;

/// The HBO joint space: a 3-simplex resource vector `c` plus the triangle
/// ratio `x` — 4-D total. The synthetic cost reads `z[0]` and `z[3]`, so
/// it is only meaningful at exactly this dimensionality.
const HBO_SPACE_DIM: usize = 4;

fn hbo_space() -> bayesopt::space::SimplexBoxSpace {
    let space = bayesopt::space::SimplexBoxSpace::new(3, 0.2, 1.0);
    assert_eq!(
        space.dim(),
        HBO_SPACE_DIM,
        "bench fixture assumes simplex(3) + ratio = 4-D; update the synthetic cost"
    );
    space
}

/// Synthetic cost over the 4-D HBO space: favors low `c₁`, high `x`.
fn synthetic_cost(z: &[f64]) -> f64 {
    assert_eq!(z.len(), HBO_SPACE_DIM, "cost needs a 4-D HBO point");
    z[0] - z[3]
}

/// A BO optimizer grown to `k` observations, together with the RNG stream
/// it was grown under (so the timed call continues the same stream).
fn grown_bo(
    k: usize,
) -> (
    bayesopt::BoOptimizer<bayesopt::space::SimplexBoxSpace>,
    StdRng,
) {
    grown_bo_with(k, bayesopt::BoConfig::default())
}

/// [`grown_bo`] with a custom optimizer config (pruned / warm variants).
fn grown_bo_with(
    k: usize,
    config: bayesopt::BoConfig,
) -> (
    bayesopt::BoOptimizer<bayesopt::space::SimplexBoxSpace>,
    StdRng,
) {
    let mut bo = bayesopt::BoOptimizer::new(hbo_space(), config);
    let mut r = StdRng::seed_from_u64(BO_BENCH_SEED);
    for _ in 0..k {
        let z = bo.suggest(&mut r);
        let cost = synthetic_cost(&z);
        bo.observe(z, cost);
    }
    (bo, r)
}

fn bench_gp(h: &mut Harness) {
    // GP fit at the paper's dataset size (20 observations, 4-D inputs).
    let mut rng = StdRng::seed_from_u64(1);
    let space = hbo_space();
    let points: Vec<Vec<f64>> = (0..21).map(|_| space.sample(&mut rng)).collect();
    h.bench_batched(
        "gp_fit_20x4",
        || {
            let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
            for (i, p) in points.iter().take(20).enumerate() {
                gp.add_observation(p.clone(), (i as f64).sin());
            }
            gp
        },
        |mut gp| gp.fit().unwrap(),
    );
    // Incremental refit: one new observation lands on an already-fitted
    // 20-point surrogate — the factor is extended, not rebuilt.
    h.bench_batched(
        "gp_fit_incremental",
        || {
            let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
            for (i, p) in points.iter().take(20).enumerate() {
                gp.add_observation(p.clone(), (i as f64).sin());
            }
            gp.fit().unwrap();
            gp.add_observation(points[20].clone(), 0.25);
            gp
        },
        |mut gp| gp.fit().unwrap(),
    );
    // Batched posterior over a full acquisition candidate cloud.
    let candidates: Vec<Vec<f64>> = {
        let mut r = StdRng::seed_from_u64(2);
        (0..1280).map(|_| space.sample(&mut r)).collect()
    };
    h.bench_batched(
        "gp_predict_batch_1280",
        || {
            let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
            for (i, p) in points.iter().take(20).enumerate() {
                gp.add_observation(p.clone(), (i as f64).sin());
            }
            gp.fit().unwrap();
            gp
        },
        |mut gp| black_box(gp.predict_batch(&candidates)),
    );
    // Type-II MLE grid search at K = 20: the pairwise-distance cache is
    // shared across all candidate length scales.
    h.bench_batched(
        "fit_length_scale_k20",
        || {
            let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
            for (i, p) in points.iter().take(20).enumerate() {
                gp.add_observation(p.clone(), (i as f64).sin());
            }
            gp
        },
        |mut gp| gp.fit_length_scale(&[0.1, 0.3, 1.0, 3.0]).unwrap(),
    );
    // One full BO suggestion (refit + 1280 candidate generations + scores)
    // on a surrogate grown under the same seed as the timed call.
    h.bench_batched(
        "bo_suggest_k20",
        || grown_bo(20),
        |(mut bo, mut r)| black_box(bo.suggest(&mut r)),
    );
    // The same suggestion with acquisition-bound candidate pruning: most
    // of the 1280 candidates skip the full GP posterior (bit-identical
    // suggestions, pinned by bayesopt's tests).
    h.bench_batched(
        "bo_suggest_pruned_k20",
        || {
            grown_bo_with(
                20,
                bayesopt::BoConfig {
                    prune: true,
                    ..bayesopt::BoConfig::default()
                },
            )
        },
        |(mut bo, mut r)| black_box(bo.suggest(&mut r)),
    );
    // The warm-start steady-state suggestion: the 4×-smaller pruned
    // candidate cloud a cache-seeded session runs with.
    h.bench_batched(
        "bo_suggest_warm_k20",
        || grown_bo_with(20, bayesopt::BoConfig::warm_default()),
        |(mut bo, mut r)| black_box(bo.suggest(&mut r)),
    );
}

fn bench_allocation(h: &mut Harness) {
    let profiles: Vec<hbo_core::TaskProfile> = (0..6)
        .map(|i| {
            hbo_core::TaskProfile::new(
                format!("t{i}"),
                [Some(10.0 + i as f64), Some(20.0 - i as f64), Some(15.0)],
            )
        })
        .collect();
    h.bench("allocate_tasks_m6", || {
        black_box(hbo_core::allocate_tasks(&[0.4, 0.1, 0.5], &profiles))
    });
    let scene = arscene::scenarios::sc1();
    h.bench_batched(
        "td_distribute_sc1",
        || scene.clone(),
        |mut s| s.distribute_triangles(0.72),
    );
}

fn bench_substrates(h: &mut Harness) {
    let mesh = arscene::mesh::Mesh::rock(3, 24, 24);
    h.bench("decimate_rock_1k_to_256", || black_box(mesh.decimate(256)));

    let opts = iqa::RenderOptions {
        resolution: 96,
        ..iqa::RenderOptions::default()
    };
    h.bench("raster_rock_96px", || {
        black_box(iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts))
    });

    let img_a = iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts);
    let coarse = mesh.decimate(200);
    let img_b = iqa::render_mesh(coarse.vertices(), coarse.triangles(), &opts);
    h.bench("gmsd_96px", || black_box(iqa::gmsd(&img_a, &img_b)));

    // DES throughput: one simulated second of the full SC1-CF1 app, once
    // per future-event-list implementation. The heap row keeps the bare
    // historical name so BENCH_kernels.json trajectories stay comparable;
    // `sims_per_wall_sec` is the headline metric (simulated seconds per
    // wall-clock second).
    for queue in [simcore::QueueKind::Heap, simcore::QueueKind::Calendar] {
        let name = match queue {
            simcore::QueueKind::Heap => "socsim_sc1cf1_1s".to_owned(),
            _ => format!("socsim_sc1cf1_1s_{}", queue.name()),
        };
        h.bench_sim(
            &name,
            1.0,
            || {
                let mut app =
                    marsim::MarApp::new(&marsim::ScenarioSpec::sc1_cf1().with_queue(queue));
                app.place_all_objects();
                app
            },
            |mut app| app.run_for_secs(1.0),
        );
    }

    // Tracing overhead on the same one-second SC1-CF1 workload, all three
    // sink configurations in one run so their deltas are same-conditions:
    //
    // * `disabled` — `Tracer::disabled()`, the same path as
    //   `socsim_sc1cf1_1s` above. Their delta is the noise floor; any
    //   eager work sneaking in ahead of an `is_enabled` check shows up
    //   here (EXPERIMENTS.md requires ≤ 2%).
    // * `null` — a sink is installed, so every instrumentation site fires
    //   and builds its record, but `NullSink` discards it: the record-
    //   construction cost alone.
    // * `chrome` — full in-memory buffering of every span/counter.
    // * `agg` — the streaming [`simcore::metrics::AggregatingSink`]:
    //   every event folds into bounded per-series statistics instead of
    //   being buffered, so it must land well below `chrome` (EXPERIMENTS
    //   .md tracks the ratio).
    h.bench_batched(
        "trace_overhead_disabled_1s",
        || {
            let mut app = marsim::MarApp::new_traced(
                &marsim::ScenarioSpec::sc1_cf1(),
                simcore::trace::Tracer::disabled(),
            );
            app.place_all_objects();
            app
        },
        |mut app| app.run_for_secs(1.0),
    );
    h.bench_batched(
        "trace_overhead_null_1s",
        || {
            let mut app = marsim::MarApp::new_traced(
                &marsim::ScenarioSpec::sc1_cf1(),
                simcore::trace::Tracer::new(simcore::trace::NullSink),
            );
            app.place_all_objects();
            app
        },
        |mut app| app.run_for_secs(1.0),
    );
    h.bench_batched(
        "trace_overhead_chrome_1s",
        || {
            let sink = std::rc::Rc::new(std::cell::RefCell::new(
                simcore::trace::ChromeTraceSink::new(),
            ));
            let mut app = marsim::MarApp::new_traced(
                &marsim::ScenarioSpec::sc1_cf1(),
                simcore::trace::Tracer::with_sink(std::rc::Rc::clone(&sink)),
            );
            app.place_all_objects();
            (app, sink)
        },
        |(mut app, sink)| {
            app.run_for_secs(1.0);
            black_box(sink.borrow().len())
        },
    );
    h.bench_batched(
        "trace_overhead_agg_1s",
        || {
            let sink = std::rc::Rc::new(std::cell::RefCell::new(
                simcore::metrics::AggregatingSink::default(),
            ));
            let mut app = marsim::MarApp::new_traced(
                &marsim::ScenarioSpec::sc1_cf1(),
                simcore::trace::Tracer::with_sink(std::rc::Rc::clone(&sink)),
            );
            app.place_all_objects();
            (app, sink)
        },
        |(mut app, sink)| {
            app.run_for_secs(1.0);
            black_box(sink.borrow().snapshot().spans.len())
        },
    );

    // Wireless link + edge server DES: one simulated second of a
    // closed-loop session against a 2-lane server, per queue kind. The
    // 8-client cell is the production shape; the 64-client cell probes
    // the calendar/heap crossover at a ~8× larger event population.
    for clients in [8usize, 64] {
        for queue in [simcore::QueueKind::Heap, simcore::QueueKind::Calendar] {
            let name = match (clients, queue) {
                (8, simcore::QueueKind::Heap) => "edgesim_8c_1s".to_owned(),
                _ => format!("edgesim_{clients}c_1s_{}", queue.name()),
            };
            h.bench_sim(
                &name,
                1.0,
                || {
                    let specs: Vec<edgelink::ClientSpec> = (0..clients)
                        .map(|i| edgelink::ClientSpec::mar_default(format!("c{i}")))
                        .collect();
                    edgelink::EdgeSim::new_traced_with_queue(
                        edgelink::LinkParams::wifi(),
                        edgelink::ServerParams::small(),
                        specs,
                        11,
                        simcore::trace::Tracer::disabled(),
                        queue,
                    )
                },
                |mut sim| {
                    sim.run_for_secs(1.0);
                    black_box(sim.server_counters())
                },
            );
        }
    }

    // Shared-medium radio DES: one simulated second of 32 closed-loop
    // clients contending for one stadium cell, per queue kind. Every
    // flow arrival/departure re-solves the fair-share water-fill over
    // the whole cell, so this measures the progress-based reallocation
    // control plane on top of the edgesim event loop.
    for queue in [simcore::QueueKind::Heap, simcore::QueueKind::Calendar] {
        let name = match queue {
            simcore::QueueKind::Heap => "mediumsim_32c_1s".to_owned(),
            _ => format!("mediumsim_32c_1s_{}", queue.name()),
        };
        h.bench_sim(
            &name,
            1.0,
            || {
                let specs: Vec<edgelink::ClientSpec> = (0..32)
                    .map(|i| edgelink::ClientSpec::mar_default(format!("c{i}")))
                    .collect();
                edgelink::EdgeSim::new_shared_traced_with_queue(
                    edgelink::LinkParams::wifi(),
                    edgelink::ServerParams::small(),
                    edgelink::SharedCell::stadium(),
                    specs,
                    11,
                    simcore::trace::Tracer::disabled(),
                    queue,
                )
            },
            |mut sim| {
                sim.run_for_secs(1.0);
                black_box(sim.server_counters())
            },
        );
    }

    // Fleet-scale cluster DES: one simulated second of a 256-session
    // heterogeneous churning population routed across the fixed
    // four-server cluster by join-shortest-queue, per queue kind. Setup
    // (population synthesis + sim construction) is untimed; the routine
    // measures only the event loop.
    for queue in [simcore::QueueKind::Heap, simcore::QueueKind::Calendar] {
        let name = match queue {
            simcore::QueueKind::Heap => "fleet_256c_1s".to_owned(),
            _ => format!("fleet_256c_1s_{}", queue.name()),
        };
        h.bench_sim(
            &name,
            1.0,
            || {
                let spec = marsim::FleetSpec::mar_default(256).with_queue(queue);
                let sessions = spec.sessions(17);
                let params = marsim::fleet::mar_cluster(
                    edgelink::LinkParams::wifi(),
                    edgelink::RoutePolicy::ShortestQueue,
                );
                edgelink::ClusterSim::new(params, sessions, queue)
            },
            |mut sim| {
                sim.run_for_secs(1.0);
                black_box(sim.metrics().completed())
            },
        );
    }

    // The same 256-session cluster second with the streaming aggregator
    // attached: fleet-scale observability cost with memory bounded by
    // the aggregator's configuration, not by the event count.
    h.bench_sim(
        "fleet_256c_agg_1s",
        1.0,
        || {
            let queue = simcore::QueueKind::Heap;
            let spec = marsim::FleetSpec::mar_default(256).with_queue(queue);
            let sessions = spec.sessions(17);
            let params = marsim::fleet::mar_cluster(
                edgelink::LinkParams::wifi(),
                edgelink::RoutePolicy::ShortestQueue,
            );
            let sink = std::rc::Rc::new(std::cell::RefCell::new(
                simcore::metrics::AggregatingSink::default(),
            ));
            let sim = edgelink::ClusterSim::new_traced(
                params,
                sessions,
                queue,
                simcore::trace::Tracer::with_sink(std::rc::Rc::clone(&sink)),
            );
            (sim, sink)
        },
        |(mut sim, sink)| {
            sim.run_for_secs(1.0);
            black_box((
                sim.metrics().completed(),
                sink.borrow().snapshot().counters.len(),
            ))
        },
    );
}

fn main() {
    let mut gp = Harness::from_args("bayesopt");
    bench_gp(&mut gp);
    let mut core = Harness::from_args("hbo_core");
    bench_allocation(&mut core);
    let mut substrates = Harness::from_args("substrates");
    bench_substrates(&mut substrates);
}
