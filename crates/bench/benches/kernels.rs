//! Criterion benchmarks of the algorithmic kernels HBO runs at every
//! activation: the per-iteration costs the paper's Section IV-D complexity
//! analysis talks about (`O(K³ + MN log(MN) + L log(L))`), plus the
//! substrates (rasterizer, GMSD, decimation, discrete-event simulation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayesopt");
    // GP fit at the paper's dataset size (20 observations, 4-D inputs).
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let space = bayesopt::space::SimplexBoxSpace::new(3, 0.2, 1.0);
    use bayesopt::SampleSpace;
    let points: Vec<Vec<f64>> = (0..20).map(|_| space.sample(&mut rng)).collect();
    group.bench_function("gp_fit_20x4", |b| {
        b.iter_batched(
            || {
                let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
                for (i, p) in points.iter().enumerate() {
                    gp.add_observation(p.clone(), (i as f64).sin());
                }
                gp
            },
            |mut gp| gp.fit().unwrap(),
            BatchSize::SmallInput,
        )
    });
    // One full BO suggestion (fit + 1280 candidate scores).
    group.bench_function("bo_suggest_k20", |b| {
        b.iter_batched(
            || {
                let mut bo = bayesopt::BoOptimizer::new(
                    bayesopt::space::SimplexBoxSpace::new(3, 0.2, 1.0),
                    bayesopt::BoConfig::default(),
                );
                let mut r = rand::rngs::StdRng::seed_from_u64(7);
                for _ in 0..20 {
                    let z = bo.suggest(&mut r);
                    let cost = z[0] - z[3];
                    bo.observe(z, cost);
                }
                (bo, r)
            },
            |(mut bo, mut r)| black_box(bo.suggest(&mut r)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hbo_core");
    let profiles: Vec<hbo_core::TaskProfile> = (0..6)
        .map(|i| {
            hbo_core::TaskProfile::new(
                format!("t{i}"),
                [Some(10.0 + i as f64), Some(20.0 - i as f64), Some(15.0)],
            )
        })
        .collect();
    group.bench_function("allocate_tasks_m6", |b| {
        b.iter(|| black_box(hbo_core::allocate_tasks(&[0.4, 0.1, 0.5], &profiles)))
    });
    let scene = arscene::scenarios::sc1();
    group.bench_function("td_distribute_sc1", |b| {
        b.iter_batched(
            || scene.clone(),
            |mut s| s.distribute_triangles(0.72),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    let mesh = arscene::mesh::Mesh::rock(3, 24, 24);
    group.bench_function("decimate_rock_1k_to_256", |b| {
        b.iter(|| black_box(mesh.decimate(256)))
    });

    let opts = iqa::RenderOptions {
        resolution: 96,
        ..iqa::RenderOptions::default()
    };
    group.bench_function("raster_rock_96px", |b| {
        b.iter(|| black_box(iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts)))
    });

    let img_a = iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts);
    let coarse = mesh.decimate(200);
    let img_b = iqa::render_mesh(coarse.vertices(), coarse.triangles(), &opts);
    group.bench_function("gmsd_96px", |b| {
        b.iter(|| black_box(iqa::gmsd(&img_a, &img_b)))
    });

    // DES throughput: one simulated second of the full SC1-CF1 app.
    group.bench_function("socsim_sc1cf1_1s", |b| {
        b.iter_batched(
            || {
                let mut app = marsim::MarApp::new(&marsim::ScenarioSpec::sc1_cf1());
                app.place_all_objects();
                app
            },
            |mut app| app.run_for_secs(1.0),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_gp, bench_allocation, bench_substrates);
criterion_main!(benches);
