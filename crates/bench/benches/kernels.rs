//! Walltime benchmarks of the algorithmic kernels HBO runs at every
//! activation: the per-iteration costs the paper's Section IV-D complexity
//! analysis talks about (`O(K³ + MN log(MN) + L log(L))`), plus the
//! substrates (rasterizer, GMSD, decimation, discrete-event simulation).
//!
//! Runs on the in-tree `hbo_bench::harness` (median-of-N walltime, JSON
//! lines on stdout) — no external benchmarking crate.

use bayesopt::SampleSpace;
use hbo_bench::harness::Harness;
use simcore::rand::{SeedableRng, StdRng};
use std::hint::black_box;

fn bench_gp(h: &mut Harness) {
    // GP fit at the paper's dataset size (20 observations, 4-D inputs).
    let mut rng = StdRng::seed_from_u64(1);
    let space = bayesopt::space::SimplexBoxSpace::new(3, 0.2, 1.0);
    let points: Vec<Vec<f64>> = (0..20).map(|_| space.sample(&mut rng)).collect();
    h.bench_batched(
        "gp_fit_20x4",
        || {
            let mut gp = bayesopt::GaussianProcess::new(bayesopt::Kernel::paper_default(), 1e-3);
            for (i, p) in points.iter().enumerate() {
                gp.add_observation(p.clone(), (i as f64).sin());
            }
            gp
        },
        |mut gp| gp.fit().unwrap(),
    );
    // One full BO suggestion (fit + 1280 candidate scores).
    h.bench_batched(
        "bo_suggest_k20",
        || {
            let mut bo = bayesopt::BoOptimizer::new(
                bayesopt::space::SimplexBoxSpace::new(3, 0.2, 1.0),
                bayesopt::BoConfig::default(),
            );
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..20 {
                let z = bo.suggest(&mut r);
                let cost = z[0] - z[3];
                bo.observe(z, cost);
            }
            (bo, r)
        },
        |(mut bo, mut r)| black_box(bo.suggest(&mut r)),
    );
}

fn bench_allocation(h: &mut Harness) {
    let profiles: Vec<hbo_core::TaskProfile> = (0..6)
        .map(|i| {
            hbo_core::TaskProfile::new(
                format!("t{i}"),
                [Some(10.0 + i as f64), Some(20.0 - i as f64), Some(15.0)],
            )
        })
        .collect();
    h.bench("allocate_tasks_m6", || {
        black_box(hbo_core::allocate_tasks(&[0.4, 0.1, 0.5], &profiles))
    });
    let scene = arscene::scenarios::sc1();
    h.bench_batched(
        "td_distribute_sc1",
        || scene.clone(),
        |mut s| s.distribute_triangles(0.72),
    );
}

fn bench_substrates(h: &mut Harness) {
    let mesh = arscene::mesh::Mesh::rock(3, 24, 24);
    h.bench("decimate_rock_1k_to_256", || black_box(mesh.decimate(256)));

    let opts = iqa::RenderOptions {
        resolution: 96,
        ..iqa::RenderOptions::default()
    };
    h.bench("raster_rock_96px", || {
        black_box(iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts))
    });

    let img_a = iqa::render_mesh(mesh.vertices(), mesh.triangles(), &opts);
    let coarse = mesh.decimate(200);
    let img_b = iqa::render_mesh(coarse.vertices(), coarse.triangles(), &opts);
    h.bench("gmsd_96px", || black_box(iqa::gmsd(&img_a, &img_b)));

    // DES throughput: one simulated second of the full SC1-CF1 app.
    h.bench_batched(
        "socsim_sc1cf1_1s",
        || {
            let mut app = marsim::MarApp::new(&marsim::ScenarioSpec::sc1_cf1());
            app.place_all_objects();
            app
        },
        |mut app| app.run_for_secs(1.0),
    );
}

fn main() {
    let mut gp = Harness::from_args("bayesopt");
    bench_gp(&mut gp);
    let mut core = Harness::from_args("hbo_core");
    bench_allocation(&mut core);
    let mut substrates = Harness::from_args("substrates");
    bench_substrates(&mut substrates);
}
