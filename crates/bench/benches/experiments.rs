//! Walltime targets that regenerate (trimmed versions of) every table and
//! figure, so `cargo bench` exercises the complete reproduction pipeline.
//! The full-fidelity outputs come from the `src/bin/*` binaries; these
//! benches run reduced budgets to keep `cargo bench` wall time sane while
//! still covering every experiment's code path end to end.
//!
//! Runs on the in-tree `hbo_bench::harness` — no external benchmarking
//! crate.

use hbo_bench::harness::Harness;
use hbo_core::HboConfig;
use marsim::ScenarioSpec;
use std::hint::black_box;

fn quick_config() -> HboConfig {
    HboConfig {
        n_initial: 2,
        iterations: 3,
        ..HboConfig::default()
    }
}

fn table1_isolated(h: &mut Harness) {
    let device = soc::DeviceProfile::pixel7();
    let zoo = nnmodel::ModelZoo::pixel7();
    let model = zoo.get("inception-v1-q").unwrap();
    h.bench("table1_isolated", || {
        black_box(marsim::isolated::isolated_latency(
            &device,
            model,
            nnmodel::Delegate::Nnapi,
        ))
    });
}

fn fig2_contention(h: &mut Harness) {
    let device = soc::DeviceProfile::galaxy_s22();
    let zoo = nnmodel::ModelZoo::galaxy_s22();
    let script = vec![
        marsim::timeline::ScriptPoint {
            at_secs: 0.0,
            event: marsim::timeline::ScriptEvent::StartTask {
                model: "deeplabv3".to_owned(),
                delegate: nnmodel::Delegate::Nnapi,
            },
        },
        marsim::timeline::ScriptPoint {
            at_secs: 2.0,
            event: marsim::timeline::ScriptEvent::SetRenderLoad {
                visible_tris: 400_000.0,
                objects: 5,
            },
        },
    ];
    h.bench("fig2_contention", || {
        black_box(marsim::timeline::run_script(
            &device, &zoo, &script, 6.0, 1.0,
        ))
    });
}

fn fig4_hbo_scenarios(h: &mut Harness) {
    let spec = ScenarioSpec::sc2_cf2();
    let config = quick_config();
    h.bench("fig4_hbo_scenarios", || {
        black_box(marsim::experiment::run_hbo(&spec, &config, 7))
    });
}

fn fig5_baselines(h: &mut Harness) {
    let spec = ScenarioSpec::sc2_cf2();
    let config = quick_config();
    h.bench("fig5_baselines", || {
        black_box(marsim::experiment::compare_baselines(&spec, &config, 7))
    });
}

fn fig6_convergence_detail(h: &mut Harness) {
    let spec = ScenarioSpec::sc1_cf1();
    let config = quick_config();
    h.bench("fig6_convergence_detail", || {
        let run = marsim::experiment::run_hbo(&spec, &config, 6);
        black_box((run.consecutive_distances(), run.best_cost_trace))
    });
}

fn fig7_robustness(h: &mut Harness) {
    let spec = ScenarioSpec::sc2_cf2();
    let config = quick_config();
    h.bench("fig7_robustness", || {
        let costs: Vec<f64> = (0..2)
            .map(|i| {
                marsim::experiment::run_hbo(&spec, &config, 700 + i)
                    .best
                    .cost
            })
            .collect();
        black_box(costs)
    });
}

fn fig8_activation(h: &mut Harness) {
    let spec = ScenarioSpec::sc2_cf1();
    let config = HboConfig {
        n_initial: 1,
        iterations: 1,
        ..HboConfig::default()
    };
    h.bench("fig8_activation", || {
        black_box(marsim::timeline::run_activation_study(
            &spec,
            &config,
            marsim::timeline::PolicyKind::EventBased,
            &[2.0, 10.0],
            &[],
            30.0,
            88,
        ))
    });
}

fn fig9_userstudy(h: &mut Harness) {
    let panel = marsim::userstudy::RaterPanel::of_seven(9);
    let mut scene = arscene::scenarios::sc1();
    scene.distribute_triangles(0.52);
    let q = scene.average_quality();
    h.bench("fig9_userstudy", || black_box(panel.mean_score(q, "bench")));
}

fn main() {
    let mut h = Harness::from_args("experiments").samples(10);
    table1_isolated(&mut h);
    fig2_contention(&mut h);
    fig4_hbo_scenarios(&mut h);
    fig5_baselines(&mut h);
    fig6_convergence_detail(&mut h);
    fig7_robustness(&mut h);
    fig8_activation(&mut h);
    fig9_userstudy(&mut h);
}
