//! Criterion targets that regenerate (trimmed versions of) every table and
//! figure, so `cargo bench` exercises the complete reproduction pipeline.
//! The full-fidelity outputs come from the `src/bin/*` binaries; these
//! benches run reduced budgets to keep `cargo bench` wall time sane while
//! still covering every experiment's code path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use hbo_core::HboConfig;
use marsim::ScenarioSpec;
use std::hint::black_box;

fn quick_config() -> HboConfig {
    HboConfig {
        n_initial: 2,
        iterations: 3,
        ..HboConfig::default()
    }
}

fn table1_isolated(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1_isolated", |b| {
        let device = soc::DeviceProfile::pixel7();
        let zoo = nnmodel::ModelZoo::pixel7();
        let model = zoo.get("inception-v1-q").unwrap();
        b.iter(|| {
            black_box(marsim::isolated::isolated_latency(
                &device,
                model,
                nnmodel::Delegate::Nnapi,
            ))
        })
    });
    g.finish();
}

fn fig2_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig2_contention", |b| {
        let device = soc::DeviceProfile::galaxy_s22();
        let zoo = nnmodel::ModelZoo::galaxy_s22();
        let script = vec![
            marsim::timeline::ScriptPoint {
                at_secs: 0.0,
                event: marsim::timeline::ScriptEvent::StartTask {
                    model: "deeplabv3".to_owned(),
                    delegate: nnmodel::Delegate::Nnapi,
                },
            },
            marsim::timeline::ScriptPoint {
                at_secs: 2.0,
                event: marsim::timeline::ScriptEvent::SetRenderLoad {
                    visible_tris: 400_000.0,
                    objects: 5,
                },
            },
        ];
        b.iter(|| black_box(marsim::timeline::run_script(&device, &zoo, &script, 6.0, 1.0)))
    });
    g.finish();
}

fn fig4_hbo_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig4_hbo_scenarios", |b| {
        let spec = ScenarioSpec::sc2_cf2();
        let config = quick_config();
        b.iter(|| black_box(marsim::experiment::run_hbo(&spec, &config, 7)))
    });
    g.finish();
}

fn fig5_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig5_baselines", |b| {
        let spec = ScenarioSpec::sc2_cf2();
        let config = quick_config();
        b.iter(|| black_box(marsim::experiment::compare_baselines(&spec, &config, 7)))
    });
    g.finish();
}

fn fig6_convergence_detail(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig6_convergence_detail", |b| {
        let spec = ScenarioSpec::sc1_cf1();
        let config = quick_config();
        b.iter(|| {
            let run = marsim::experiment::run_hbo(&spec, &config, 6);
            black_box((run.consecutive_distances(), run.best_cost_trace))
        })
    });
    g.finish();
}

fn fig7_robustness(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig7_robustness", |b| {
        let spec = ScenarioSpec::sc2_cf2();
        let config = quick_config();
        b.iter(|| {
            let costs: Vec<f64> = (0..2)
                .map(|i| marsim::experiment::run_hbo(&spec, &config, 700 + i).best.cost)
                .collect();
            black_box(costs)
        })
    });
    g.finish();
}

fn fig8_activation(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig8_activation", |b| {
        let spec = ScenarioSpec::sc2_cf1();
        let config = HboConfig {
            n_initial: 1,
            iterations: 1,
            ..HboConfig::default()
        };
        b.iter(|| {
            black_box(marsim::timeline::run_activation_study(
                &spec,
                &config,
                marsim::timeline::PolicyKind::EventBased,
                &[2.0, 10.0],
                &[],
                30.0,
                88,
            ))
        })
    });
    g.finish();
}

fn fig9_userstudy(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.bench_function("fig9_userstudy", |b| {
        let panel = marsim::userstudy::RaterPanel::of_seven(9);
        let mut scene = arscene::scenarios::sc1();
        scene.distribute_triangles(0.52);
        let q = scene.average_quality();
        b.iter(|| black_box(panel.mean_score(q, "bench")))
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_isolated,
    fig2_contention,
    fig4_hbo_scenarios,
    fig5_baselines,
    fig6_convergence_detail,
    fig7_robustness,
    fig8_activation,
    fig9_userstudy
);
criterion_main!(benches);
