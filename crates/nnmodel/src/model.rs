//! Model descriptions and delegate execution plans.

use simcore::SimDuration;
use soc::{DeviceProfile, SocProcs, Stage, StageSeq};

use crate::delegate::{Delegate, TaskKind};

/// Structure of a model's NNAPI execution: how its compute splits between
/// the NPU and the GPU-fallback path.
///
/// The paper's footnote 2: *"For tasks running on NNAPI, certain operators
/// not supported on NPU or TPU may run on GPU, further increasing GPU's
/// demand."* The fraction is what couples NNAPI-allocated tasks to the
/// render load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnapiStructure {
    /// Fraction of NNAPI compute served by the NPU (`1.0` = fully
    /// supported model, `0.0` = full GPU fallback).
    pub npu_fraction: f64,
    /// Number of NPU/GPU alternations the partitioner produces.
    pub segments: usize,
}

impl NnapiStructure {
    /// Creates a structure.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]` or `segments == 0`.
    pub fn new(npu_fraction: f64, segments: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&npu_fraction),
            "npu_fraction out of range: {npu_fraction}"
        );
        assert!(segments > 0, "need at least one segment");
        NnapiStructure {
            npu_fraction,
            segments,
        }
    }
}

/// A calibrated AI model: measured isolated latencies per delegate plus
/// NNAPI partition structure. Construct via [`Model::new`] or take one from
/// [`crate::ModelZoo`].
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    kind: TaskKind,
    /// Isolated latency (ms) per delegate, `None` = incompatible (NA).
    latency_ms: [Option<f64>; Delegate::COUNT],
    nnapi: NnapiStructure,
}

impl Model {
    /// Creates a model from its Table I row.
    ///
    /// `gpu`, `nnapi`, `cpu` are the isolated latencies in milliseconds;
    /// `None` marks an incompatible delegate (NA in the table).
    ///
    /// # Panics
    ///
    /// Panics if every delegate is NA, or any latency is not positive.
    pub fn new(
        name: impl Into<String>,
        kind: TaskKind,
        gpu: Option<f64>,
        nnapi: Option<f64>,
        cpu: Option<f64>,
        nnapi_structure: NnapiStructure,
    ) -> Self {
        let latency_ms = {
            let mut l = [None; Delegate::COUNT];
            l[Delegate::Cpu.index()] = cpu;
            l[Delegate::Gpu.index()] = gpu;
            l[Delegate::Nnapi.index()] = nnapi;
            l
        };
        assert!(
            latency_ms.iter().any(Option::is_some),
            "model must support at least one delegate"
        );
        for l in latency_ms.iter().flatten() {
            assert!(l.is_finite() && *l > 0.0, "invalid latency: {l}");
        }
        Model {
            name: name.into(),
            kind,
            latency_ms,
            nnapi: nnapi_structure,
        }
    }

    /// The model's name as used in the paper.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model's task kind.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Isolated latency on `delegate` in milliseconds, `None` if NA.
    pub fn isolated_ms(&self, delegate: Delegate) -> Option<f64> {
        self.latency_ms[delegate.index()]
    }

    /// True if the model can run on `delegate`.
    pub fn supports(&self, delegate: Delegate) -> bool {
        self.isolated_ms(delegate).is_some()
    }

    /// The delegates this model supports, in resource-index order.
    pub fn supported_delegates(&self) -> impl Iterator<Item = Delegate> + '_ {
        Delegate::ALL.into_iter().filter(|d| self.supports(*d))
    }

    /// The delegate with the lowest isolated latency and that latency —
    /// the "static affinity" the paper's SMQ/SML baselines allocate to, and
    /// the `τ^e` reference of Eq. (4).
    pub fn best_delegate(&self) -> (Delegate, f64) {
        Delegate::ALL
            .into_iter()
            .filter_map(|d| self.isolated_ms(d).map(|l| (d, l)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("model supports at least one delegate")
    }

    /// The NNAPI partition structure.
    pub fn nnapi_structure(&self) -> NnapiStructure {
        self.nnapi
    }

    /// Lowers `(self, delegate)` to a stage sequence for the simulated SoC,
    /// calibrated so the sequence's nominal (isolated) latency equals
    /// [`Model::isolated_ms`]. Returns `None` if the delegate is NA.
    ///
    /// Plan shapes:
    ///
    /// * **CPU** — one compute stage occupying a CPU slot.
    /// * **GPU** — input/output copies (contention-free delays) around one
    ///   GPU compute stage.
    /// * **NNAPI** — copies around alternating NPU / GPU-fallback stages
    ///   according to [`NnapiStructure`].
    ///
    /// `Edge` never has an on-device plan: edge offload runs through the
    /// `edgelink` wireless-link/edge-server simulation, not the SoC, so
    /// this returns `None` for it (models never record an on-device
    /// latency for the edge delegate).
    pub fn plan(
        &self,
        delegate: Delegate,
        device: &DeviceProfile,
        procs: SocProcs,
    ) -> Option<StageSeq> {
        let total_ms = self.isolated_ms(delegate)?;
        let copy = device.copy_ms.min(total_ms / 4.0);
        let stages = match delegate {
            Delegate::Cpu => vec![Stage::compute(
                procs.cpu,
                SimDuration::from_millis_f64(total_ms),
            )],
            Delegate::Gpu => vec![
                Stage::delay(SimDuration::from_millis_f64(copy)),
                Stage::compute(
                    procs.gpu,
                    SimDuration::from_millis_f64(total_ms - 2.0 * copy),
                ),
                Stage::delay(SimDuration::from_millis_f64(copy)),
            ],
            Delegate::Nnapi => {
                let compute = total_ms - 2.0 * copy;
                let npu_total = compute * self.nnapi.npu_fraction;
                let gpu_total = compute - npu_total;
                let mut stages = vec![Stage::delay(SimDuration::from_millis_f64(copy))];
                let segs = self.nnapi.segments;
                for _ in 0..segs {
                    if npu_total > 0.0 {
                        stages.push(Stage::compute(
                            procs.npu,
                            SimDuration::from_millis_f64(npu_total / segs as f64),
                        ));
                    }
                    if gpu_total > 0.0 {
                        stages.push(Stage::compute(
                            procs.gpu,
                            SimDuration::from_millis_f64(gpu_total / segs as f64),
                        ));
                    }
                }
                stages.push(Stage::delay(SimDuration::from_millis_f64(copy)));
                stages
            }
            // Unreachable: models never record an isolated latency for
            // Edge, so `isolated_ms` above already returned `None`.
            Delegate::Edge => return None,
        };
        Some(StageSeq::new(stages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Model {
        Model::new(
            "sample",
            TaskKind::ImageClassification,
            Some(30.0),
            Some(10.0),
            Some(40.0),
            NnapiStructure::new(0.8, 2),
        )
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.name(), "sample");
        assert_eq!(m.kind(), TaskKind::ImageClassification);
        assert_eq!(m.isolated_ms(Delegate::Gpu), Some(30.0));
        assert!(m.supports(Delegate::Cpu));
        assert_eq!(m.supported_delegates().count(), 3);
    }

    #[test]
    fn best_delegate_picks_minimum() {
        let (d, l) = sample().best_delegate();
        assert_eq!(d, Delegate::Nnapi);
        assert_eq!(l, 10.0);
    }

    #[test]
    fn na_delegates_have_no_plan() {
        let m = Model::new(
            "na-nnapi",
            TaskKind::ImageSegmentation,
            Some(20.0),
            None,
            Some(60.0),
            NnapiStructure::new(0.5, 1),
        );
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        assert!(m.plan(Delegate::Nnapi, &dev, procs).is_none());
        assert!(!m.supports(Delegate::Nnapi));
        assert_eq!(m.best_delegate().0, Delegate::Gpu);
    }

    #[test]
    fn plans_preserve_nominal_latency() {
        let m = sample();
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        for d in m.supported_delegates().collect::<Vec<_>>() {
            let plan = m.plan(d, &dev, procs).unwrap();
            let nominal = plan.nominal_total().as_millis_f64();
            let target = m.isolated_ms(d).unwrap();
            assert!(
                (nominal - target).abs() < 1e-6,
                "{d}: nominal {nominal} != target {target}"
            );
        }
    }

    #[test]
    fn nnapi_plan_touches_npu_and_gpu() {
        let m = sample();
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let plan = m.plan(Delegate::Nnapi, &dev, procs).unwrap();
        let mut on_npu = 0.0;
        let mut on_gpu = 0.0;
        for s in plan.stages() {
            if let Stage::Compute { proc, work } = s {
                if *proc == procs.npu {
                    on_npu += work.as_millis_f64();
                } else if *proc == procs.gpu {
                    on_gpu += work.as_millis_f64();
                }
            }
        }
        assert!(on_npu > 0.0 && on_gpu > 0.0);
        // 80/20 split of the compute portion.
        assert!((on_npu / (on_npu + on_gpu) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fully_supported_nnapi_model_never_touches_gpu() {
        let m = Model::new(
            "pure-npu",
            TaskKind::ImageClassification,
            Some(30.0),
            Some(8.0),
            Some(35.0),
            NnapiStructure::new(1.0, 3),
        );
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let plan = m.plan(Delegate::Nnapi, &dev, procs).unwrap();
        assert!(plan.stages().iter().all(|s| match s {
            Stage::Compute { proc, .. } => *proc != procs.gpu,
            Stage::Delay { .. } => true,
        }));
    }

    #[test]
    fn copies_shrink_for_tiny_models() {
        // A 1 ms model cannot afford 2 x 0.5 ms copies; the plan clamps
        // them to keep compute positive.
        let m = Model::new(
            "tiny",
            TaskKind::DigitClassification,
            Some(1.0),
            Some(1.0),
            Some(1.0),
            NnapiStructure::new(0.5, 1),
        );
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        for d in m.supported_delegates().collect::<Vec<_>>() {
            let plan = m.plan(d, &dev, procs).unwrap();
            assert!((plan.nominal_total().as_millis_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one delegate")]
    fn all_na_panics() {
        Model::new(
            "bad",
            TaskKind::ImageClassification,
            None,
            None,
            None,
            NnapiStructure::new(0.5, 1),
        );
    }

    #[test]
    #[should_panic(expected = "npu_fraction out of range")]
    fn bad_fraction_panics() {
        NnapiStructure::new(1.5, 1);
    }
}
