//! The calibrated model zoos: Table I of the paper plus the `mnist` digit
//! classifier used by the scenario tasksets.

use crate::delegate::TaskKind;
use crate::model::{Model, NnapiStructure};

/// A collection of calibrated models for one device.
///
/// # Example
///
/// ```
/// use nnmodel::{Delegate, ModelZoo};
///
/// let zoo = ModelZoo::galaxy_s22();
/// // Table I row: deeplabv3 on the S22 — 45 / 27 / 46 ms.
/// let m = zoo.get("deeplabv3").unwrap();
/// assert_eq!(m.isolated_ms(Delegate::Gpu), Some(45.0));
/// assert_eq!(m.isolated_ms(Delegate::Nnapi), Some(27.0));
/// assert_eq!(m.isolated_ms(Delegate::Cpu), Some(46.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelZoo {
    device: String,
    models: Vec<Model>,
}

impl ModelZoo {
    /// The zoo calibrated to the Samsung Galaxy S22 column of Table I.
    ///
    /// NNAPI structures (NPU share of compute / partition segments) are
    /// chosen from the affinity pattern: models much faster on NNAPI than
    /// on the GPU delegate are well supported by the NPU; `model-metadata`,
    /// which is *slower* on NNAPI than on the GPU, falls back heavily.
    pub fn galaxy_s22() -> Self {
        use TaskKind::*;
        let s = NnapiStructure::new;
        let models = vec![
            //          name                 kind  GPU        NNAPI       CPU        nnapi structure
            Model::new(
                "deconv-munet",
                ImageSegmentation,
                Some(18.0),
                Some(33.0),
                Some(58.0),
                s(0.55, 2),
            ),
            Model::new(
                "deeplabv3",
                ImageSegmentation,
                Some(45.0),
                Some(27.0),
                Some(46.0),
                s(0.70, 2),
            ),
            Model::new(
                "efficientdet-lite",
                ObjectDetection,
                Some(72.0),
                None,
                Some(68.0),
                s(0.5, 1),
            ),
            Model::new(
                "mobilenetDetv1",
                ObjectDetection,
                Some(38.0),
                Some(13.0),
                Some(38.0),
                s(0.95, 2),
            ),
            Model::new(
                "efficientclass-lite0",
                ImageClassification,
                Some(28.0),
                Some(10.0),
                Some(29.0),
                s(0.95, 2),
            ),
            Model::new(
                "inception-v1-q",
                ImageClassification,
                Some(28.0),
                Some(8.0),
                Some(36.0),
                s(0.97, 1),
            ),
            Model::new(
                "mobilenet-v1",
                ImageClassification,
                Some(26.0),
                Some(9.5),
                Some(28.0),
                s(0.95, 1),
            ),
            Model::new(
                "model-metadata",
                GestureDetection,
                Some(12.7),
                Some(18.0),
                Some(14.0),
                s(0.25, 2),
            ),
            Model::new(
                "mnist",
                DigitClassification,
                Some(5.5),
                Some(6.5),
                Some(6.0),
                s(0.60, 1),
            ),
        ];
        ModelZoo {
            device: "Samsung Galaxy S22".to_owned(),
            models,
        }
    }

    /// The zoo calibrated to the Google Pixel 7 column of Table I — the
    /// main evaluation device. The Pixel 7's NNAPI rejects the two image
    /// segmentation models and efficientdet (NA in the table).
    pub fn pixel7() -> Self {
        use TaskKind::*;
        let s = NnapiStructure::new;
        let models = vec![
            Model::new(
                "deconv-munet",
                ImageSegmentation,
                Some(17.9),
                None,
                Some(65.9),
                s(0.5, 1),
            ),
            Model::new(
                "deeplabv3",
                ImageSegmentation,
                Some(136.6),
                None,
                Some(110.1),
                s(0.5, 1),
            ),
            Model::new(
                "efficientdet-lite",
                ObjectDetection,
                Some(109.8),
                None,
                Some(97.3),
                s(0.5, 1),
            ),
            Model::new(
                "mobilenetDetv1",
                ObjectDetection,
                Some(56.5),
                Some(18.1),
                Some(48.9),
                s(0.95, 2),
            ),
            Model::new(
                "efficientclass-lite0",
                ImageClassification,
                Some(43.37),
                Some(18.3),
                Some(41.5),
                s(0.95, 2),
            ),
            Model::new(
                "inception-v1-q",
                ImageClassification,
                Some(60.8),
                Some(8.7),
                Some(63.2),
                s(0.97, 1),
            ),
            Model::new(
                "mobilenet-v1",
                ImageClassification,
                Some(37.1),
                Some(10.2),
                Some(40.5),
                s(0.95, 1),
            ),
            Model::new(
                "model-metadata",
                GestureDetection,
                Some(24.6),
                Some(40.7),
                Some(25.5),
                s(0.25, 2),
            ),
            Model::new(
                "mnist",
                DigitClassification,
                Some(5.0),
                Some(6.5),
                Some(5.5),
                s(0.60, 1),
            ),
        ];
        ModelZoo {
            device: "Google Pixel 7".to_owned(),
            models,
        }
    }

    /// The zoo for the device named in a [`soc::DeviceProfile`].
    ///
    /// # Panics
    ///
    /// Panics for unknown device names.
    pub fn for_device(device_name: &str) -> Self {
        match device_name {
            "Google Pixel 7" => Self::pixel7(),
            "Samsung Galaxy S22" => Self::galaxy_s22(),
            other => panic!("no calibrated zoo for device {other:?}"),
        }
    }

    /// The device this zoo is calibrated for.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&Model> {
        self.models.iter().find(|m| m.name() == name)
    }

    /// Iterates over the models in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = &Model> {
        self.models.iter()
    }

    /// Number of models in the zoo.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True if the zoo is empty (never, for the built-in zoos).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegate::Delegate;

    #[test]
    fn both_zoos_have_nine_models() {
        assert_eq!(ModelZoo::galaxy_s22().len(), 9);
        assert_eq!(ModelZoo::pixel7().len(), 9);
    }

    #[test]
    fn pixel7_na_entries_match_table1() {
        let zoo = ModelZoo::pixel7();
        for name in ["deconv-munet", "deeplabv3", "efficientdet-lite"] {
            assert!(
                !zoo.get(name).unwrap().supports(Delegate::Nnapi),
                "{name} should be NA on Pixel 7 NNAPI"
            );
        }
        assert!(zoo.get("mobilenetDetv1").unwrap().supports(Delegate::Nnapi));
    }

    #[test]
    fn s22_na_entries_match_table1() {
        let zoo = ModelZoo::galaxy_s22();
        assert!(!zoo
            .get("efficientdet-lite")
            .unwrap()
            .supports(Delegate::Nnapi));
    }

    #[test]
    fn cf1_affinities_match_section_vb() {
        // Section V-B (Pixel 7): in CF1 three tasks are GPU-preferred
        // (mnist, model-metadata x2) and three NNAPI-preferred.
        let zoo = ModelZoo::pixel7();
        for name in ["mnist", "model-metadata"] {
            assert_eq!(
                zoo.get(name).unwrap().best_delegate().0,
                Delegate::Gpu,
                "{name}"
            );
        }
        for name in ["mobilenetDetv1", "mobilenet-v1", "efficientclass-lite0"] {
            assert_eq!(
                zoo.get(name).unwrap().best_delegate().0,
                Delegate::Nnapi,
                "{name}"
            );
        }
    }

    #[test]
    fn s22_deeplab_prefers_nnapi() {
        // Section III-B: "on the S22 Deeplabv3 … has a higher affinity with
        // NNAPI".
        let zoo = ModelZoo::galaxy_s22();
        assert_eq!(
            zoo.get("deeplabv3").unwrap().best_delegate().0,
            Delegate::Nnapi
        );
        // "model-metadata and deconv-munet show better affinity with GPU".
        assert_eq!(
            zoo.get("deconv-munet").unwrap().best_delegate().0,
            Delegate::Gpu
        );
        assert_eq!(
            zoo.get("model-metadata").unwrap().best_delegate().0,
            Delegate::Gpu
        );
    }

    #[test]
    fn for_device_dispatches() {
        assert_eq!(
            ModelZoo::for_device("Google Pixel 7").device(),
            "Google Pixel 7"
        );
        assert_eq!(
            ModelZoo::for_device("Samsung Galaxy S22").device(),
            "Samsung Galaxy S22"
        );
    }

    #[test]
    #[should_panic(expected = "no calibrated zoo")]
    fn unknown_device_panics() {
        ModelZoo::for_device("Nokia 3310");
    }

    #[test]
    fn mnist_latencies_are_similar_everywhere() {
        // Section V-D: mnist "has similar latencies across all resources".
        for zoo in [ModelZoo::pixel7(), ModelZoo::galaxy_s22()] {
            let m = zoo.get("mnist").unwrap();
            let ls: Vec<f64> = Delegate::ALL
                .into_iter()
                .filter_map(|d| m.isolated_ms(d))
                .collect();
            let max = ls.iter().cloned().fold(f64::MIN, f64::max);
            let min = ls.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min < 1.5);
        }
    }
}
