//! Delegates (allocatable resources) and AI task kinds.

/// An allocation choice for an AI task, matching the paper's three
/// resources: plain CPU inference, the GPU delegate (all operators on the
/// GPU), and the NNAPI delegate (operators split across NPU and GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Delegate {
    /// Multi-threaded CPU inference.
    Cpu,
    /// TFLite GPU delegate: every operator runs on the GPU.
    Gpu,
    /// Android NNAPI: supported operators on the NPU/TPU, the rest falling
    /// back to the GPU.
    Nnapi,
}

impl Delegate {
    /// All delegates, in resource-index order (`N = 3` in the paper).
    pub const ALL: [Delegate; 3] = [Delegate::Cpu, Delegate::Gpu, Delegate::Nnapi];

    /// Number of allocatable resources.
    pub const COUNT: usize = 3;

    /// The resource index used by HBO's `c` vector (0 = CPU, 1 = GPU,
    /// 2 = NNAPI).
    pub fn index(self) -> usize {
        match self {
            Delegate::Cpu => 0,
            Delegate::Gpu => 1,
            Delegate::Nnapi => 2,
        }
    }

    /// Inverse of [`Delegate::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn from_index(index: usize) -> Delegate {
        Delegate::ALL[index]
    }

    /// Short label used in the paper's figures (`C`, `G`, `N`).
    pub fn letter(self) -> char {
        match self {
            Delegate::Cpu => 'C',
            Delegate::Gpu => 'G',
            Delegate::Nnapi => 'N',
        }
    }
}

impl std::fmt::Display for Delegate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Delegate::Cpu => "CPU",
            Delegate::Gpu => "GPU",
            Delegate::Nnapi => "NNAPI",
        };
        f.write_str(s)
    }
}

/// The category of an AI task, as listed in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// IS — semantic image segmentation.
    ImageSegmentation,
    /// OD — object detection.
    ObjectDetection,
    /// IC — image classification.
    ImageClassification,
    /// GD — gesture detection.
    GestureDetection,
    /// Digit classification (mnist, used in scenarios CF1/CF2).
    DigitClassification,
}

impl TaskKind {
    /// Table I's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            TaskKind::ImageSegmentation => "IS",
            TaskKind::ObjectDetection => "OD",
            TaskKind::ImageClassification => "IC",
            TaskKind::GestureDetection => "GD",
            TaskKind::DigitClassification => "DC",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for d in Delegate::ALL {
            assert_eq!(Delegate::from_index(d.index()), d);
        }
    }

    #[test]
    fn letters_match_figures() {
        assert_eq!(Delegate::Cpu.letter(), 'C');
        assert_eq!(Delegate::Gpu.letter(), 'G');
        assert_eq!(Delegate::Nnapi.letter(), 'N');
    }

    #[test]
    fn display_names() {
        assert_eq!(Delegate::Nnapi.to_string(), "NNAPI");
        assert_eq!(TaskKind::ImageSegmentation.to_string(), "IS");
    }

    #[test]
    #[should_panic]
    fn bad_index_panics() {
        Delegate::from_index(3);
    }
}
