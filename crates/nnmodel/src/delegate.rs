//! Delegates (allocatable resources) and AI task kinds.

/// An allocation choice for an AI task: the paper's three on-device
/// resources — plain CPU inference, the GPU delegate (all operators on the
/// GPU), and the NNAPI delegate (operators split across NPU and GPU) —
/// plus the edge-offload target added by the `edgelink` extension (the
/// task's tensors are shipped over the wireless link and inferred on a
/// shared edge server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Delegate {
    /// Multi-threaded CPU inference.
    Cpu,
    /// TFLite GPU delegate: every operator runs on the GPU.
    Gpu,
    /// Android NNAPI: supported operators on the NPU/TPU, the rest falling
    /// back to the GPU.
    Nnapi,
    /// Offload to the shared edge inference server over the wireless link
    /// (uplink serialization + queueing + inference + downlink).
    Edge,
}

impl Delegate {
    /// All delegates, in resource-index order. The paper's `N = 3`
    /// on-device resources come first; `Edge` is appended at index 3 so
    /// every existing 3-resource code path keeps its indices.
    pub const ALL: [Delegate; 4] = [
        Delegate::Cpu,
        Delegate::Gpu,
        Delegate::Nnapi,
        Delegate::Edge,
    ];

    /// Number of allocatable resources (including the edge tier).
    pub const COUNT: usize = 4;

    /// The resource index used by HBO's `c` vector (0 = CPU, 1 = GPU,
    /// 2 = NNAPI, 3 = Edge).
    pub fn index(self) -> usize {
        match self {
            Delegate::Cpu => 0,
            Delegate::Gpu => 1,
            Delegate::Nnapi => 2,
            Delegate::Edge => 3,
        }
    }

    /// Inverse of [`Delegate::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Delegate {
        Delegate::ALL[index]
    }

    /// Short label used in the paper's figures (`C`, `G`, `N`), extended
    /// with `E` for the edge tier.
    pub fn letter(self) -> char {
        match self {
            Delegate::Cpu => 'C',
            Delegate::Gpu => 'G',
            Delegate::Nnapi => 'N',
            Delegate::Edge => 'E',
        }
    }
}

impl std::fmt::Display for Delegate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Delegate::Cpu => "CPU",
            Delegate::Gpu => "GPU",
            Delegate::Nnapi => "NNAPI",
            Delegate::Edge => "EDGE",
        };
        f.write_str(s)
    }
}

/// The category of an AI task, as listed in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// IS — semantic image segmentation.
    ImageSegmentation,
    /// OD — object detection.
    ObjectDetection,
    /// IC — image classification.
    ImageClassification,
    /// GD — gesture detection.
    GestureDetection,
    /// Digit classification (mnist, used in scenarios CF1/CF2).
    DigitClassification,
}

impl TaskKind {
    /// Table I's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            TaskKind::ImageSegmentation => "IS",
            TaskKind::ObjectDetection => "OD",
            TaskKind::ImageClassification => "IC",
            TaskKind::GestureDetection => "GD",
            TaskKind::DigitClassification => "DC",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for d in Delegate::ALL {
            assert_eq!(Delegate::from_index(d.index()), d);
        }
    }

    #[test]
    fn letters_match_figures() {
        assert_eq!(Delegate::Cpu.letter(), 'C');
        assert_eq!(Delegate::Gpu.letter(), 'G');
        assert_eq!(Delegate::Nnapi.letter(), 'N');
        assert_eq!(Delegate::Edge.letter(), 'E');
    }

    #[test]
    fn display_names() {
        assert_eq!(Delegate::Nnapi.to_string(), "NNAPI");
        assert_eq!(Delegate::Edge.to_string(), "EDGE");
        assert_eq!(TaskKind::ImageSegmentation.to_string(), "IS");
    }

    #[test]
    #[should_panic]
    fn bad_index_panics() {
        Delegate::from_index(4);
    }
}
