//! AI model substrate: the TFLite stand-in.
//!
//! The paper treats each AI model as a black box whose isolated latency on
//! each *delegate* (CPU, GPU delegate, NNAPI delegate) was measured on real
//! phones — Table I. This crate reproduces that black box:
//!
//! * [`Model`] carries the measured isolated latencies per [`Delegate`]
//!   (with `NA` entries preserved — some models are incompatible with some
//!   delegates) plus the *structure* of its NNAPI execution: the fraction
//!   of compute the NPU supports, with unsupported operators falling back
//!   to the GPU (footnote 2 of the paper).
//! * [`Model::plan`] lowers a (model, delegate) pair to a [`soc::StageSeq`]
//!   whose **isolated** latency on the simulated SoC exactly matches the
//!   Table I number, while its **contended** latency emerges from queueing
//!   (the phenomenon in Fig. 2).
//! * [`ModelZoo`] holds the calibrated zoos for the Galaxy S22 and Pixel 7,
//!   including the `mnist` digit classifier used by the paper's scenarios.
//!
//! # Example
//!
//! ```
//! use nnmodel::{Delegate, ModelZoo};
//!
//! let zoo = ModelZoo::pixel7();
//! let m = zoo.get("inception-v1-q").unwrap();
//! assert_eq!(m.isolated_ms(Delegate::Nnapi), Some(8.7));
//! assert_eq!(m.best_delegate().0, Delegate::Nnapi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delegate;
mod model;
pub mod ops;
mod zoo;

pub use delegate::{Delegate, TaskKind};
pub use model::{Model, NnapiStructure};
pub use ops::{fine_grained_plan, FineGrainedPlan, OpGraph, OpKind, OpPlacement, Operator};
pub use zoo::ModelZoo;
