//! Operator-level model graphs and the fine-grained per-operator
//! scheduler that the paper argues against.
//!
//! Section II: *"rather than allocating each AI operation (fine-grain), we
//! choose a coarser-grained solution … due to inter-processor
//! communication delays and inefficiencies, the delegate/CPU allocation
//! choice that maximizes the AI performance still highly depends on the
//! specific AI model and SoC … finding the allocation for each one of the
//! AI tasks' operations jointly to triangle count manipulation makes the
//! problem too complex to solve rapidly."*
//!
//! This module makes that argument testable: every zoo model exposes a
//! synthesized [`OpGraph`] (a linear chain of operators with per-op
//! compute fractions and NPU-support flags consistent with the model's
//! [`crate::NnapiStructure`]), and [`fine_grained_plan`] implements the
//! BAND-style greedy scheduler — each operator on its individually fastest
//! compatible processor, paying a copy penalty at every processor
//! transition. The `finegrained` experiment then shows where the greedy
//! per-op choice wins (isolation) and where it collapses (under render
//! load, which it cannot see).

use simcore::SimDuration;
use soc::{DeviceProfile, SocProcs, Stage, StageSeq};

use crate::delegate::Delegate;
use crate::model::Model;

/// The kind of a neural-network operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// 2-D convolution (the bulk of vision-model compute).
    Conv2d,
    /// Depthwise separable convolution.
    DepthwiseConv,
    /// Pooling (max/avg).
    Pool,
    /// Fully connected / matmul.
    FullyConnected,
    /// Elementwise activation.
    Activation,
    /// Normalization (batch/layer).
    Normalization,
    /// Model-specific post-processing (NMS, argmax decode, …) — the ops
    /// that typically lack NPU kernels.
    PostProcess,
}

impl OpKind {
    fn cycle() -> [OpKind; 6] {
        [
            OpKind::Conv2d,
            OpKind::DepthwiseConv,
            OpKind::Pool,
            OpKind::Conv2d,
            OpKind::Normalization,
            OpKind::Activation,
        ]
    }
}

/// One operator of a model graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Stable name, e.g. `conv_3`.
    pub name: String,
    /// Operator kind.
    pub kind: OpKind,
    /// Fraction of the model's total compute this operator accounts for
    /// (all fractions sum to 1).
    pub work_fraction: f64,
    /// Whether the NPU has a kernel for this operator.
    pub npu_supported: bool,
}

/// A linear operator chain (mobile vision models are predominantly
/// sequential; branches are folded into their join order).
#[derive(Debug, Clone, PartialEq)]
pub struct OpGraph {
    ops: Vec<Operator>,
}

impl OpGraph {
    /// Synthesizes the operator graph of a zoo model: `n_ops` operators
    /// whose NPU-supported compute share equals the model's calibrated
    /// [`crate::NnapiStructure::npu_fraction`], with the unsupported share
    /// concentrated in post-processing and the tail (where real models
    /// fall off the NPU).
    ///
    /// Deterministic per model name.
    pub fn synthesize(model: &Model, n_ops: usize) -> OpGraph {
        assert!(n_ops >= 2, "need at least two operators");
        let frac = model.nnapi_structure().npu_fraction;
        // Work profile: front-loaded (early convs dominate), with a light
        // tail — a plausible mobile-CNN shape.
        let weights: Vec<f64> = (0..n_ops).map(|i| 1.0 / (1.0 + 0.35 * i as f64)).collect();
        let total: f64 = weights.iter().sum();
        let kinds = OpKind::cycle();
        let mut ops: Vec<Operator> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| Operator {
                name: format!("op_{i}"),
                kind: if i == n_ops - 1 {
                    OpKind::PostProcess
                } else if i == n_ops - 2 {
                    OpKind::FullyConnected
                } else {
                    kinds[i % kinds.len()]
                },
                work_fraction: w / total,
                npu_supported: true,
            })
            .collect();
        // Mark the tail unsupported until the unsupported share reaches
        // (1 - frac): post-processing first, then backwards.
        let mut unsupported = 0.0;
        for op in ops.iter_mut().rev() {
            if unsupported + 1e-12 >= 1.0 - frac {
                break;
            }
            op.npu_supported = false;
            unsupported += op.work_fraction;
        }
        OpGraph { ops }
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Never true: graphs have at least two operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The compute share with NPU kernels available.
    pub fn npu_supported_fraction(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.npu_supported)
            .map(|o| o.work_fraction)
            .sum()
    }

    /// Contiguous `(npu_supported, work_fraction)` runs — what a real
    /// NNAPI partitioner turns into subgraphs.
    pub fn segments(&self) -> Vec<(bool, f64)> {
        let mut out: Vec<(bool, f64)> = Vec::new();
        for op in &self.ops {
            match out.last_mut() {
                Some((supported, frac)) if *supported == op.npu_supported => {
                    *frac += op.work_fraction;
                }
                _ => out.push((op.npu_supported, op.work_fraction)),
            }
        }
        out
    }
}

/// Which engine a fine-grained scheduler put an operator on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPlacement {
    /// CPU cluster.
    Cpu,
    /// GPU.
    Gpu,
    /// NPU/TPU.
    Npu,
}

/// The outcome of [`fine_grained_plan`]: the per-operator placements and
/// the lowered stage sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FineGrainedPlan {
    /// Placement per operator, in graph order.
    pub placements: Vec<OpPlacement>,
    /// The executable plan, including inter-processor copy delays.
    pub stages: StageSeq,
    /// Number of processor transitions (each paid a copy penalty).
    pub transitions: usize,
}

/// BAND-style greedy per-operator scheduling: each operator goes to the
/// processor with the lowest *isolated* per-op time, derived from the
/// model's Table I totals (`time_op(r) = total_r × work_fraction`), with
/// the NPU admissible only for supported ops. Every processor transition
/// inserts a copy delay of `device.copy_ms`.
///
/// This is exactly the static reasoning the paper criticizes: it is
/// optimal in isolation but blind to contention — and it fragments the
/// execution across engines, paying transition costs the coarse delegates
/// avoid.
///
/// Returns `None` if the model supports no delegate to derive times from.
pub fn fine_grained_plan(
    model: &Model,
    graph: &OpGraph,
    device: &DeviceProfile,
    procs: SocProcs,
) -> Option<FineGrainedPlan> {
    let cpu_total = model.isolated_ms(Delegate::Cpu)?;
    let gpu_total = model.isolated_ms(Delegate::Gpu)?;
    // Per-op NPU speed derived from the NNAPI calibration: the NNAPI total
    // spends `npu_fraction` of compute on the NPU; solve for the NPU's
    // effective full-model time.
    let npu_total = model.isolated_ms(Delegate::Nnapi).map(|nnapi_total| {
        let s = model.nnapi_structure().npu_fraction.max(1e-6);
        let gpu_part = (1.0 - s) * gpu_total;
        ((nnapi_total - 2.0 * device.copy_ms - gpu_part) / s).max(0.1)
    });

    let mut placements = Vec::with_capacity(graph.len());
    for op in graph.ops() {
        let mut best = (OpPlacement::Cpu, cpu_total);
        if gpu_total < best.1 {
            best = (OpPlacement::Gpu, gpu_total);
        }
        if op.npu_supported {
            if let Some(npu_total) = npu_total {
                if npu_total < best.1 {
                    best = (OpPlacement::Npu, npu_total);
                }
            }
        }
        placements.push(best.0);
    }

    let copy = SimDuration::from_millis_f64(device.copy_ms);
    let mut stages = vec![Stage::delay(copy)];
    let mut transitions = 0;
    let mut prev: Option<OpPlacement> = None;
    for (op, &placement) in graph.ops().iter().zip(&placements) {
        if prev.is_some() && prev != Some(placement) {
            stages.push(Stage::delay(copy));
            transitions += 1;
        }
        let total = match placement {
            OpPlacement::Cpu => cpu_total,
            OpPlacement::Gpu => gpu_total,
            OpPlacement::Npu => npu_total.expect("npu placement implies nnapi support"),
        };
        let proc = match placement {
            OpPlacement::Cpu => procs.cpu,
            OpPlacement::Gpu => procs.gpu,
            OpPlacement::Npu => procs.npu,
        };
        stages.push(Stage::compute(
            proc,
            SimDuration::from_millis_f64(total * op.work_fraction),
        ));
        prev = Some(placement);
    }
    stages.push(Stage::delay(copy));
    Some(FineGrainedPlan {
        placements,
        stages: StageSeq::new(stages),
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;

    fn model() -> Model {
        ModelZoo::pixel7().get("mobilenetDetv1").unwrap().clone()
    }

    #[test]
    fn fractions_sum_to_one() {
        let g = OpGraph::synthesize(&model(), 12);
        let sum: f64 = g.ops().iter().map(|o| o.work_fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(g.len(), 12);
        assert!(!g.is_empty());
    }

    #[test]
    fn npu_support_matches_structure() {
        let m = model();
        let g = OpGraph::synthesize(&m, 16);
        let target = m.nnapi_structure().npu_fraction;
        // Tail-marking overshoots by at most one op's fraction.
        assert!(
            (g.npu_supported_fraction() - target).abs() < 0.15,
            "supported {} vs target {}",
            g.npu_supported_fraction(),
            target
        );
        // Post-processing is never NPU-supported for partially-supported
        // models.
        assert!(!g.ops().last().unwrap().npu_supported);
    }

    #[test]
    fn segments_merge_contiguous_runs() {
        let g = OpGraph::synthesize(&model(), 10);
        let segs = g.segments();
        // Alternation is minimal: supported head + unsupported tail.
        assert!(segs.len() <= 3, "{segs:?}");
        let total: f64 = segs.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // No two adjacent segments share the support flag.
        for w in segs.windows(2) {
            assert_ne!(w[0].0, w[1].0);
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let m = model();
        assert_eq!(OpGraph::synthesize(&m, 12), OpGraph::synthesize(&m, 12));
    }

    #[test]
    fn fine_grained_plan_places_supported_ops_on_npu() {
        let m = model(); // NNAPI-affine: NPU is fastest
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let g = OpGraph::synthesize(&m, 12);
        let plan = fine_grained_plan(&m, &g, &dev, procs).unwrap();
        let npu_ops = plan
            .placements
            .iter()
            .filter(|&&p| p == OpPlacement::Npu)
            .count();
        assert!(npu_ops > 0);
        // Unsupported ops landed elsewhere.
        for (op, p) in g.ops().iter().zip(&plan.placements) {
            if !op.npu_supported {
                assert_ne!(*p, OpPlacement::Npu, "{}", op.name);
            }
        }
        assert!(plan.transitions >= 1);
    }

    #[test]
    fn fine_grained_nominal_time_beats_worst_delegate() {
        // In isolation the greedy per-op plan should be at least as good
        // as the worst single delegate (it can only pick faster engines),
        // though it pays transition copies.
        let m = model();
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let g = OpGraph::synthesize(&m, 12);
        let plan = fine_grained_plan(&m, &g, &dev, procs).unwrap();
        let nominal = plan.stages.nominal_total().as_millis_f64();
        let worst = Delegate::ALL
            .into_iter()
            .filter_map(|d| m.isolated_ms(d))
            .fold(f64::MIN, f64::max);
        assert!(nominal < worst, "nominal {nominal} vs worst {worst}");
    }

    #[test]
    fn gpu_affine_model_avoids_npu() {
        let zoo = ModelZoo::pixel7();
        let m = zoo.get("model-metadata").unwrap(); // GPU-affine, poor NPU
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let g = OpGraph::synthesize(m, 10);
        let plan = fine_grained_plan(m, &g, &dev, procs).unwrap();
        // Every op on the GPU: no transitions, pure GPU-delegate behavior.
        assert!(plan.placements.iter().all(|&p| p == OpPlacement::Gpu));
        assert_eq!(plan.transitions, 0);
    }

    #[test]
    fn na_delegates_are_handled() {
        let zoo = ModelZoo::pixel7();
        let m = zoo.get("deeplabv3").unwrap(); // NNAPI NA on Pixel 7
        let dev = DeviceProfile::pixel7();
        let (_, procs) = dev.topology();
        let g = OpGraph::synthesize(m, 8);
        let plan = fine_grained_plan(m, &g, &dev, procs).unwrap();
        assert!(plan.placements.iter().all(|&p| p != OpPlacement::Npu));
    }
}
