//! Golden tests pinning the model zoos to Table I of the paper.
//!
//! The table below is transcribed independently from the published
//! numbers (see `PAPER.md` / `EXPERIMENTS.md` — Table I, "response time
//! of TFLite models on Galaxy S22 and Pixel 7 across GPU / NNAPI /
//! CPU"), *not* read back from the zoo, so any drift in the calibration
//! data shows up as a named cell mismatch rather than silently moving
//! every downstream experiment.

use nnmodel::{Delegate, ModelZoo};
use soc::DeviceProfile;

/// One Table I row: model name and its GPU / NNAPI / CPU isolated
/// latencies in milliseconds. `None` is an NA (incompatible) cell.
type Row = (&'static str, [Option<f64>; 3]);

/// Table I, Samsung Galaxy S22 column (plus the mnist row the scenario
/// tasksets add; the paper's eight models come first).
const GALAXY_S22: &[Row] = &[
    ("deconv-munet", [Some(18.0), Some(33.0), Some(58.0)]),
    ("deeplabv3", [Some(45.0), Some(27.0), Some(46.0)]),
    ("efficientdet-lite", [Some(72.0), None, Some(68.0)]),
    ("mobilenetDetv1", [Some(38.0), Some(13.0), Some(38.0)]),
    ("efficientclass-lite0", [Some(28.0), Some(10.0), Some(29.0)]),
    ("inception-v1-q", [Some(28.0), Some(8.0), Some(36.0)]),
    ("mobilenet-v1", [Some(26.0), Some(9.5), Some(28.0)]),
    ("model-metadata", [Some(12.7), Some(18.0), Some(14.0)]),
    ("mnist", [Some(5.5), Some(6.5), Some(6.0)]),
];

/// Table I, Google Pixel 7 column — the main evaluation device. Its
/// NNAPI rejects both segmentation models and efficientdet-lite.
const PIXEL_7: &[Row] = &[
    ("deconv-munet", [Some(17.9), None, Some(65.9)]),
    ("deeplabv3", [Some(136.6), None, Some(110.1)]),
    ("efficientdet-lite", [Some(109.8), None, Some(97.3)]),
    ("mobilenetDetv1", [Some(56.5), Some(18.1), Some(48.9)]),
    (
        "efficientclass-lite0",
        [Some(43.37), Some(18.3), Some(41.5)],
    ),
    ("inception-v1-q", [Some(60.8), Some(8.7), Some(63.2)]),
    ("mobilenet-v1", [Some(37.1), Some(10.2), Some(40.5)]),
    ("model-metadata", [Some(24.6), Some(40.7), Some(25.5)]),
    ("mnist", [Some(5.0), Some(6.5), Some(5.5)]),
];

const DELEGATES: [Delegate; 3] = [Delegate::Gpu, Delegate::Nnapi, Delegate::Cpu];

fn assert_zoo_matches(zoo: &ModelZoo, golden: &[Row]) {
    let device = zoo.device();
    assert_eq!(zoo.len(), golden.len(), "{device}: zoo size vs Table I");
    for (name, latencies) in golden {
        let model = zoo
            .get(name)
            .unwrap_or_else(|| panic!("{device}: Table I model {name} missing from zoo"));
        for (expected, delegate) in latencies.iter().zip(DELEGATES) {
            let got = model.isolated_ms(delegate);
            match (expected, got) {
                (Some(want), Some(have)) => assert!(
                    (want - have).abs() < 1e-9,
                    "{device} / {name} / {delegate}: Table I says {want} ms, zoo says {have} ms"
                ),
                (None, None) => {}
                _ => panic!(
                    "{device} / {name} / {delegate}: NA mismatch — Table I {expected:?}, zoo {got:?}"
                ),
            }
        }
    }
    // Table I order is part of the contract: `ModelZoo::iter` feeds the
    // Table I renderer, which must list models in the published order.
    let zoo_order: Vec<&str> = zoo.iter().map(|m| m.name()).collect();
    let golden_order: Vec<&str> = golden.iter().map(|(n, _)| *n).collect();
    assert_eq!(zoo_order, golden_order, "{device}: Table I row order");
}

#[test]
fn galaxy_s22_zoo_matches_table1_golden() {
    assert_zoo_matches(&ModelZoo::galaxy_s22(), GALAXY_S22);
}

#[test]
fn pixel7_zoo_matches_table1_golden() {
    assert_zoo_matches(&ModelZoo::pixel7(), PIXEL_7);
}

#[test]
fn na_cells_reject_execution_plans() {
    // An NA cell is not just a missing number: the delegate partitioner
    // must refuse to build an execution plan for the incompatible pair,
    // and `supports` must agree.
    for (zoo, device, golden) in [
        (
            ModelZoo::galaxy_s22(),
            DeviceProfile::galaxy_s22(),
            GALAXY_S22,
        ),
        (ModelZoo::pixel7(), DeviceProfile::pixel7(), PIXEL_7),
    ] {
        let (_, procs) = device.topology();
        for (name, latencies) in golden {
            let model = zoo.get(name).unwrap();
            for (expected, delegate) in latencies.iter().zip(DELEGATES) {
                let plan = model.plan(delegate, &device, procs);
                assert_eq!(
                    plan.is_some(),
                    expected.is_some(),
                    "{} / {name} / {delegate}: plan availability must track Table I NA cells",
                    zoo.device()
                );
                assert_eq!(model.supports(delegate), expected.is_some());
            }
        }
    }
}
