//! The live AR scene: objects on screen, user distance, render load, and
//! HBO's triangle distribution (the `TD` function of Algorithm 1).

use crate::quality::{DegradationModel, QualityParams};

/// Handle to an object within a [`Scene`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(usize);

impl ObjectId {
    /// Raw index of the object.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A virtual object on screen.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualObject {
    name: String,
    max_triangles: u64,
    model: DegradationModel,
    /// Per-object multiplier on the scene's user distance (objects are
    /// placed at different depths).
    distance_factor: f64,
    /// Current decimation ratio `R_{t,i}`.
    ratio: f64,
}

impl VirtualObject {
    /// Creates an object rendered at full quality.
    ///
    /// # Panics
    ///
    /// Panics if `max_triangles == 0` or `distance_factor <= 0`.
    pub fn new(
        name: impl Into<String>,
        max_triangles: u64,
        params: QualityParams,
        distance_factor: f64,
    ) -> Self {
        assert!(max_triangles > 0, "object needs triangles");
        assert!(
            distance_factor > 0.0 && distance_factor.is_finite(),
            "invalid distance factor: {distance_factor}"
        );
        VirtualObject {
            name: name.into(),
            max_triangles,
            model: DegradationModel::new(params),
            distance_factor,
            ratio: 1.0,
        }
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum (full-quality) triangle count.
    pub fn max_triangles(&self) -> u64 {
        self.max_triangles
    }

    /// Current decimation ratio `R`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Current triangle count (`R · T_max`).
    pub fn current_triangles(&self) -> f64 {
        self.ratio * self.max_triangles as f64
    }

    /// The trained degradation model.
    pub fn model(&self) -> &DegradationModel {
        &self.model
    }

    /// The per-object distance multiplier.
    pub fn distance_factor(&self) -> f64 {
        self.distance_factor
    }
}

/// Fraction of triangles surviving backface culling (roughly half of a
/// closed mesh faces away from the camera).
const BACKFACE_VISIBLE: f64 = 0.5;

/// The scene: objects plus the user's distance to the anchor point.
///
/// # Example
///
/// ```
/// use arscene::{QualityParams, Scene, VirtualObject};
///
/// let mut scene = Scene::new(1.5);
/// scene.add_object(VirtualObject::new(
///     "sphere", 100_000, QualityParams::new(0.5, -1.3, 0.8, 1.0), 1.0,
/// ));
/// scene.distribute_triangles(0.6);
/// assert!((scene.current_triangles() - 60_000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    objects: Vec<VirtualObject>,
    user_distance: f64,
}

impl Scene {
    /// Creates an empty scene with the user at `user_distance`.
    ///
    /// # Panics
    ///
    /// Panics if the distance is not positive.
    pub fn new(user_distance: f64) -> Self {
        assert!(
            user_distance > 0.0 && user_distance.is_finite(),
            "invalid user distance: {user_distance}"
        );
        Scene {
            objects: Vec::new(),
            user_distance,
        }
    }

    /// Adds an object (rendered at full quality until the next
    /// distribution) and returns its id.
    pub fn add_object(&mut self, object: VirtualObject) -> ObjectId {
        self.objects.push(object);
        ObjectId(self.objects.len() - 1)
    }

    /// Number of objects on screen (`L_t`).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are on screen.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Borrows an object.
    pub fn object(&self, id: ObjectId) -> &VirtualObject {
        &self.objects[id.0]
    }

    /// Iterates over the objects.
    pub fn objects(&self) -> impl Iterator<Item = &VirtualObject> {
        self.objects.iter()
    }

    /// The user's base distance.
    pub fn user_distance(&self) -> f64 {
        self.user_distance
    }

    /// Moves the user.
    ///
    /// # Panics
    ///
    /// Panics if the distance is not positive.
    pub fn set_user_distance(&mut self, distance: f64) {
        assert!(
            distance > 0.0 && distance.is_finite(),
            "invalid user distance: {distance}"
        );
        self.user_distance = distance;
    }

    /// Distance of one object to the user.
    fn distance_of(&self, obj: &VirtualObject) -> f64 {
        self.user_distance * obj.distance_factor
    }

    /// Total maximum triangle count `T^max` across objects.
    pub fn total_max_triangles(&self) -> u64 {
        self.objects.iter().map(|o| o.max_triangles).sum()
    }

    /// Currently selected triangles, `Σ R_i · T_i`.
    pub fn current_triangles(&self) -> f64 {
        self.objects.iter().map(|o| o.current_triangles()).sum()
    }

    /// The overall triangle ratio `x` implied by the current per-object
    /// ratios (1.0 for an empty scene).
    pub fn overall_ratio(&self) -> f64 {
        let max = self.total_max_triangles();
        if max == 0 {
            return 1.0;
        }
        self.current_triangles() / max as f64
    }

    /// Triangles the render pipeline actually processes this frame: the
    /// selected triangles scaled by backface culling and a distance
    /// attenuation (farther objects shrink on screen, and the paper's
    /// activation policy explicitly reasons about distance changing AR
    /// load through OpenGL culling).
    pub fn render_triangles(&self) -> f64 {
        self.objects
            .iter()
            .map(|o| {
                let d = self.distance_of(o);
                o.current_triangles() * BACKFACE_VISIBLE * (1.0 / d).min(1.0)
            })
            .sum()
    }

    /// Scene-average virtual-object quality `Q_t` — Eq. (2). Returns 1.0
    /// for an empty scene.
    pub fn average_quality(&self) -> f64 {
        if self.objects.is_empty() {
            return 1.0;
        }
        self.objects
            .iter()
            .map(|o| o.model.quality(o.ratio, self.distance_of(o)))
            .sum::<f64>()
            / self.objects.len() as f64
    }

    /// Sets every object to the same ratio (uniform decimation — what the
    /// SML baseline effectively sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0, 1]`.
    pub fn set_uniform_ratio(&mut self, ratio: f64) {
        assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");
        for o in &mut self.objects {
            o.ratio = ratio;
        }
    }

    /// HBO's `TD(x, L)` (Algorithm 1, line 23): distributes the total
    /// budget `x · T^max` across objects, weighting by each object's
    /// degradation sensitivity so the most sensitive objects (closer to
    /// the user, steeper error curves) keep more triangles.
    ///
    /// Implemented as marginal-gain equalization: the budget is assigned
    /// so that the per-triangle quality gain `−∂D_err/∂t` is equal across
    /// all objects not pinned at a bound, which maximizes the average
    /// quality of Eq. (2) for the given budget — the stated objective of
    /// the paper's sensitivity weighting.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]`.
    pub fn distribute_triangles(&mut self, x: f64) {
        assert!((0.0..=1.0).contains(&x), "triangle ratio out of range: {x}");
        if self.objects.is_empty() {
            return;
        }
        let budget = x * self.total_max_triangles() as f64;

        // Marginal quality gain per triangle for object i at ratio R:
        //   g_i(R) = marginal(R) / (D_i^{d_i} · T_i)
        // (decreasing in R for convex error curves).
        let denom: Vec<f64> = self
            .objects
            .iter()
            .map(|o| self.user_distance * o.distance_factor)
            .zip(&self.objects)
            .map(|(dist, o)| dist.powf(o.model.params().d) * o.max_triangles as f64)
            .collect();

        let ratio_at = |o: &VirtualObject, denom: f64, lambda: f64| -> f64 {
            let p = o.model.params();
            if p.a.abs() < 1e-12 {
                // Constant marginal: all-or-nothing.
                if -p.b / denom > lambda {
                    1.0
                } else {
                    0.0
                }
            } else {
                // Solve marginal(R)/denom = lambda for R.
                ((-p.b - lambda * denom) / (2.0 * p.a)).clamp(0.0, 1.0)
            }
        };

        let total_at = |lambda: f64, objects: &[VirtualObject]| -> f64 {
            objects
                .iter()
                .zip(&denom)
                .map(|(o, &dn)| ratio_at(o, dn, lambda) * o.max_triangles as f64)
                .sum()
        };

        // λ = 0 gives every object its unconstrained optimum (≥ budget for
        // decreasing error curves); large λ starves everyone.
        let mut lo = 0.0;
        let mut hi = self
            .objects
            .iter()
            .zip(&denom)
            .map(|(o, &dn)| o.model.params().marginal(0.0) / dn)
            .fold(1.0, f64::max);
        if total_at(lo, &self.objects) <= budget {
            // The budget covers every object's unconstrained optimum
            // (for trained curves the optimum is R = 1, so this is the
            // x = 1 case): adding further triangles cannot improve Eq. (2).
            for (o, &dn) in self.objects.iter_mut().zip(&denom) {
                o.ratio = ratio_at(o, dn, 0.0);
            }
            return;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if total_at(mid, &self.objects) > budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let lambda = 0.5 * (lo + hi);
        for (o, &dn) in self.objects.iter_mut().zip(&denom) {
            o.ratio = ratio_at(o, dn, lambda);
        }
        // Fix residual rounding: scale ratios to hit the budget exactly
        // (keeps Σ R_i T_i = x · T^max, the paper's budget constraint).
        let current = self.current_triangles();
        if current > 0.0 {
            let scale = budget / current;
            for o in &mut self.objects {
                o.ratio = (o.ratio * scale).clamp(0.0, 1.0);
            }
        }
    }

    /// Per-object sensitivities at a common reference ratio (the weights
    /// the paper describes for `TD`), mostly useful for inspection.
    pub fn sensitivities(&self, reference_ratio: f64) -> Vec<f64> {
        self.objects
            .iter()
            .map(|o| o.model.sensitivity(reference_ratio, self.distance_of(o)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s, usizes};
    use simcore::prop_assert;

    fn heavy() -> VirtualObject {
        // Oversampled object: decimation barely hurts.
        VirtualObject::new(
            "heavy",
            150_000,
            QualityParams::new(0.18, -0.45, 0.27, 1.2),
            1.0,
        )
    }

    fn light() -> VirtualObject {
        // Sparse object: every triangle matters.
        VirtualObject::new("light", 2_500, QualityParams::new(1.2, -2.6, 1.4, 0.9), 1.0)
    }

    fn scene_with(objs: Vec<VirtualObject>) -> Scene {
        let mut s = Scene::new(1.2);
        for o in objs {
            s.add_object(o);
        }
        s
    }

    #[test]
    fn totals_and_ratio() {
        let s = scene_with(vec![heavy(), light()]);
        assert_eq!(s.total_max_triangles(), 152_500);
        assert_eq!(s.overall_ratio(), 1.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_scene_is_perfect_and_free() {
        let s = Scene::new(1.0);
        assert_eq!(s.average_quality(), 1.0);
        assert_eq!(s.render_triangles(), 0.0);
        assert_eq!(s.overall_ratio(), 1.0);
    }

    #[test]
    fn td_conserves_the_budget() {
        let mut s = scene_with(vec![heavy(), light(), heavy()]);
        for x in [0.3, 0.5, 0.72, 0.9] {
            s.distribute_triangles(x);
            let got = s.overall_ratio();
            assert!((got - x).abs() < 0.02, "x = {x}, got {got}");
            for o in s.objects() {
                assert!((0.0..=1.0).contains(&o.ratio()), "{o:?}");
            }
        }
    }

    #[test]
    fn td_at_full_budget_keeps_everything() {
        let mut s = scene_with(vec![heavy(), light()]);
        s.distribute_triangles(1.0);
        for o in s.objects() {
            assert!((o.ratio() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn td_protects_sensitive_objects() {
        let mut s = scene_with(vec![heavy(), light()]);
        s.distribute_triangles(0.5);
        let heavy_r = s.objects[0].ratio();
        let light_r = s.objects[1].ratio();
        assert!(
            light_r > heavy_r,
            "sensitive light object ({light_r}) should keep more than heavy ({heavy_r})"
        );
    }

    #[test]
    fn td_beats_uniform_decimation() {
        let mut a = scene_with(vec![heavy(), light(), heavy(), light()]);
        let mut b = a.clone();
        a.distribute_triangles(0.5);
        b.set_uniform_ratio(0.5);
        assert!(
            a.average_quality() >= b.average_quality() - 1e-9,
            "TD {} vs uniform {}",
            a.average_quality(),
            b.average_quality()
        );
    }

    #[test]
    fn closer_user_lowers_quality() {
        let mut s = scene_with(vec![heavy(), light()]);
        s.distribute_triangles(0.4);
        let q_far = {
            s.set_user_distance(3.0);
            s.average_quality()
        };
        let q_near = {
            s.set_user_distance(0.8);
            s.average_quality()
        };
        assert!(q_near < q_far);
    }

    #[test]
    fn render_triangles_shrink_with_distance() {
        let mut s = scene_with(vec![heavy()]);
        s.set_user_distance(1.0);
        let near = s.render_triangles();
        s.set_user_distance(4.0);
        let far = s.render_triangles();
        assert!(far < near / 2.0);
    }

    #[test]
    fn sensitivities_reflect_curves() {
        let s = scene_with(vec![heavy(), light()]);
        let sens = s.sensitivities(0.5);
        assert!(sens[1] > sens[0]);
    }

    #[test]
    fn td_quality_is_monotone_in_budget() {
        check::check(
            "td_quality_is_monotone_in_budget",
            (
                f64s(0.1..=0.95),
                f64s(0.01..0.5),
                usizes(1..4),
                usizes(1..4),
            ),
            |&(x1, dx, n_heavy, n_light)| {
                // More triangle budget never lowers the achievable average
                // quality under the TD distribution.
                let x2 = (x1 + dx).min(1.0);
                let mut objs = Vec::new();
                for _ in 0..n_heavy {
                    objs.push(heavy());
                }
                for _ in 0..n_light {
                    objs.push(light());
                }
                let mut a = scene_with(objs.clone());
                let mut b = scene_with(objs);
                a.distribute_triangles(x1);
                b.distribute_triangles(x2);
                prop_assert!(
                    b.average_quality() >= a.average_quality() - 1e-6,
                    "Q({x2}) = {} < Q({x1}) = {}",
                    b.average_quality(),
                    a.average_quality()
                );
                Ok(())
            },
        );
    }

    #[test]
    fn td_budget_conservation_property() {
        check::check(
            "td_budget_conservation_property",
            (f64s(0.05..=1.0), usizes(1..4), usizes(1..4)),
            |&(x, n_heavy, n_light)| {
                let mut objs = Vec::new();
                for _ in 0..n_heavy {
                    objs.push(heavy());
                }
                for _ in 0..n_light {
                    objs.push(light());
                }
                let mut s = scene_with(objs);
                s.distribute_triangles(x);
                // Budget respected within tolerance and never exceeded much.
                prop_assert!(s.overall_ratio() <= x + 0.02);
                // All ratios feasible.
                for o in s.objects() {
                    prop_assert!((0.0..=1.0).contains(&o.ratio()));
                }
                Ok(())
            },
        );
    }
}
