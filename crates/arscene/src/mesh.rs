//! Procedural triangle meshes and decimation — the stand-in for the
//! paper's virtual-object assets and the server-side object decimation
//! algorithm of Fig. 3.

use simcore::rand::Rng;
use simcore::rand::SeedableRng;

/// An indexed triangle mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    vertices: Vec<[f64; 3]>,
    triangles: Vec<[usize; 3]>,
}

impl Mesh {
    /// Builds a mesh from raw vertex and index data.
    ///
    /// # Panics
    ///
    /// Panics if any triangle index is out of bounds.
    pub fn new(vertices: Vec<[f64; 3]>, triangles: Vec<[usize; 3]>) -> Self {
        for t in &triangles {
            for &i in t {
                assert!(i < vertices.len(), "triangle index {i} out of bounds");
            }
        }
        Mesh {
            vertices,
            triangles,
        }
    }

    /// The vertex positions.
    pub fn vertices(&self) -> &[[f64; 3]] {
        &self.vertices
    }

    /// The triangle index list.
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// A UV sphere with `rings × segments` quads (two triangles each, plus
    /// triangle fans at the poles).
    ///
    /// # Panics
    ///
    /// Panics if `rings < 2` or `segments < 3`.
    pub fn uv_sphere(rings: usize, segments: usize) -> Self {
        assert!(rings >= 2 && segments >= 3, "sphere too coarse");
        let mut vertices = vec![[0.0, 1.0, 0.0]];
        for r in 1..rings {
            let phi = std::f64::consts::PI * r as f64 / rings as f64;
            for s in 0..segments {
                let theta = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
                vertices.push([phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin()]);
            }
        }
        vertices.push([0.0, -1.0, 0.0]);
        let south = vertices.len() - 1;
        let idx = |r: usize, s: usize| 1 + (r - 1) * segments + (s % segments);
        let mut triangles = Vec::new();
        // North cap (counter-clockwise when seen from outside).
        for s in 0..segments {
            triangles.push([0, idx(1, s + 1), idx(1, s)]);
        }
        // Body.
        for r in 1..rings - 1 {
            for s in 0..segments {
                let (a, b) = (idx(r, s), idx(r, s + 1));
                let (c, d) = (idx(r + 1, s), idx(r + 1, s + 1));
                triangles.push([a, b, c]);
                triangles.push([b, d, c]);
            }
        }
        // South cap.
        for s in 0..segments {
            triangles.push([south, idx(rings - 1, s), idx(rings - 1, s + 1)]);
        }
        Mesh::new(vertices, triangles)
    }

    /// A torus with major radius 1 and the given minor radius.
    ///
    /// # Panics
    ///
    /// Panics if the tessellation is too coarse or the radius not in
    /// `(0, 1)`.
    pub fn torus(minor_radius: f64, rings: usize, segments: usize) -> Self {
        assert!(rings >= 3 && segments >= 3, "torus too coarse");
        assert!(
            minor_radius > 0.0 && minor_radius < 1.0,
            "minor radius must be in (0, 1)"
        );
        let mut vertices = Vec::with_capacity(rings * segments);
        for r in 0..rings {
            let u = 2.0 * std::f64::consts::PI * r as f64 / rings as f64;
            for s in 0..segments {
                let v = 2.0 * std::f64::consts::PI * s as f64 / segments as f64;
                let w = 1.0 + minor_radius * v.cos();
                vertices.push([w * u.cos(), minor_radius * v.sin(), w * u.sin()]);
            }
        }
        let idx = |r: usize, s: usize| (r % rings) * segments + (s % segments);
        let mut triangles = Vec::new();
        for r in 0..rings {
            for s in 0..segments {
                let (a, b) = (idx(r, s), idx(r + 1, s));
                let (c, d) = (idx(r, s + 1), idx(r + 1, s + 1));
                triangles.push([a, b, c]);
                triangles.push([b, d, c]);
            }
        }
        Mesh::new(vertices, triangles)
    }

    /// A "rock": a UV sphere with seeded radial displacement — a cheap
    /// irregular object whose decimation error behaves like scanned
    /// assets.
    pub fn rock(seed: u64, rings: usize, segments: usize) -> Self {
        let mut mesh = Mesh::uv_sphere(rings, segments);
        let mut rng = simcore::rand::StdRng::seed_from_u64(seed);
        // Low-frequency lobes + per-vertex jitter.
        let lobes: Vec<([f64; 3], f64)> = (0..6)
            .map(|_| {
                let dir = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ];
                (dir, rng.gen_range(0.1..0.35))
            })
            .collect();
        for v in &mut mesh.vertices {
            let mut scale = 1.0;
            for (dir, amp) in &lobes {
                let d = v[0] * dir[0] + v[1] * dir[1] + v[2] * dir[2];
                scale += amp * (3.0 * d).sin();
            }
            scale += rng.gen_range(-0.02..0.02);
            for c in v.iter_mut() {
                *c *= scale;
            }
        }
        mesh
    }

    /// Radius of the smallest origin-centered sphere containing the mesh.
    pub fn bounding_radius(&self) -> f64 {
        self.vertices
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .fold(0.0, f64::max)
    }

    /// Uniformly rescales the mesh to unit bounding radius (no-op for an
    /// empty or degenerate mesh).
    pub fn normalize_scale(&mut self) {
        let r = self.bounding_radius();
        if r > 0.0 {
            for v in &mut self.vertices {
                for c in v.iter_mut() {
                    *c /= r;
                }
            }
        }
    }

    /// Decimates the mesh to approximately `target` triangles by vertex
    /// clustering: vertices are snapped to a uniform grid, degenerate
    /// triangles dropped, and the grid resolution binary-searched to
    /// approach the target. Returns the input unchanged if it is already
    /// at or below the target.
    ///
    /// # Panics
    ///
    /// Panics if `target == 0`.
    pub fn decimate(&self, target: usize) -> Mesh {
        assert!(target > 0, "target must be positive");
        if self.triangle_count() <= target {
            return self.clone();
        }
        let radius = self.bounding_radius().max(1e-9);
        // Binary search the clustering cell count per axis.
        let (mut lo, mut hi) = (2u32, 512u32);
        let mut best: Option<Mesh> = None;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let candidate = self.cluster(radius, mid);
            let n = candidate.triangle_count();
            let better = match &best {
                None => true,
                Some(b) => {
                    (n as i64 - target as i64).abs()
                        < (b.triangle_count() as i64 - target as i64).abs()
                }
            };
            if better {
                best = Some(candidate);
            }
            if n > target {
                hi = mid - 1;
            } else {
                lo = mid + 1;
            }
        }
        best.expect("binary search produced at least one candidate")
    }

    /// Vertex clustering with `cells` grid cells per axis over the
    /// bounding cube of half-width `radius`.
    fn cluster(&self, radius: f64, cells: u32) -> Mesh {
        use std::collections::HashMap;
        let cell_of = |v: &[f64; 3]| -> (i32, i32, i32) {
            let q = |x: f64| {
                (((x + radius) / (2.0 * radius) * cells as f64).floor() as i32)
                    .clamp(0, cells as i32 - 1)
            };
            (q(v[0]), q(v[1]), q(v[2]))
        };
        // Representative (averaged) vertex per occupied cell.
        let mut cell_index: HashMap<(i32, i32, i32), usize> = HashMap::new();
        let mut sums: Vec<([f64; 3], usize)> = Vec::new();
        let mut remap = vec![0usize; self.vertices.len()];
        for (i, v) in self.vertices.iter().enumerate() {
            let key = cell_of(v);
            let idx = *cell_index.entry(key).or_insert_with(|| {
                sums.push(([0.0; 3], 0));
                sums.len() - 1
            });
            sums[idx].0[0] += v[0];
            sums[idx].0[1] += v[1];
            sums[idx].0[2] += v[2];
            sums[idx].1 += 1;
            remap[i] = idx;
        }
        let vertices: Vec<[f64; 3]> = sums
            .into_iter()
            .map(|(s, n)| [s[0] / n as f64, s[1] / n as f64, s[2] / n as f64])
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut triangles = Vec::new();
        for t in &self.triangles {
            let mapped = [remap[t[0]], remap[t[1]], remap[t[2]]];
            if mapped[0] == mapped[1] || mapped[1] == mapped[2] || mapped[0] == mapped[2] {
                continue; // collapsed
            }
            // Deduplicate triangles that collapsed onto each other,
            // keeping orientation-insensitive identity.
            let mut key = mapped;
            key.sort_unstable();
            if seen.insert(key) {
                triangles.push(mapped);
            }
        }
        Mesh::new(vertices, triangles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_counts() {
        let m = Mesh::uv_sphere(8, 12);
        // 2 caps x 12 + 6 body rings x 12 x 2 = 168.
        assert_eq!(m.triangle_count(), 168);
        assert_eq!(m.vertices().len(), 2 + 7 * 12);
        assert!((m.bounding_radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn torus_counts() {
        let m = Mesh::torus(0.3, 10, 8);
        assert_eq!(m.triangle_count(), 160);
        assert!((m.bounding_radius() - 1.3).abs() < 1e-9);
    }

    #[test]
    fn rock_is_deterministic_per_seed() {
        let a = Mesh::rock(7, 10, 10);
        let b = Mesh::rock(7, 10, 10);
        let c = Mesh::rock(8, 10, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normalize_scale_unit_radius() {
        let mut m = Mesh::rock(1, 12, 12);
        m.normalize_scale();
        assert!((m.bounding_radius() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decimate_reduces_towards_target() {
        let m = Mesh::uv_sphere(40, 40); // 3,120 triangles... (2*40 + 38*40*2)
        let full = m.triangle_count();
        let dec = m.decimate(full / 4);
        assert!(
            dec.triangle_count() < full / 2,
            "{} -> {}",
            full,
            dec.triangle_count()
        );
        assert!(dec.triangle_count() > 16);
        // Shape roughly preserved: bounding radius close to 1.
        assert!((dec.bounding_radius() - 1.0).abs() < 0.25);
    }

    #[test]
    fn decimate_is_monotone_in_target() {
        let m = Mesh::uv_sphere(30, 30);
        let coarse = m.decimate(100).triangle_count();
        let fine = m.decimate(800).triangle_count();
        assert!(coarse < fine, "coarse {coarse}, fine {fine}");
    }

    #[test]
    fn decimate_noop_when_under_target() {
        let m = Mesh::uv_sphere(6, 6);
        let d = m.decimate(10_000);
        assert_eq!(d.triangle_count(), m.triangle_count());
    }

    #[test]
    fn cluster_drops_no_vertices_references() {
        let m = Mesh::uv_sphere(20, 20).decimate(150);
        for t in m.triangles() {
            for &i in t {
                assert!(i < m.vertices().len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_index_panics() {
        Mesh::new(vec![[0.0; 3]], vec![[0, 1, 2]]);
    }
}
