//! The virtual-object quality model of the paper (Eq. 1–2), borrowed from
//! eAR (Didar & Brocanelli, IEEE TMC 2023).

/// Per-object parameters `(a, b, c, d)` of the degradation model
/// `D_err(R, D) = (a R² + b R + c) / D^d` — Eq. (1). Trained offline by
/// the [`crate::fit`] pipeline (GMSD over rasterized decimated meshes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityParams {
    /// Quadratic coefficient of the decimation-ratio polynomial.
    pub a: f64,
    /// Linear coefficient (negative for sane objects: more triangles,
    /// less error).
    pub b: f64,
    /// Constant coefficient (the error floor at `R → 0`).
    pub c: f64,
    /// Distance exponent: how quickly degradation fades with distance.
    pub d: f64,
}

impl QualityParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite or `d < 0`.
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        for v in [a, b, c, d] {
            assert!(v.is_finite(), "non-finite parameter");
        }
        assert!(d >= 0.0, "distance exponent must be non-negative");
        QualityParams { a, b, c, d }
    }

    /// The raw ratio polynomial `p(R) = a R² + b R + c`, unclamped.
    pub fn polynomial(&self, ratio: f64) -> f64 {
        self.a * ratio * ratio + self.b * ratio + self.c
    }

    /// Marginal error reduction per unit of ratio: `−p'(R) = −(2aR + b)`.
    /// Positive when adding triangles still helps.
    pub fn marginal(&self, ratio: f64) -> f64 {
        -(2.0 * self.a * ratio + self.b)
    }
}

/// Eq. (1) bound to one object: evaluates normalized degradation and
/// quality at a `(decimation ratio, user-object distance)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationModel {
    params: QualityParams,
}

impl DegradationModel {
    /// Wraps a trained parameter set.
    pub fn new(params: QualityParams) -> Self {
        DegradationModel { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> QualityParams {
        self.params
    }

    /// Normalized degradation error `D_err ∈ [0, 1]` at decimation ratio
    /// `ratio` and distance `distance` (Eq. 1, clamped to the unit
    /// interval as the error is *normalized* in eAR).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0, 1]` or `distance <= 0`.
    pub fn degradation(&self, ratio: f64, distance: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "decimation ratio out of range: {ratio}"
        );
        assert!(
            distance > 0.0 && distance.is_finite(),
            "invalid distance: {distance}"
        );
        (self.params.polynomial(ratio) / distance.powf(self.params.d)).clamp(0.0, 1.0)
    }

    /// Per-object quality `1 − D_err` (the summand of Eq. 2).
    pub fn quality(&self, ratio: f64, distance: f64) -> f64 {
        1.0 - self.degradation(ratio, distance)
    }

    /// The sensitivity weight used by HBO's triangle distribution
    /// (Algorithm 1, line 23): the degradation gap between a common
    /// reference ratio and the full-quality render, at this object's
    /// distance. Objects that lose more by decimating to the reference are
    /// more sensitive and deserve more triangles.
    pub fn sensitivity(&self, reference_ratio: f64, distance: f64) -> f64 {
        self.degradation(reference_ratio, distance) - self.degradation(1.0, distance)
    }
}

/// Scene-average quality over per-object `(model, ratio, distance)`
/// triples — Eq. (2). Returns 1.0 for an empty scene (nothing on screen
/// degrades nothing).
pub fn average_quality(objects: &[(DegradationModel, f64, f64)]) -> f64 {
    if objects.is_empty() {
        return 1.0;
    }
    objects
        .iter()
        .map(|(m, r, d)| m.quality(*r, *d))
        .sum::<f64>()
        / objects.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::check::{self, f64s};
    use simcore::prop_assert;

    fn model() -> DegradationModel {
        // A representative trained curve: zero error at R = 1.
        DegradationModel::new(QualityParams::new(0.5, -1.3, 0.8, 1.0))
    }

    #[test]
    fn full_quality_has_zero_error() {
        let m = model();
        assert!(m.degradation(1.0, 1.0).abs() < 1e-12);
        assert_eq!(m.quality(1.0, 2.0), 1.0);
    }

    #[test]
    fn decimation_increases_error() {
        let m = model();
        assert!(m.degradation(0.2, 1.0) > m.degradation(0.6, 1.0));
        assert!(m.degradation(0.6, 1.0) > m.degradation(0.9, 1.0));
    }

    #[test]
    fn distance_masks_error() {
        let m = model();
        assert!(m.degradation(0.3, 1.0) > m.degradation(0.3, 3.0));
    }

    #[test]
    fn degradation_is_clamped() {
        // Extreme parameters cannot push the normalized error outside [0,1].
        let m = DegradationModel::new(QualityParams::new(0.0, -10.0, 10.0, 0.1));
        let e = m.degradation(0.0, 0.5);
        assert!((0.0..=1.0).contains(&e));
        assert_eq!(e, 1.0);
    }

    #[test]
    fn sensitivity_is_positive_for_decreasing_error() {
        let m = model();
        assert!(m.sensitivity(0.5, 1.0) > 0.0);
        // Farther away, the same decimation is less noticeable.
        assert!(m.sensitivity(0.5, 1.0) > m.sensitivity(0.5, 3.0));
    }

    #[test]
    fn average_quality_matches_eq2() {
        let m = model();
        let objs = vec![(m, 1.0, 1.0), (m, 0.5, 1.0)];
        let expected = (1.0 + m.quality(0.5, 1.0)) / 2.0;
        assert!((average_quality(&objs) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_scene_is_perfect() {
        assert_eq!(average_quality(&[]), 1.0);
    }

    #[test]
    fn marginal_matches_derivative() {
        let p = QualityParams::new(0.5, -1.3, 0.8, 1.0);
        let (r, h) = (0.6, 1e-7);
        let numeric = -(p.polynomial(r + h) - p.polynomial(r - h)) / (2.0 * h);
        assert!((p.marginal(r) - numeric).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_ratio_panics() {
        model().degradation(1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn zero_distance_panics() {
        model().degradation(0.5, 0.0);
    }

    #[test]
    fn degradation_always_in_unit_interval() {
        check::check(
            "degradation_always_in_unit_interval",
            (f64s(0.0..=1.0), f64s(0.1..10.0)),
            |&(r, dist)| {
                let e = model().degradation(r, dist);
                prop_assert!((0.0..=1.0).contains(&e));
                Ok(())
            },
        );
    }

    #[test]
    fn quality_plus_degradation_is_one() {
        check::check(
            "quality_plus_degradation_is_one",
            (f64s(0.0..=1.0), f64s(0.1..10.0)),
            |&(r, dist)| {
                let m = model();
                prop_assert!((m.quality(r, dist) + m.degradation(r, dist) - 1.0).abs() < 1e-12);
                Ok(())
            },
        );
    }
}
