//! Quadric-error-metric mesh simplification (Garland & Heckbert 1997) —
//! the classic edge-collapse decimator used by production asset pipelines
//! (and the kind of algorithm the paper's decimation server would run).
//!
//! Compared to [`crate::mesh::Mesh::decimate`]'s vertex clustering, QEM
//! tracks, per vertex, the sum of squared distances to the planes of its
//! original incident faces, and repeatedly collapses the edge whose
//! contraction adds the least error — preserving silhouettes and sharp
//! features far better at the same triangle budget.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::mesh::Mesh;

/// A symmetric 4×4 quadric, stored as the 10 unique coefficients of
/// `Q = [[a²,ab,ac,ad],[ab,b²,bc,bd],[ac,bc,c²,cd],[ad,bd,cd,d²]]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Quadric {
    q: [f64; 10], // a2, ab, ac, ad, b2, bc, bd, c2, cd, d2
}

impl Quadric {
    /// The fundamental quadric of the plane `ax + by + cz + d = 0`.
    fn from_plane(a: f64, b: f64, c: f64, d: f64) -> Self {
        Quadric {
            q: [
                a * a,
                a * b,
                a * c,
                a * d,
                b * b,
                b * c,
                b * d,
                c * c,
                c * d,
                d * d,
            ],
        }
    }

    fn add(&mut self, other: &Quadric) {
        for (x, y) in self.q.iter_mut().zip(&other.q) {
            *x += y;
        }
    }

    fn sum(a: &Quadric, b: &Quadric) -> Quadric {
        let mut out = *a;
        out.add(b);
        out
    }

    /// Evaluates `vᵀ Q v` at point `p` (homogeneous `w = 1`).
    fn error(&self, p: [f64; 3]) -> f64 {
        let [x, y, z] = p;
        let q = &self.q;
        q[0] * x * x
            + 2.0 * q[1] * x * y
            + 2.0 * q[2] * x * z
            + 2.0 * q[3] * x
            + q[4] * y * y
            + 2.0 * q[5] * y * z
            + 2.0 * q[6] * y
            + q[7] * z * z
            + 2.0 * q[8] * z
            + q[9]
    }
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// A candidate edge collapse in the priority heap, keyed on error bits for
/// total ordering (errors are non-negative so the IEEE bit pattern
/// preserves order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Candidate {
    error_bits: u64,
    a: usize,
    b: usize,
    version: u64,
}

/// Simplifies `mesh` to approximately `target_triangles` by greedy
/// quadric-error edge collapses. Returns the input unchanged if it is
/// already at or below the target.
///
/// The contraction position is chosen as the best of the two endpoints
/// and the midpoint (the robust variant of Garland–Heckbert that avoids
/// solving a possibly-singular 3×3 system).
///
/// # Panics
///
/// Panics if `target_triangles == 0`.
pub fn decimate_qem(mesh: &Mesh, target_triangles: usize) -> Mesh {
    assert!(target_triangles > 0, "target must be positive");
    if mesh.triangle_count() <= target_triangles {
        return mesh.clone();
    }

    let mut positions: Vec<[f64; 3]> = mesh.vertices().to_vec();
    // Faces as live index triples; dead faces are tombstoned.
    let mut faces: Vec<Option<[usize; 3]>> = mesh.triangles().iter().map(|t| Some(*t)).collect();
    let mut live_faces = faces.len();

    // Union-find over collapsed vertices.
    let mut parent: Vec<usize> = (0..positions.len()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }

    // Per-vertex quadrics from incident face planes.
    let mut quadrics: Vec<Quadric> = vec![Quadric::default(); positions.len()];
    // Vertex -> incident face ids.
    let mut incident: Vec<HashSet<usize>> = vec![HashSet::new(); positions.len()];
    for (fi, face) in faces.iter().enumerate() {
        let [i, j, k] = face.expect("all faces live initially");
        let n = cross(
            sub(positions[j], positions[i]),
            sub(positions[k], positions[i]),
        );
        let len = norm(n);
        if len < 1e-15 {
            continue; // degenerate input face contributes no plane
        }
        let (a, b, c) = (n[0] / len, n[1] / len, n[2] / len);
        let d = -(a * positions[i][0] + b * positions[i][1] + c * positions[i][2]);
        let q = Quadric::from_plane(a, b, c, d);
        for v in [i, j, k] {
            quadrics[v].add(&q);
            incident[v].insert(fi);
        }
    }

    // Version counters for lazy heap invalidation.
    let mut version: Vec<u64> = vec![0; positions.len()];

    let best_target = |qa: &Quadric, qb: &Quadric, pa: [f64; 3], pb: [f64; 3]| -> ([f64; 3], f64) {
        let q = Quadric::sum(qa, qb);
        let mid = [
            0.5 * (pa[0] + pb[0]),
            0.5 * (pa[1] + pb[1]),
            0.5 * (pa[2] + pb[2]),
        ];
        [pa, pb, mid]
            .into_iter()
            .map(|p| (p, q.error(p).max(0.0)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("three candidates")
    };

    // Seed the heap with every edge.
    let mut heap: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
    let mut seen_edges: HashSet<(usize, usize)> = HashSet::new();
    for face in faces.iter().flatten() {
        for (a, b) in [(face[0], face[1]), (face[1], face[2]), (face[2], face[0])] {
            let key = (a.min(b), a.max(b));
            if seen_edges.insert(key) {
                let (_, err) = best_target(
                    &quadrics[key.0],
                    &quadrics[key.1],
                    positions[key.0],
                    positions[key.1],
                );
                heap.push(Reverse(Candidate {
                    error_bits: err.to_bits(),
                    a: key.0,
                    b: key.1,
                    version: 0,
                }));
            }
        }
    }

    while live_faces > target_triangles {
        let Some(Reverse(cand)) = heap.pop() else {
            break; // nothing left to collapse
        };
        let a = find(&mut parent, cand.a);
        let b = find(&mut parent, cand.b);
        if a == b {
            continue; // edge already collapsed away
        }
        // Stale if either endpoint changed since the candidate was pushed.
        if cand.version != version[a].max(version[b]) && cand.version != version[a] + version[b] {
            // Cheap staleness test: recompute and compare below instead.
        }
        let (pos, err) = best_target(&quadrics[a], &quadrics[b], positions[a], positions[b]);
        if err.to_bits() != cand.error_bits {
            // Quadrics moved since this entry was pushed: reinsert fresh.
            heap.push(Reverse(Candidate {
                error_bits: err.to_bits(),
                a,
                b,
                version: version[a].max(version[b]),
            }));
            continue;
        }

        // Collapse b into a.
        parent[b] = a;
        positions[a] = pos;
        let qb = quadrics[b];
        quadrics[a].add(&qb);
        version[a] += 1;

        // Merge incidence, dropping degenerate faces.
        let b_faces: Vec<usize> = incident[b].iter().copied().collect();
        for fi in b_faces {
            incident[a].insert(fi);
        }
        let a_faces: Vec<usize> = incident[a].iter().copied().collect();
        let mut neighbor_set: HashSet<usize> = HashSet::new();
        for fi in a_faces {
            let Some(face) = faces[fi] else {
                incident[a].remove(&fi);
                continue;
            };
            let mapped = [
                find(&mut parent, face[0]),
                find(&mut parent, face[1]),
                find(&mut parent, face[2]),
            ];
            if mapped[0] == mapped[1] || mapped[1] == mapped[2] || mapped[0] == mapped[2] {
                faces[fi] = None;
                live_faces -= 1;
                incident[a].remove(&fi);
            } else {
                faces[fi] = Some(mapped);
                for v in mapped {
                    if v != a {
                        neighbor_set.insert(v);
                    }
                }
            }
        }
        // Refresh candidates around the merged vertex.
        for n in neighbor_set {
            let (_, err) = best_target(&quadrics[a], &quadrics[n], positions[a], positions[n]);
            heap.push(Reverse(Candidate {
                error_bits: err.to_bits(),
                a,
                b: n,
                version: version[a].max(version[n]),
            }));
        }
    }

    // Compact the surviving vertices and faces.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut out_vertices = Vec::new();
    let mut out_faces = Vec::new();
    for face in faces.iter().flatten() {
        let mapped: Vec<usize> = face
            .iter()
            .map(|&v| {
                let root = find(&mut parent, v);
                *remap.entry(root).or_insert_with(|| {
                    out_vertices.push(positions[root]);
                    out_vertices.len() - 1
                })
            })
            .collect();
        out_faces.push([mapped[0], mapped[1], mapped[2]]);
    }
    Mesh::new(out_vertices, out_faces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iqa::{gmsd, render_mesh, RenderOptions};

    #[test]
    fn reaches_the_target_roughly() {
        let mesh = Mesh::uv_sphere(24, 24);
        let full = mesh.triangle_count();
        let dec = decimate_qem(&mesh, full / 4);
        assert!(
            dec.triangle_count() <= full / 4 + 8,
            "{} -> {}",
            full,
            dec.triangle_count()
        );
        assert!(dec.triangle_count() > 16);
    }

    #[test]
    fn noop_below_target() {
        let mesh = Mesh::uv_sphere(6, 6);
        let dec = decimate_qem(&mesh, 10_000);
        assert_eq!(dec.triangle_count(), mesh.triangle_count());
    }

    #[test]
    fn preserves_shape_better_than_clustering() {
        // At the same triangle budget, QEM's render should be perceptually
        // closer (lower GMSD) to the original than vertex clustering's —
        // the whole point of the algorithm.
        let mesh = Mesh::rock(5, 28, 28);
        let target = mesh.triangle_count() / 6;
        let qem = decimate_qem(&mesh, target);
        let cluster = mesh.decimate(target);
        let opts = RenderOptions {
            resolution: 128,
            ..RenderOptions::default()
        };
        let reference = render_mesh(mesh.vertices(), mesh.triangles(), &opts);
        let g_qem = gmsd(
            &reference,
            &render_mesh(qem.vertices(), qem.triangles(), &opts),
        );
        let g_cluster = gmsd(
            &reference,
            &render_mesh(cluster.vertices(), cluster.triangles(), &opts),
        );
        assert!(
            g_qem <= g_cluster * 1.05,
            "QEM gmsd {g_qem} should not be worse than clustering {g_cluster}"
        );
    }

    #[test]
    fn output_indices_are_valid_and_nondegenerate() {
        let mesh = Mesh::torus(0.3, 24, 18);
        let dec = decimate_qem(&mesh, 200);
        for t in dec.triangles() {
            for &i in t {
                assert!(i < dec.vertices().len());
            }
            assert!(t[0] != t[1] && t[1] != t[2] && t[0] != t[2]);
        }
    }

    #[test]
    fn bounding_radius_is_roughly_preserved() {
        let mesh = Mesh::uv_sphere(30, 30);
        let dec = decimate_qem(&mesh, 300);
        assert!((dec.bounding_radius() - 1.0).abs() < 0.15);
    }

    #[test]
    fn quadric_error_is_zero_on_the_plane() {
        // Points on the plane z = 1 have zero error under its quadric.
        let q = Quadric::from_plane(0.0, 0.0, 1.0, -1.0);
        assert!(q.error([3.0, -2.0, 1.0]).abs() < 1e-12);
        assert!((q.error([0.0, 0.0, 3.0]) - 4.0).abs() < 1e-12);
    }
}
