//! Table II: the virtual-object scenarios used in the paper's evaluation.
//!
//! SC1 is the heavy set (nine objects, ~1.19 M triangles); SC2 the light
//! set (seven objects, ~29 k triangles). The quality parameters below were
//! produced by the [`crate::fit`] pipeline on proxy meshes of matching
//! triangle density (see the `fit_quality_model` example, which
//! regenerates curves of this shape): oversampled high-poly objects have
//! flat error curves, while low-poly objects degrade steeply — which is
//! exactly what makes HBO's sensitivity-weighted distribution matter.

use crate::quality::QualityParams;
use crate::scene::{Scene, VirtualObject};

/// An entry of Table II: one object type with its instance count and
/// full-quality triangle count.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Object name as printed in Table II.
    pub name: &'static str,
    /// Number of instances placed.
    pub count: usize,
    /// Triangles per instance at full quality.
    pub triangles: u64,
    /// Trained Eq. (1) parameters.
    pub params: QualityParams,
    /// Depth multiplier relative to the user's base distance.
    pub distance_factor: f64,
}

/// The SC1 (high triangle count) object catalog of Table II.
pub fn sc1_catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "apricot",
            count: 1,
            triangles: 86_016,
            params: QualityParams::new(0.73, -2.03, 1.30, 1.5),
            distance_factor: 0.8,
        },
        CatalogEntry {
            name: "bike",
            count: 1,
            triangles: 178_552,
            params: QualityParams::new(1.09, -2.83, 1.74, 1.0),
            distance_factor: 1.0,
        },
        CatalogEntry {
            name: "plane",
            count: 4,
            triangles: 146_803,
            params: QualityParams::new(0.78, -1.96, 1.18, 1.2),
            distance_factor: 1.3,
        },
        CatalogEntry {
            name: "splane",
            count: 1,
            triangles: 146_803,
            params: QualityParams::new(0.78, -1.96, 1.18, 1.2),
            distance_factor: 1.5,
        },
        CatalogEntry {
            name: "Cocacola",
            count: 2,
            triangles: 94_080,
            params: QualityParams::new(0.87, -2.18, 1.31, 1.4),
            distance_factor: 0.9,
        },
    ]
}

/// The SC2 (low triangle count) object catalog of Table II.
pub fn sc2_catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "cabin",
            count: 1,
            triangles: 2_324,
            params: QualityParams::new(1.00, -2.20, 1.20, 1.0),
            distance_factor: 1.0,
        },
        CatalogEntry {
            name: "andy",
            count: 2,
            triangles: 2_304,
            params: QualityParams::new(1.20, -2.60, 1.40, 0.9),
            distance_factor: 0.7,
        },
        CatalogEntry {
            name: "ATV",
            count: 2,
            triangles: 4_907,
            params: QualityParams::new(0.90, -2.00, 1.10, 1.1),
            distance_factor: 1.2,
        },
        CatalogEntry {
            name: "hammer",
            count: 2,
            triangles: 6_250,
            params: QualityParams::new(0.80, -1.80, 1.00, 1.0),
            distance_factor: 0.9,
        },
    ]
}

/// Default user distance used by the experiments (meters).
pub const DEFAULT_USER_DISTANCE: f64 = 1.0;

/// Builds a scene from a catalog, placing every instance.
pub fn scene_from_catalog(catalog: &[CatalogEntry], user_distance: f64) -> Scene {
    let mut scene = Scene::new(user_distance);
    for entry in catalog {
        for i in 0..entry.count {
            scene.add_object(VirtualObject::new(
                format!("{}_{}", entry.name, i + 1),
                entry.triangles,
                entry.params,
                entry.distance_factor,
            ));
        }
    }
    scene
}

/// The fully placed SC1 scene at the default user distance.
pub fn sc1() -> Scene {
    scene_from_catalog(&sc1_catalog(), DEFAULT_USER_DISTANCE)
}

/// The fully placed SC2 scene at the default user distance.
pub fn sc2() -> Scene {
    scene_from_catalog(&sc2_catalog(), DEFAULT_USER_DISTANCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc1_matches_table2() {
        let s = sc1();
        assert_eq!(s.len(), 9); // 1 + 1 + 4 + 1 + 2
                                // 86,016 + 178,552 + 4·146,803 + 146,803 + 2·94,080 = 1,186,743.
        assert_eq!(s.total_max_triangles(), 1_186_743);
    }

    #[test]
    fn sc2_matches_table2() {
        let s = sc2();
        assert_eq!(s.len(), 7); // 1 + 2 + 2 + 2
                                // 2,324 + 2·2,304 + 2·4,907 + 2·6,250 = 29,246.
        assert_eq!(s.total_max_triangles(), 29_246);
    }

    #[test]
    fn sc1_is_heavy_sc2_is_light() {
        assert!(sc1().total_max_triangles() > 30 * sc2().total_max_triangles());
    }

    #[test]
    fn all_curves_have_zero_error_at_full_quality() {
        for entry in sc1_catalog().iter().chain(sc2_catalog().iter()) {
            let p = entry.params;
            assert!(
                p.polynomial(1.0).abs() < 1e-9,
                "{}: p(1) = {}",
                entry.name,
                p.polynomial(1.0)
            );
        }
    }

    #[test]
    fn all_curves_are_decreasing_on_unit_interval() {
        for entry in sc1_catalog().iter().chain(sc2_catalog().iter()) {
            let p = entry.params;
            // p'(R) = 2aR + b < 0 on [0, 1] iff 2a + b < 0 (a > 0).
            assert!(
                p.marginal(1.0) > 0.0,
                "{}: error curve not decreasing at R=1",
                entry.name
            );
        }
    }

    #[test]
    fn light_objects_are_more_sensitive_per_triangle() {
        // What drives the TD distribution is the marginal quality gain per
        // *triangle*: a 2.3k-triangle andy gains far more from each triangle
        // than a 147k-triangle plane, even though the plane's polynomial is
        // steeper in the ratio.
        let plane = &sc1_catalog()[2];
        let andy = &sc2_catalog()[1];
        let per_tri = |e: &CatalogEntry, r: f64| e.params.marginal(r) / e.triangles as f64;
        assert!(per_tri(andy, 0.5) > 10.0 * per_tri(plane, 0.5));
    }

    #[test]
    fn full_quality_scene_has_q_one() {
        assert!((sc1().average_quality() - 1.0).abs() < 1e-9);
        assert!((sc2().average_quality() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decimated_sc1_keeps_reasonable_quality() {
        // HBO picks x = 0.72 on SC1-CF1 with Q around 0.87 (Fig. 6c): the
        // trained curves should put us in that ballpark, not at 0.99 or
        // 0.5.
        let mut s = sc1();
        s.distribute_triangles(0.72);
        let q = s.average_quality();
        assert!((0.75..0.99).contains(&q), "Q(0.72) = {q}");
    }
}
