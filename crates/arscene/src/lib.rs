//! AR scene substrate: virtual objects, meshes, decimation, and the
//! virtual-object quality model of the paper (Eq. 1–2).
//!
//! * [`mesh`] — procedural triangle meshes (spheres, tori, displaced
//!   "rocks") with a fast vertex-clustering decimator, plus [`qem`], a
//!   quadric-error-metric edge-collapse simplifier — standing in for the
//!   paper's virtual-object assets and the server-side decimation
//!   algorithm of Fig. 3.
//! * [`quality`] — eAR's degradation model: per-object
//!   `D_err = (a R² + b R + c) / D^d` (Eq. 1) and the scene average
//!   quality `Q` (Eq. 2).
//! * [`fit`] — the offline training pipeline: render decimated meshes with
//!   [`iqa`], measure GMSD, and least-squares fit the `(a, b, c, d)`
//!   parameters.
//! * [`Scene`] — the live scene: objects with triangle budgets, user
//!   distance, backface-cull visibility (what the render loop actually
//!   draws), and the sensitivity-weighted triangle distribution used by
//!   HBO's `TD` function (Algorithm 1, line 23).
//! * [`scenarios`] — Table II: the SC1 (heavy) and SC2 (light) object
//!   sets.
//!
//! # Example
//!
//! ```
//! use arscene::{Scene, scenarios};
//!
//! let mut scene = scenarios::sc1();
//! scene.set_user_distance(2.0);
//! let q_full = scene.average_quality();
//! scene.distribute_triangles(0.5); // give the scene half its triangles
//! assert!(scene.average_quality() <= q_full + 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod mesh;
pub mod qem;
pub mod quality;
pub mod scenarios;
mod scene;

pub use quality::{DegradationModel, QualityParams};
pub use scene::{ObjectId, Scene, VirtualObject};
