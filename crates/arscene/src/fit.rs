//! Offline training of the quality model (Eq. 1), following eAR: decimate
//! the mesh, render both versions, score the degradation with GMSD, and
//! least-squares fit `(a, b, c, d)`.
//!
//! The paper runs this on a server (Fig. 3: "virtual object parameter
//! training"); here it runs on the [`iqa`] software rasterizer. The
//! scenario parameters in [`crate::scenarios`] were produced by this
//! pipeline on proxy meshes (see the `fit_quality_model` example).

use iqa::{gmsd, render_mesh, RenderOptions};

use crate::mesh::Mesh;
use crate::quality::QualityParams;

/// One measured degradation sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Decimation ratio `R` (selected / maximum triangles).
    pub ratio: f64,
    /// User-object distance `D`.
    pub distance: f64,
    /// Normalized degradation error measured by GMSD.
    pub error: f64,
}

/// Quality-of-fit statistics returned with the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitStats {
    /// Residual sum of squares at the chosen `d`.
    pub sse: f64,
    /// Number of samples used.
    pub n: usize,
}

/// Measures degradation samples for `mesh` over grids of decimation
/// ratios and distances.
///
/// The error is GMSD(full render, decimated render) normalized by
/// GMSD(full render, empty frame) at the same distance — i.e. "fraction of
/// the worst possible structural loss", which maps it into `[0, 1]` like
/// eAR's normalized degradation.
///
/// # Panics
///
/// Panics if any grid is empty, or ratios/distances are out of range.
pub fn measure_degradation(
    mesh: &Mesh,
    ratios: &[f64],
    distances: &[f64],
    resolution: usize,
) -> Vec<Sample> {
    assert!(!ratios.is_empty() && !distances.is_empty(), "empty grid");
    let full = mesh.triangle_count();
    assert!(full > 0, "mesh has no triangles");
    let mut samples = Vec::new();
    for &distance in distances {
        assert!(distance > 0.0, "distance must be positive");
        let opts = RenderOptions {
            resolution,
            distance,
            ..RenderOptions::default()
        };
        let reference = render_mesh(mesh.vertices(), mesh.triangles(), &opts);
        let blank = iqa::Image::new(resolution, resolution);
        let worst = gmsd(&reference, &blank).max(1e-9);
        for &ratio in ratios {
            assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");
            let target = ((full as f64 * ratio).round() as usize).max(1);
            let decimated = mesh.decimate(target);
            let img = render_mesh(decimated.vertices(), decimated.triangles(), &opts);
            let error = (gmsd(&reference, &img) / worst).clamp(0.0, 1.0);
            samples.push(Sample {
                ratio,
                distance,
                error,
            });
        }
    }
    samples
}

/// Fits `(a, b, c, d)` of Eq. (1) to measured samples: for each candidate
/// exponent `d` on a grid, `a, b, c` follow from linear least squares of
/// `error ≈ (a R² + b R + c) / D^d`; the `d` with the smallest residual
/// wins.
///
/// # Panics
///
/// Panics if fewer than 4 samples are provided (the model has 4 degrees of
/// freedom).
pub fn fit_params(samples: &[Sample]) -> (QualityParams, FitStats) {
    assert!(samples.len() >= 4, "need at least 4 samples");
    let mut best: Option<(QualityParams, f64)> = None;
    let mut d = 0.25;
    while d <= 3.0 + 1e-9 {
        if let Some((params, sse)) = fit_abc(samples, d) {
            if best.as_ref().is_none_or(|(_, b)| sse < *b) {
                best = Some((params, sse));
            }
        }
        d += 0.25;
    }
    let (params, sse) = best.expect("at least one exponent fits");
    (
        params,
        FitStats {
            sse,
            n: samples.len(),
        },
    )
}

/// Linear least squares for `(a, b, c)` at a fixed exponent `d`, via the
/// 3×3 normal equations. Returns the parameters and the SSE, or `None` if
/// the system is singular.
fn fit_abc(samples: &[Sample], d: f64) -> Option<(QualityParams, f64)> {
    // Basis: phi(R, D) = [R², R, 1] / D^d; target: error.
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for s in samples {
        let w = 1.0 / s.distance.powf(d);
        let phi = [s.ratio * s.ratio * w, s.ratio * w, w];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += phi[i] * phi[j];
            }
            atb[i] += phi[i] * s.error;
        }
    }
    let coeffs = solve3(ata, atb)?;
    let params = QualityParams::new(coeffs[0], coeffs[1], coeffs[2], d);
    let sse = samples
        .iter()
        .map(|s| {
            let pred = params.polynomial(s.ratio) / s.distance.powf(d);
            (pred - s.error) * (pred - s.error)
        })
        .sum();
    Some((params, sse))
}

/// Gaussian elimination with partial pivoting for a 3×3 system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, pk) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for (k, xk) in x.iter().enumerate().skip(row + 1) {
            sum -= a[row][k] * xk;
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates noiseless samples from known parameters.
    fn synthetic(params: QualityParams) -> Vec<Sample> {
        let mut out = Vec::new();
        for &r in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            for &d in &[0.8, 1.2, 2.0, 3.0] {
                out.push(Sample {
                    ratio: r,
                    distance: d,
                    error: (params.polynomial(r) / d.powf(params.d)).clamp(0.0, 1.0),
                });
            }
        }
        out
    }

    #[test]
    fn recovers_known_parameters() {
        let truth = QualityParams::new(0.5, -1.3, 0.8, 1.0);
        let (fitted, stats) = fit_params(&synthetic(truth));
        assert!(stats.sse < 1e-6, "sse = {}", stats.sse);
        assert!((fitted.a - truth.a).abs() < 0.05, "a = {}", fitted.a);
        assert!((fitted.b - truth.b).abs() < 0.05);
        assert!((fitted.c - truth.c).abs() < 0.05);
        assert!((fitted.d - truth.d).abs() < 0.26); // grid resolution
    }

    #[test]
    fn recovers_fractional_exponent() {
        let truth = QualityParams::new(0.3, -0.8, 0.5, 1.5);
        let (fitted, _) = fit_params(&synthetic(truth));
        assert!((fitted.d - 1.5).abs() < 0.26, "d = {}", fitted.d);
    }

    #[test]
    fn solve3_known_system() {
        // x = 1, y = 2, z = 3 for a well-conditioned system.
        let a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        let b = [4.0, 10.0, 8.0];
        let x = solve3(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!((x[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve3_singular_returns_none() {
        let a = [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [0.0, 0.0, 1.0]];
        assert!(solve3(a, [1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn end_to_end_fit_on_a_real_mesh() {
        // Small mesh + low resolution keeps this fast; the point is that
        // the full decimate→render→GMSD→fit pipeline produces a sane,
        // decreasing-in-R degradation model.
        let mesh = Mesh::rock(3, 24, 24);
        let samples = measure_degradation(&mesh, &[0.15, 0.3, 0.5, 0.75, 1.0], &[2.5, 4.0], 96);
        assert_eq!(samples.len(), 10);
        // Errors are in [0, 1] and roughly decreasing in the ratio.
        for s in &samples {
            assert!((0.0..=1.0).contains(&s.error), "{s:?}");
        }
        let (params, _) = fit_params(&samples);
        let m = crate::quality::DegradationModel::new(params);
        assert!(
            m.degradation(0.15, 2.5) >= m.degradation(1.0, 2.5),
            "fitted model should degrade more at lower ratios: {params:?}"
        );
    }

    #[test]
    fn full_quality_samples_have_low_error() {
        let mesh = Mesh::uv_sphere(16, 16);
        let samples = measure_degradation(&mesh, &[1.0], &[3.0], 64);
        assert!(samples[0].error < 0.05, "error = {}", samples[0].error);
    }

    #[test]
    #[should_panic(expected = "at least 4 samples")]
    fn too_few_samples_panics() {
        fit_params(&[Sample {
            ratio: 1.0,
            distance: 1.0,
            error: 0.0,
        }]);
    }
}
