//! A minimal perspective rasterizer: enough of OpenGL to measure how mesh
//! decimation degrades a rendered object at a given viewing distance.

use crate::image::Image;

/// Camera and shading parameters for [`render_mesh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Output resolution (square image).
    pub resolution: usize,
    /// Distance from the camera to the origin, in mesh units. The camera
    /// sits at `(0, 0, distance)` looking down `-z`.
    pub distance: f64,
    /// Vertical field of view in radians.
    pub fov: f64,
    /// Directional light (normalized internally).
    pub light_dir: [f64; 3],
    /// Ambient light level added to the Lambertian term.
    pub ambient: f64,
    /// Cull triangles facing away from the camera (back faces), like
    /// OpenGL's `GL_CULL_FACE` that the paper's activation policy reasons
    /// about.
    pub backface_culling: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            resolution: 160,
            distance: 3.0,
            fov: 0.9,
            light_dir: [0.4, 0.6, 1.0],
            ambient: 0.15,
            backface_culling: true,
        }
    }
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = dot(v, v).sqrt();
    if n == 0.0 {
        v
    } else {
        [v[0] / n, v[1] / n, v[2] / n]
    }
}

/// Renders a triangle mesh to a grayscale image.
///
/// `vertices` are world-space positions; `triangles` index into them
/// (counter-clockwise front faces, as in OpenGL). The camera sits on the
/// `+z` axis at `opts.distance` looking at the origin.
///
/// # Panics
///
/// Panics if a triangle index is out of bounds or `opts.resolution == 0`.
pub fn render_mesh(vertices: &[[f64; 3]], triangles: &[[usize; 3]], opts: &RenderOptions) -> Image {
    assert!(opts.resolution > 0, "resolution must be positive");
    let res = opts.resolution;
    let mut img = Image::new(res, res);
    let mut zbuf = vec![f64::NEG_INFINITY; res * res];
    let light = normalize(opts.light_dir);
    let focal = 1.0 / (opts.fov / 2.0).tan();
    let half = res as f64 / 2.0;

    // Project a world-space point to (pixel x, pixel y, camera-space z).
    let project = |p: [f64; 3]| -> Option<[f64; 3]> {
        let z_cam = opts.distance - p[2]; // distance from camera along view axis
        if z_cam <= 1e-9 {
            return None; // behind the camera
        }
        let sx = half + focal * p[0] / z_cam * half;
        let sy = half - focal * p[1] / z_cam * half;
        Some([sx, sy, -z_cam])
    };

    for tri in triangles {
        let [i0, i1, i2] = *tri;
        let (v0, v1, v2) = (vertices[i0], vertices[i1], vertices[i2]);
        let normal = normalize(cross(sub(v1, v0), sub(v2, v0)));
        // View direction from triangle towards the camera (camera on +z).
        if opts.backface_culling && normal[2] <= 0.0 {
            continue;
        }
        let (Some(p0), Some(p1), Some(p2)) = (project(v0), project(v1), project(v2)) else {
            continue;
        };
        let shade =
            (opts.ambient + (1.0 - opts.ambient) * dot(normal, light).max(0.0)).clamp(0.0, 1.0);

        // Bounding box clipped to the viewport.
        let min_x = p0[0].min(p1[0]).min(p2[0]).floor().max(0.0) as usize;
        let max_x =
            (p0[0].max(p1[0]).max(p2[0]).ceil() as isize).clamp(0, res as isize - 1) as usize;
        let min_y = p0[1].min(p1[1]).min(p2[1]).floor().max(0.0) as usize;
        let max_y =
            (p0[1].max(p1[1]).max(p2[1]).ceil() as isize).clamp(0, res as isize - 1) as usize;
        if min_x > max_x || min_y > max_y {
            continue;
        }

        let area = (p1[0] - p0[0]) * (p2[1] - p0[1]) - (p2[0] - p0[0]) * (p1[1] - p0[1]);
        if area.abs() < 1e-12 {
            continue; // degenerate in screen space
        }

        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let px = x as f64 + 0.5;
                let py = y as f64 + 0.5;
                let w0 = ((p1[0] - px) * (p2[1] - py) - (p2[0] - px) * (p1[1] - py)) / area;
                let w1 = ((p2[0] - px) * (p0[1] - py) - (p0[0] - px) * (p2[1] - py)) / area;
                let w2 = 1.0 - w0 - w1;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w0 * p0[2] + w1 * p1[2] + w2 * p2[2];
                let idx = y * res + x;
                if depth > zbuf[idx] {
                    zbuf[idx] = depth;
                    img.set(x, y, shade);
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A front-facing unit quad at z = 0.
    fn quad() -> (Vec<[f64; 3]>, Vec<[usize; 3]>) {
        (
            vec![
                [-0.5, -0.5, 0.0],
                [0.5, -0.5, 0.0],
                [0.5, 0.5, 0.0],
                [-0.5, 0.5, 0.0],
            ],
            vec![[0, 1, 2], [0, 2, 3]],
        )
    }

    #[test]
    fn renders_something() {
        let (v, t) = quad();
        let img = render_mesh(&v, &t, &RenderOptions::default());
        assert!(img.coverage(0.01) > 0.02, "quad should cover pixels");
    }

    #[test]
    fn empty_mesh_renders_black() {
        let img = render_mesh(&[], &[], &RenderOptions::default());
        assert_eq!(img.mean(), 0.0);
    }

    #[test]
    fn farther_objects_cover_fewer_pixels() {
        let (v, t) = quad();
        let near = render_mesh(
            &v,
            &t,
            &RenderOptions {
                distance: 2.0,
                ..RenderOptions::default()
            },
        );
        let far = render_mesh(
            &v,
            &t,
            &RenderOptions {
                distance: 6.0,
                ..RenderOptions::default()
            },
        );
        assert!(near.coverage(0.01) > 2.0 * far.coverage(0.01));
    }

    #[test]
    fn backface_culling_removes_back_faces() {
        let (v, mut t) = quad();
        // Reverse winding so the quad faces away.
        for tri in &mut t {
            tri.swap(0, 2);
        }
        let culled = render_mesh(&v, &t, &RenderOptions::default());
        assert_eq!(culled.mean(), 0.0);
        let unculled = render_mesh(
            &v,
            &t,
            &RenderOptions {
                backface_culling: false,
                ..RenderOptions::default()
            },
        );
        assert!(unculled.coverage(0.01) > 0.0);
    }

    #[test]
    fn zbuffer_keeps_the_nearer_surface() {
        // Two quads: a bright one near (z = 0.5, normal towards camera,
        // bright shading via light) and one behind (z = -0.5).
        let verts = vec![
            [-0.5, -0.5, 0.5],
            [0.5, -0.5, 0.5],
            [0.5, 0.5, 0.5],
            [-0.5, 0.5, 0.5],
            [-0.5, -0.5, -0.5],
            [0.5, -0.5, -0.5],
            [0.5, 0.5, -0.5],
            [-0.5, 0.5, -0.5],
        ];
        let tris = vec![[0, 1, 2], [0, 2, 3], [4, 5, 6], [4, 6, 7]];
        let img = render_mesh(&verts, &tris, &RenderOptions::default());
        // Both quads have the same normal and shade; ensure center pixel is
        // shaded (front quad visible) and deterministic regardless of order.
        let tris_rev: Vec<[usize; 3]> = tris.iter().rev().cloned().collect();
        let img_rev = render_mesh(&verts, &tris_rev, &RenderOptions::default());
        assert_eq!(img, img_rev);
    }

    #[test]
    fn behind_camera_geometry_is_skipped() {
        let verts = vec![[0.0, 0.0, 10.0], [1.0, 0.0, 10.0], [0.0, 1.0, 10.0]];
        let img = render_mesh(
            &verts,
            &[[0, 1, 2]],
            &RenderOptions {
                distance: 3.0,
                ..RenderOptions::default()
            },
        );
        assert_eq!(img.mean(), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_index_panics() {
        render_mesh(&[[0.0; 3]], &[[0, 1, 2]], &RenderOptions::default());
    }
}
