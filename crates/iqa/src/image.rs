//! Grayscale float images.

/// A grayscale image with `f64` pixels in `[0, 1]` (not enforced — gradient
/// code tolerates any finite values).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// Reads with clamp-to-edge addressing (used by convolution kernels).
    pub fn get_clamped(&self, x: isize, y: isize) -> f64 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// The raw pixel buffer, row-major.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }

    /// Fraction of pixels strictly above `threshold` (useful to measure
    /// object coverage of the frame).
    pub fn coverage(&self, threshold: f64) -> f64 {
        self.pixels.iter().filter(|&&p| p > threshold).count() as f64 / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.pixels().iter().all(|&p| p == 0.0));
        assert_eq!(img.mean(), 0.0);
    }

    #[test]
    fn from_fn_and_accessors() {
        let img = Image::from_fn(3, 2, |x, y| (x + 10 * y) as f64);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn set_then_get() {
        let mut img = Image::new(2, 2);
        img.set(1, 1, 0.5);
        assert_eq!(img.get(1, 1), 0.5);
    }

    #[test]
    fn clamped_addressing() {
        let img = Image::from_fn(2, 2, |x, y| (x + 2 * y) as f64);
        assert_eq!(img.get_clamped(-5, 0), 0.0);
        assert_eq!(img.get_clamped(10, 10), 3.0);
    }

    #[test]
    fn coverage_counts_bright_pixels() {
        let img = Image::from_fn(2, 2, |x, _| x as f64);
        assert_eq!(img.coverage(0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_panics() {
        Image::new(0, 1);
    }
}
