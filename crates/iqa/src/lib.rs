//! Image-quality substrate: a tiny software rasterizer and the GMSD
//! perceptual index.
//!
//! The paper borrows eAR's virtual-object quality model (Eq. 1), whose
//! per-object parameters are *trained offline* by comparing renders of
//! decimated meshes against full-quality renders with an image quality
//! assessment method — Gradient Magnitude Similarity Deviation
//! (Xue et al., IEEE TIP 2013). With no GPU or OpenGL available, this crate
//! supplies the same pipeline in software:
//!
//! * [`Image`] — a grayscale float image.
//! * [`render_mesh`] — perspective projection, backface culling, z-buffered
//!   barycentric rasterization, Lambertian shading of a triangle mesh.
//! * [`gmsd`] — the GMSD index between a reference and a distorted image
//!   (0 = identical; larger = more perceptual degradation).
//!
//! # Example
//!
//! ```
//! use iqa::{gmsd, render_mesh, RenderOptions};
//!
//! // A unit quad made of two triangles.
//! let verts = [
//!     [-0.5, -0.5, 0.0], [0.5, -0.5, 0.0], [0.5, 0.5, 0.0], [-0.5, 0.5, 0.0],
//! ];
//! let tris = [[0, 1, 2], [0, 2, 3]];
//! let opts = RenderOptions::default();
//! let a = render_mesh(&verts, &tris, &opts);
//! let b = render_mesh(&verts, &tris, &opts);
//! assert!(gmsd(&a, &b) < 1e-9); // identical renders have zero deviation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gms;
mod image;
mod raster;

pub use gms::{gms_map, gmsd};
pub use image::Image;
pub use raster::{render_mesh, RenderOptions};
