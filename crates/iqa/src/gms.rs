//! Gradient Magnitude Similarity Deviation (Xue, Zhang, Mou, Bovik 2013).

use crate::image::Image;

/// Stability constant of the GMS formula, scaled for pixel values in
/// `[0, 1]` (the original paper uses `c = 170` for `[0, 255]` images;
/// `170 / 255² ≈ 0.0026`).
const GMS_C: f64 = 0.0026;

/// Prewitt gradient magnitude at every pixel.
fn gradient_magnitude(img: &Image) -> Image {
    let (w, h) = (img.width(), img.height());
    Image::from_fn(w, h, |x, y| {
        let (x, y) = (x as isize, y as isize);
        let p = |dx: isize, dy: isize| img.get_clamped(x + dx, y + dy);
        // Prewitt kernels, 1/3-normalized as in the GMSD paper.
        let gx = (p(1, -1) + p(1, 0) + p(1, 1) - p(-1, -1) - p(-1, 0) - p(-1, 1)) / 3.0;
        let gy = (p(-1, 1) + p(0, 1) + p(1, 1) - p(-1, -1) - p(0, -1) - p(1, -1)) / 3.0;
        (gx * gx + gy * gy).sqrt()
    })
}

/// The gradient-magnitude-similarity map between a reference and a
/// distorted image: `GMS = (2 g_r g_d + c) / (g_r² + g_d² + c)`, one value
/// per pixel in `(0, 1]` (1 = locally identical structure).
///
/// # Panics
///
/// Panics if the images have different dimensions.
pub fn gms_map(reference: &Image, distorted: &Image) -> Image {
    assert_eq!(
        (reference.width(), reference.height()),
        (distorted.width(), distorted.height()),
        "image dimensions must match"
    );
    let gr = gradient_magnitude(reference);
    let gd = gradient_magnitude(distorted);
    Image::from_fn(reference.width(), reference.height(), |x, y| {
        let r = gr.get(x, y);
        let d = gd.get(x, y);
        (2.0 * r * d + GMS_C) / (r * r + d * d + GMS_C)
    })
}

/// The GMSD index: the standard deviation of the GMS map. `0` for
/// identical images; grows with perceptual degradation. A highly efficient
/// perceptual metric, which is why eAR (and therefore the paper's quality
/// model) uses it to train Eq. (1).
///
/// # Panics
///
/// Panics if the images have different dimensions.
///
/// # Example
///
/// ```
/// use iqa::{gmsd, Image};
///
/// let a = Image::from_fn(16, 16, |x, _| (x % 2) as f64);
/// let blurred = Image::from_fn(16, 16, |_, _| 0.5);
/// assert!(gmsd(&a, &a) < 1e-12);
/// assert!(gmsd(&a, &blurred) > 0.05);
/// ```
pub fn gmsd(reference: &Image, distorted: &Image) -> f64 {
    let map = gms_map(reference, distorted);
    let mean = map.mean();
    let var = map
        .pixels()
        .iter()
        .map(|&v| (v - mean) * (v - mean))
        .sum::<f64>()
        / map.pixels().len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(w: usize, h: usize, period: usize) -> Image {
        Image::from_fn(w, h, |x, _| ((x / period) % 2) as f64)
    }

    #[test]
    fn identical_images_have_zero_gmsd() {
        let img = stripes(32, 32, 3);
        assert!(gmsd(&img, &img) < 1e-12);
    }

    #[test]
    fn gmsd_is_symmetric() {
        let a = stripes(32, 32, 3);
        let b = stripes(32, 32, 5);
        assert!((gmsd(&a, &b) - gmsd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn heavier_distortion_scores_worse() {
        let reference = stripes(64, 64, 2);
        let mild = Image::from_fn(64, 64, |x, y| 0.8 * reference.get(x, y) + 0.1);
        let severe = Image::from_fn(64, 64, |_, _| 0.5);
        let g_mild = gmsd(&reference, &mild);
        let g_severe = gmsd(&reference, &severe);
        assert!(
            g_severe > g_mild,
            "severe ({g_severe}) should exceed mild ({g_mild})"
        );
    }

    #[test]
    fn gms_map_values_in_unit_interval() {
        let a = stripes(16, 16, 2);
        let b = stripes(16, 16, 4);
        let map = gms_map(&a, &b);
        assert!(map.pixels().iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-12));
    }

    #[test]
    fn flat_images_are_perfectly_similar() {
        // No gradients anywhere: GMS = c/c = 1 at every pixel.
        let a = Image::from_fn(8, 8, |_, _| 0.3);
        let b = Image::from_fn(8, 8, |_, _| 0.9);
        assert!(gmsd(&a, &b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn size_mismatch_panics() {
        gmsd(&Image::new(4, 4), &Image::new(5, 4));
    }

    #[test]
    fn gradient_magnitude_flags_edges() {
        let img = Image::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let g = gradient_magnitude(&img);
        // Strong gradient at the edge column, none far from it.
        assert!(g.get(4, 4) > 0.5);
        assert!(g.get(1, 4) < 1e-12);
    }
}
