//! Property tests for the discrete-event engine's ordering guarantees,
//! run on the in-tree `simcore::check` framework.

use simcore::check::{self, u64s, vec};
use simcore::{prop_assert, prop_assert_eq};
use simcore::{EventQueue, SimDuration, SimTime, Simulator};

/// Whatever the insertion order, events pop in non-decreasing time
/// order, with FIFO among ties.
#[test]
fn pops_sorted_with_fifo_ties() {
    check::check(
        "pops_sorted_with_fifo_ties",
        vec(u64s(0..50), 1..64),
        |times| {
            let mut q = EventQueue::new();
            for (seq, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), (t, seq));
            }
            let mut last: Option<(u64, usize)> = None;
            while let Some((time, (t, seq))) = q.pop() {
                prop_assert_eq!(time, SimTime::from_nanos(t));
                if let Some((lt, lseq)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(seq > lseq, "FIFO violated among ties");
                    }
                }
                last = Some((t, seq));
            }
            Ok(())
        },
    );
}

/// The simulator dispatches every event scheduled before the deadline
/// exactly once and leaves the rest pending.
#[test]
fn run_until_is_a_clean_partition() {
    check::check(
        "run_until_is_a_clean_partition",
        (vec(u64s(0..1_000), 1..64), u64s(0..1_000)),
        |(times, cut)| {
            let mut sim = Simulator::new();
            for &t in times {
                sim.schedule(SimTime::from_nanos(t), t);
            }
            let mut seen = Vec::new();
            sim.run_until(SimTime::from_nanos(*cut), |_, t| seen.push(t));
            let expected = times.iter().filter(|&&t| t <= *cut).count();
            prop_assert_eq!(seen.len(), expected);
            prop_assert_eq!(sim.pending(), times.len() - expected);
            for t in seen {
                prop_assert!(t <= *cut);
            }
            Ok(())
        },
    );
}

/// Chained self-scheduling advances time monotonically.
#[test]
fn chained_events_never_go_backwards() {
    check::check(
        "chained_events_never_go_backwards",
        vec(u64s(1..1_000_000), 1..32),
        |steps| {
            let mut sim = Simulator::new();
            sim.schedule(SimTime::ZERO, 0usize);
            let mut stamps = Vec::new();
            let steps_ref = steps.clone();
            sim.run_until(SimTime::MAX, |sched, idx| {
                stamps.push(sched.now());
                if idx < steps_ref.len() {
                    sched.schedule_after(SimDuration::from_nanos(steps_ref[idx]), idx + 1);
                }
            });
            prop_assert_eq!(stamps.len(), steps.len() + 1);
            for w in stamps.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            Ok(())
        },
    );
}
