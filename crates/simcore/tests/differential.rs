//! Differential suite: `CalendarQueue` must be observationally identical
//! to `EventQueue` — same `(time, seq, event)` pop sequence, same
//! `peek_time`, same `len`, same `next_seq` — under arbitrary
//! schedule/pop/clear interleavings. This is the invariant that lets the
//! simulators pick a queue implementation as a pure performance knob
//! without perturbing a single RNG draw or published figure.

use simcore::check;
use simcore::prop_assert_eq;
use simcore::{CalendarQueue, EventQueue, FutureEventList, SimTime};

/// One step of a queue workload. Decoded from a `(selector, a, b)` u64
/// triple so the property framework's shrinker applies directly.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule `count` events at `time` (same-instant burst when
    /// `count` is large).
    Schedule { time: u64, count: u64 },
    /// Schedule one far-future outlier at `time << shift` — lands in the
    /// calendar overflow list and, in volume, forces resizes.
    ScheduleFar { time: u64, shift: u32 },
    /// Pop up to `count` events, checking each against the twin.
    Pop { count: u64 },
    /// Peek without popping.
    Peek,
    /// Drop everything (sequence counters must survive).
    Clear,
}

fn decode(step: &(u64, u64, u64)) -> Op {
    let (sel, a, b) = *step;
    match sel % 16 {
        // Scheduling dominates so queues actually fill up.
        0..=5 => Op::Schedule {
            time: a % 1_000_000,
            count: 1 + b % 4,
        },
        // Occasional large same-instant burst.
        6 => Op::Schedule {
            time: a % 1_000_000,
            count: 64 + b % 200,
        },
        7..=8 => Op::ScheduleFar {
            time: a,
            shift: (b % 24) as u32,
        },
        9..=12 => Op::Pop { count: 1 + b % 48 },
        13..=14 => Op::Peek,
        _ => Op::Clear,
    }
}

/// Drives both queues through the same op sequence, asserting lockstep
/// observational equality after every step.
fn run_differential(ops: &[(u64, u64, u64)]) -> Result<(), String> {
    let mut heap: EventQueue<u64> = EventQueue::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut payload = 0u64;
    for step in ops {
        match decode(step) {
            Op::Schedule { time, count } => {
                for i in 0..count {
                    let t = SimTime::from_nanos(time + i % 3);
                    heap.schedule(t, payload);
                    cal.schedule(t, payload);
                    payload += 1;
                }
            }
            Op::ScheduleFar { time, shift } => {
                let t = SimTime::from_nanos(time.saturating_mul(1 << shift));
                heap.schedule(t, payload);
                cal.schedule(t, payload);
                payload += 1;
            }
            Op::Pop { count } => {
                for _ in 0..count {
                    // Schedule-while-popping: peek first, then pop, then
                    // sometimes schedule at exactly the popped time (the
                    // soonest legal instant) — the hostile case for FIFO
                    // tie-breaking and for the calendar hand.
                    prop_assert_eq!(heap.peek_time(), cal.peek_time());
                    let h = heap.pop_entry();
                    let c = cal.pop_entry();
                    prop_assert_eq!(h, c, "pop diverged: heap={h:?} calendar={c:?}");
                    if let Some((t, seq, _)) = h {
                        if seq % 3 == 0 {
                            heap.schedule(t, payload);
                            cal.schedule(t, payload);
                            payload += 1;
                        }
                    } else {
                        break;
                    }
                }
            }
            Op::Peek => {
                prop_assert_eq!(heap.peek_time(), cal.peek_time());
            }
            Op::Clear => {
                heap.clear();
                cal.clear();
            }
        }
        prop_assert_eq!(heap.len(), cal.len());
        prop_assert_eq!(heap.is_empty(), cal.is_empty());
        prop_assert_eq!(heap.next_seq(), cal.next_seq());
    }
    // Final full drain must agree entry-for-entry.
    loop {
        let h = heap.pop_entry();
        let c = cal.pop_entry();
        prop_assert_eq!(h, c, "drain diverged: heap={h:?} calendar={c:?}");
        if h.is_none() {
            break;
        }
    }
    Ok(())
}

#[test]
fn calendar_matches_heap_under_random_interleavings() {
    let ops = check::vec(
        (check::u64s(0..), check::u64s(0..), check::u64s(0..)),
        1..120,
    );
    check::check("calendar_matches_heap", ops, |ops| run_differential(ops));
}

/// Deterministic worst cases the random sweep might under-sample.
#[test]
fn calendar_matches_heap_on_targeted_workloads() {
    // Large same-instant burst straddling pops.
    let mut ops: Vec<(u64, u64, u64)> = vec![(6, 500, 190), (9, 0, 20), (6, 500, 190), (9, 0, 500)];
    // Far-future outliers that force growth, then drain (forces shrink
    // plus overflow migration).
    for i in 0..40 {
        ops.push((7, i + 1, 23));
        ops.push((0, i * 13, 3));
    }
    ops.push((9, 0, 4000));
    // Clear mid-run, then rebuild a population.
    ops.push((15, 0, 0));
    for i in 0..30 {
        ops.push((0, i * 97, 3));
    }
    run_differential(&ops).unwrap();
}

/// The trait-object view: both implementations behind `&mut dyn
/// FutureEventList` behave identically (guards against the trait's
/// default methods diverging from the inherent ones).
#[test]
fn trait_dispatch_matches_inherent_behavior() {
    let mut heap: EventQueue<u32> = EventQueue::new();
    let mut cal: CalendarQueue<u32> = CalendarQueue::new();
    {
        let queues: [&mut dyn FutureEventList<u32>; 2] = [&mut heap, &mut cal];
        for q in queues {
            for i in 0..50 {
                q.schedule(SimTime::from_nanos((i * 31) % 97), i as u32);
            }
        }
    }
    let mut drained = Vec::new();
    loop {
        let h = FutureEventList::pop(&mut heap);
        let c = FutureEventList::pop(&mut cal);
        assert_eq!(h, c);
        match h {
            Some(entry) => drained.push(entry),
            None => break,
        }
    }
    assert_eq!(drained.len(), 50);
}

/// Satellite regression: neither implementation may reset its sequence
/// counter on `clear()`. A reset would re-issue seq numbers after a
/// mid-run clear and silently reorder same-time events relative to any
/// `(time, seq)` identity established before the clear.
#[test]
fn clear_preserves_next_seq_on_both_implementations() {
    fn exercise<Q: FutureEventList<u8>>(mut q: Q) {
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(10), 2);
        q.schedule(SimTime::from_nanos(10), 3);
        assert_eq!(q.next_seq(), 3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_seq(), 3, "clear must not reset next_seq");
        q.schedule(SimTime::from_nanos(10), 4);
        q.schedule(SimTime::from_nanos(10), 5);
        let (_, s4, e4) = q.pop_entry().unwrap();
        let (_, s5, e5) = q.pop_entry().unwrap();
        assert_eq!(
            (s4, e4),
            (3, 4),
            "post-clear seq must continue, not restart"
        );
        assert_eq!((s5, e5), (4, 5));
    }
    exercise(EventQueue::new());
    exercise(CalendarQueue::new());
}

/// Property flavor of the same regression: after any schedule/clear
/// prefix, both queues agree on `next_seq` and it equals the total
/// number of schedules ever issued.
#[test]
fn check_next_seq_counts_every_schedule_across_clears() {
    let ops = check::vec((check::u64s(0..10), check::u64s(0..50)), 1..60);
    check::check("next_seq_across_clears", ops, |ops| {
        let mut heap: EventQueue<()> = EventQueue::new();
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        let mut scheduled = 0u64;
        for &(sel, t) in ops {
            if sel == 0 {
                heap.clear();
                cal.clear();
            } else {
                heap.schedule(SimTime::from_nanos(t), ());
                cal.schedule(SimTime::from_nanos(t), ());
                scheduled += 1;
            }
            prop_assert_eq!(heap.next_seq(), scheduled);
            prop_assert_eq!(cal.next_seq(), scheduled);
        }
        Ok(())
    });
}
