//! Slab/free-list arena with generational handles, for per-event hot
//! state that would otherwise live in per-event heap allocations or
//! hash maps.
//!
//! Slots are recycled through a free list, so steady-state usage does
//! zero heap allocation: once the arena has grown to the high-water mark
//! of concurrently-live values, `alloc`/`free` are push/pop on a `Vec`.
//! Handles are generational — freeing a slot bumps its generation, so a
//! stale [`Handle`] held across a free is detected (`get` panics,
//! `try_get`/`try_free` return `None`) instead of silently reading the
//! next tenant's state.
//!
//! Freeing removes the value from the slot (`Option::take`), which is
//! the poison: there is no way to read a freed value through any handle,
//! stale or fresh, in any build profile. `simcore` forbids `unsafe`, so
//! this is byte-poisoning's safe equivalent.
//!
//! Determinism: slot assignment depends only on the sequence of
//! `alloc`/`free` calls (free list is LIFO), so identical event streams
//! produce identical handles — safe to fold into anything that must stay
//! bit-reproducible.

/// A generational reference to an arena slot.
///
/// Encodable as a `u64` ([`Handle::to_raw`]) so simulators can carry it
/// inside event payloads and job keys without making those types
/// generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl Handle {
    /// Packs the handle into a `u64` (`gen` in the high 32 bits).
    pub fn to_raw(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.idx)
    }

    /// Unpacks a handle produced by [`Handle::to_raw`].
    pub fn from_raw(raw: u64) -> Self {
        Handle {
            idx: raw as u32,
            gen: (raw >> 32) as u32,
        }
    }

    /// The slot index (stable for the lifetime of the allocation).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// Growable slab with LIFO free-list recycling and generation checks.
/// See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    /// High-water mark of concurrently-live values, for memory
    /// accounting. Monotone: [`Arena::clear`] retires values but the
    /// peak records what the arena once had to hold.
    peak_live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            peak_live: 0,
        }
    }

    /// Creates an empty arena with room for `cap` values before the
    /// first growth reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            gens: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            peak_live: 0,
        }
    }

    /// Stores `value`, recycling the most recently freed slot if one
    /// exists, and returns its handle.
    pub fn alloc(&mut self, value: T) -> Handle {
        let handle = if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            debug_assert!(self.slots[i].is_none(), "free-listed slot still occupied");
            self.slots[i] = Some(value);
            Handle {
                idx,
                gen: self.gens[i],
            }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena slot count exceeds u32");
            self.slots.push(Some(value));
            self.gens.push(0);
            Handle { idx, gen: 0 }
        };
        self.peak_live = self.peak_live.max(self.live());
        handle
    }

    /// Returns a reference to the value at `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale (freed, or from before a [`clear`](Arena::clear)).
    pub fn get(&self, h: Handle) -> &T {
        self.try_get(h).expect("stale arena handle")
    }

    /// Returns a mutable reference to the value at `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale.
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        match self.slots.get_mut(h.idx as usize) {
            Some(slot) if self.gens[h.idx as usize] == h.gen => {
                slot.as_mut().expect("stale arena handle")
            }
            _ => panic!("stale arena handle"),
        }
    }

    /// Returns the value at `h`, or `None` if the handle is stale.
    pub fn try_get(&self, h: Handle) -> Option<&T> {
        let i = h.idx as usize;
        if self.gens.get(i) == Some(&h.gen) {
            self.slots[i].as_ref()
        } else {
            None
        }
    }

    /// True if `h` still refers to a live value.
    pub fn contains(&self, h: Handle) -> bool {
        self.try_get(h).is_some()
    }

    /// Frees the slot at `h` and returns its value. The slot's
    /// generation is bumped (invalidating `h` and any copies) and the
    /// slot joins the free list.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale (double-free).
    pub fn free(&mut self, h: Handle) -> T {
        self.try_free(h).expect("stale arena handle (double free?)")
    }

    /// Frees the slot at `h` if the handle is still live; returns `None`
    /// on a stale handle instead of panicking. The defensive flavor for
    /// paths where a value may have been legitimately retired already.
    pub fn try_free(&mut self, h: Handle) -> Option<T> {
        let i = h.idx as usize;
        if self.gens.get(i) != Some(&h.gen) {
            return None;
        }
        let value = self.slots[i].take()?;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.idx);
        Some(value)
    }

    /// Number of live values.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// Total slots (live + free) — the high-water mark of concurrent
    /// liveness.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// High-water mark of concurrently-live values over the arena's
    /// whole life (unlike [`Arena::capacity`], unaffected by free-list
    /// bookkeeping and never reset by [`Arena::clear`]).
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Bytes held by currently-live values (`live × size_of::<T>()`).
    pub fn live_bytes(&self) -> usize {
        self.live() * std::mem::size_of::<T>()
    }

    /// Bytes held by the peak number of concurrently-live values.
    pub fn peak_bytes(&self) -> usize {
        self.peak_live * std::mem::size_of::<T>()
    }

    /// Bytes of backing storage currently allocated (slot, generation,
    /// and free-list vectors at their reserved capacities) — the
    /// arena's actual footprint, as opposed to the bytes its live
    /// values occupy.
    pub fn footprint_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<T>>()
            + self.gens.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Frees every live value, bumping each freed slot's generation so
    /// all outstanding handles go stale. Slot storage is retained for
    /// reuse. Free-list order after a clear is the reverse slot order,
    /// deterministically.
    pub fn clear(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].take().is_some() {
                self.gens[i] = self.gens[i].wrapping_add(1);
                self.free.push(i as u32);
            }
        }
    }

    /// Iterates over live `(Handle, &T)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().map(|v| {
                (
                    Handle {
                        idx: i as u32,
                        gen: self.gens[i],
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::{prop_assert, prop_assert_eq};

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a = Arena::new();
        let h = a.alloc(41);
        *a.get_mut(h) += 1;
        assert_eq!(*a.get(h), 42);
        assert_eq!(a.live(), 1);
        assert_eq!(a.free(h), 42);
        assert_eq!(a.live(), 0);
        assert!(!a.contains(h));
    }

    #[test]
    fn recycled_slot_never_leaks_prior_state() {
        let mut a = Arena::new();
        let h1 = a.alloc("secret");
        a.free(h1);
        let h2 = a.alloc("fresh");
        assert_eq!(h2.index(), h1.index(), "slot must be recycled");
        assert_ne!(h2, h1, "generation must differ");
        assert!(
            a.try_get(h1).is_none(),
            "old handle must not see new tenant"
        );
        assert_eq!(*a.get(h2), "fresh");
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_get_panics() {
        let mut a = Arena::new();
        let h = a.alloc(1);
        a.free(h);
        let _ = a.get(h);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Arena::new();
        let h = a.alloc(1);
        a.free(h);
        a.free(h);
    }

    #[test]
    fn try_free_is_defensive() {
        let mut a = Arena::new();
        let h = a.alloc(7);
        assert_eq!(a.try_free(h), Some(7));
        assert_eq!(a.try_free(h), None);
    }

    #[test]
    fn growth_keeps_existing_handles_stable() {
        let mut a = Arena::with_capacity(2);
        let handles: Vec<Handle> = (0..1000u32).map(|i| a.alloc(i)).collect();
        // Growth has reallocated the slot vec several times; every early
        // handle must still resolve to its original value.
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(*a.get(*h), i as u32);
            assert_eq!(h.index(), i);
        }
        assert_eq!(a.capacity(), 1000);
    }

    #[test]
    fn clear_invalidates_all_handles_and_recycles_slots() {
        let mut a = Arena::new();
        let hs: Vec<Handle> = (0..10).map(|i| a.alloc(i)).collect();
        a.clear();
        assert_eq!(a.live(), 0);
        assert_eq!(a.capacity(), 10, "storage retained");
        for h in &hs {
            assert!(a.try_get(*h).is_none(), "pre-clear handle must be stale");
        }
        let h = a.alloc(99);
        assert!(h.index() < 10, "cleared slots are recycled, not appended");
        assert_eq!(*a.get(h), 99);
    }

    #[test]
    fn peak_tracks_high_water_mark_across_free_and_clear() {
        let mut a: Arena<u64> = Arena::new();
        assert_eq!(a.peak_live(), 0);
        let hs: Vec<Handle> = (0..8).map(|i| a.alloc(i)).collect();
        assert_eq!(a.peak_live(), 8);
        for h in &hs {
            a.free(*h);
        }
        assert_eq!(a.live(), 0);
        assert_eq!(a.peak_live(), 8, "peak survives frees");
        a.clear();
        assert_eq!(a.peak_live(), 8, "peak survives clear");
        // Refilling below the old peak does not move it; exceeding does.
        for i in 0..4 {
            a.alloc(i);
        }
        assert_eq!(a.peak_live(), 8);
        for i in 0..8 {
            a.alloc(i);
        }
        assert_eq!(a.peak_live(), 12);
        assert_eq!(a.peak_bytes(), 12 * std::mem::size_of::<u64>());
        assert_eq!(a.live_bytes(), 12 * std::mem::size_of::<u64>());
        assert!(a.footprint_bytes() >= 12 * std::mem::size_of::<Option<u64>>());
    }

    #[test]
    fn raw_roundtrip() {
        let h = Handle { idx: 123, gen: 456 };
        assert_eq!(Handle::from_raw(h.to_raw()), h);
    }

    /// Property: under random alloc/free/clear interleavings, a freed or
    /// cleared slot never leaks prior state — every live handle reads
    /// back exactly the value it was allocated with, and every retired
    /// handle is stale. Mirrors a HashMap<u64, T> model.
    #[test]
    fn check_arena_matches_hashmap_model() {
        use std::collections::HashMap;
        let ops = check::vec(check::u64s(0..100), 1..400);
        check::check("arena_matches_hashmap_model", ops, |ops| {
            let mut arena: Arena<u64> = Arena::new();
            let mut model: HashMap<Handle, u64> = HashMap::new();
            let mut next_value = 0u64;
            let mut retired: Vec<Handle> = Vec::new();
            for &op in ops {
                match op % 10 {
                    // 60%: alloc
                    0..=5 => {
                        let h = arena.alloc(next_value);
                        prop_assert!(
                            model.insert(h, next_value).is_none(),
                            "handle reused while live"
                        );
                        next_value += 1;
                    }
                    // 30%: free a pseudo-random live handle
                    6..=8 => {
                        if !model.is_empty() {
                            let mut keys: Vec<Handle> = model.keys().copied().collect();
                            keys.sort();
                            let h = keys[(op as usize / 10) % keys.len()];
                            let expect = model.remove(&h).unwrap();
                            prop_assert_eq!(arena.free(h), expect);
                            retired.push(h);
                        }
                    }
                    // 10%: clear
                    _ => {
                        arena.clear();
                        retired.extend(model.keys().copied());
                        model.clear();
                    }
                }
                prop_assert_eq!(arena.live(), model.len());
                for (h, v) in &model {
                    prop_assert_eq!(arena.try_get(*h), Some(v));
                }
                for h in &retired {
                    prop_assert!(
                        arena.try_get(*h).is_none(),
                        "retired handle must never resolve"
                    );
                }
            }
            Ok(())
        });
    }
}
