//! `simcore::trace` — deterministic span/counter tracing for the DES stack.
//!
//! The design goals, in priority order:
//!
//! 1. **Zero overhead when disabled.** A [`Tracer`] is a cloneable handle
//!    that is empty by default; every emit method starts with one
//!    predictable `Option` branch and returns immediately. Names and
//!    arguments that require allocation must be built by the caller
//!    *behind* [`Tracer::is_enabled`], so the disabled hot path never
//!    allocates.
//! 2. **Full determinism.** Records carry simulated time only
//!    ([`SimTime`] nanoseconds) — never wall-clock time — and are kept in
//!    emit order. Track ids are assigned in registration order. The
//!    serializer iterates vectors, never hash maps, so the exported file
//!    is byte-identical across reruns and across worker-thread counts
//!    (the parallel runner merges per-job buffers in job-index order,
//!    one Chrome `pid` per job).
//! 3. **Perfetto compatibility.** [`chrome_trace_json`] emits the Chrome
//!    trace-event JSON format (`{"traceEvents":[...]}` with `B`/`E`/`X`/
//!    `C`/`i`/`M` phases, microsecond `ts`), loadable in Perfetto or
//!    `chrome://tracing`. Each simulated processor slot, edge-server
//!    lane, radio direction, and control loop gets its own named track.
//!
//! The module also carries a tiny in-tree JSON parser ([`parse_json`])
//! and a Chrome-trace structural validator ([`chrome_trace_stats`]) so
//! tests and CI can check exported traces without external tools.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::{SimDuration, SimTime};

/// Identifies one named track (Chrome "thread") inside a trace buffer.
///
/// Ids are assigned densely in registration order, which makes them
/// deterministic as long as tracks are registered in a deterministic
/// order (simulation construction order in this workspace).
pub type TrackId = u32;

/// One structured argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument (sequence numbers, counts).
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument (latencies, scores). Serialized with
    /// Rust's shortest-roundtrip formatting, which is deterministic for
    /// a fixed binary; non-finite values serialize as JSON `null`.
    F64(f64),
    /// String argument (allocation strings, labels).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// The Chrome trace-event phase of a [`TraceRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span begin (`"B"`). Must be balanced by an [`TracePhase::End`] on
    /// the same track.
    Begin,
    /// Span end (`"E"`).
    End,
    /// Complete span (`"X"`) with an explicit duration.
    Complete,
    /// Counter sample (`"C"`); the value rides in the `value` argument.
    Counter,
    /// Instant event (`"i"`).
    Instant,
}

/// One trace event, carrying simulated time only.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Simulated timestamp in nanoseconds.
    pub at_ns: u64,
    /// Duration in nanoseconds; meaningful only for
    /// [`TracePhase::Complete`].
    pub dur_ns: u64,
    /// Track the event belongs to.
    pub track: TrackId,
    /// Event phase.
    pub phase: TracePhase,
    /// Category (one per instrumented layer: `"soc"`, `"edgelink"`,
    /// `"hbo"`, `"bo"`).
    pub cat: &'static str,
    /// Event name (span name or counter series name).
    pub name: String,
    /// Structured arguments, serialized in the given order.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A named track definition: `process` groups related tracks (e.g.
/// `"soc"`), `track` names the lane (e.g. `"CPU slot0"`).
#[derive(Debug, Clone)]
pub struct TrackDef {
    /// Subsystem the track belongs to.
    pub process: String,
    /// Human-readable lane name.
    pub track: String,
}

/// Plain-data snapshot of everything a sink collected. `Send`-safe, so
/// parallel runner workers can return buffers for deterministic merging.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    /// Registered tracks, in registration order (index == [`TrackId`]).
    pub tracks: Vec<TrackDef>,
    /// Emitted records, in emit order.
    pub records: Vec<TraceRecord>,
}

/// Destination for trace events.
///
/// Object-safe so a [`Tracer`] can hold any sink behind one pointer.
pub trait TraceSink: fmt::Debug {
    /// Registers a named track and returns its id. Called in
    /// deterministic construction order by the instrumented layers.
    fn register_track(&mut self, process: &str, track: &str) -> TrackId;

    /// Receives one event.
    fn event(&mut self, record: TraceRecord);
}

/// A sink that drops everything. Installing it exercises the full
/// instrumented path (enabled-branch taken, names built, records
/// constructed) without buffering — the kernels bench uses it to pin
/// the cost of instrumentation itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn register_track(&mut self, _process: &str, _track: &str) -> TrackId {
        0
    }

    fn event(&mut self, _record: TraceRecord) {}
}

/// A sink that buffers every event for later Chrome trace-event JSON
/// export via [`chrome_trace_json`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    buffer: TraceBuffer,
}

impl ChromeTraceSink {
    /// Creates an empty buffering sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones out everything collected so far.
    pub fn snapshot(&self) -> TraceBuffer {
        self.buffer.clone()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buffer.records.len()
    }

    /// True when no records have been buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.records.is_empty()
    }
}

impl TraceSink for ChromeTraceSink {
    fn register_track(&mut self, process: &str, track: &str) -> TrackId {
        // Re-registering an identical (process, track) pair returns the
        // existing id, so layers rebuilt mid-run (e.g. one edge sim per
        // measurement window) keep appending to the same named track. A
        // linear scan keeps the lookup order-deterministic (no HashMap).
        if let Some(i) = self
            .buffer
            .tracks
            .iter()
            .position(|t| t.process == process && t.track == track)
        {
            return i as TrackId;
        }
        let id = self.buffer.tracks.len() as TrackId;
        self.buffer.tracks.push(TrackDef {
            process: process.to_string(),
            track: track.to_string(),
        });
        id
    }

    fn event(&mut self, record: TraceRecord) {
        self.buffer.records.push(record);
    }
}

/// A sink that feeds every registration and event to two child sinks —
/// the glue that lets one job keep full Chrome-trace detail *and* feed
/// a bounded aggregator from a single instrumented pass.
///
/// Both children must use dense first-seen registration ids (as
/// [`ChromeTraceSink`] and `metrics::AggregatingSink` do) so the id
/// returned by the first child is valid for the second; that invariant
/// is checked in debug builds. [`NullSink`] always answers 0 and is
/// therefore not a valid tee child.
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A: TraceSink, B: TraceSink> {
    /// First child; its track ids become the tee's ids.
    pub first: A,
    /// Second child.
    pub second: B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn register_track(&mut self, process: &str, track: &str) -> TrackId {
        let id = self.first.register_track(process, track);
        let second = self.second.register_track(process, track);
        debug_assert_eq!(
            id, second,
            "tee children disagree on track id for {process}:{track}"
        );
        id
    }

    fn event(&mut self, record: TraceRecord) {
        self.second.event(record.clone());
        self.first.event(record);
    }
}

/// Cloneable tracing handle threaded through the simulation stack.
///
/// Disabled by default ([`Tracer::disabled`]); every emit method is a
/// single `Option` check in that state. Clones share one underlying
/// sink, so a whole single-threaded job (SoC sim, edge sim, control
/// loop, optimizer) appends to one deterministically ordered buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    /// Added to every emitted timestamp. Lets a sub-simulation with its
    /// own zero-based clock (e.g. one per-window edge sim) land on the
    /// parent timeline.
    offset_ns: u64,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(enabled={})", self.is_enabled())
    }
}

impl Tracer {
    /// A tracer that ignores everything (the default).
    pub fn disabled() -> Self {
        Self {
            sink: None,
            offset_ns: 0,
        }
    }

    /// Wraps an owned sink.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Self {
            sink: Some(Rc::new(RefCell::new(sink))),
            offset_ns: 0,
        }
    }

    /// Wraps a shared sink, letting the caller keep a concrete handle
    /// (e.g. to snapshot a [`ChromeTraceSink`] after the run).
    pub fn with_sink<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        Self {
            sink: Some(sink),
            offset_ns: 0,
        }
    }

    /// A handle sharing this tracer's sink whose every timestamp is
    /// shifted forward by `offset` (on top of any existing offset).
    pub fn offset_by(&self, offset: SimDuration) -> Tracer {
        Tracer {
            sink: self.sink.clone(),
            offset_ns: self.offset_ns + offset.as_nanos(),
        }
    }

    /// True when a sink is attached. Callers must guard any
    /// allocation-requiring argument construction behind this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Registers a named track; returns 0 when disabled.
    pub fn register_track(&self, process: &str, track: &str) -> TrackId {
        match &self.sink {
            Some(s) => s.borrow_mut().register_track(process, track),
            None => 0,
        }
    }

    /// Emits a span begin.
    #[inline]
    pub fn begin(
        &self,
        at: SimTime,
        track: TrackId,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().event(TraceRecord {
            at_ns: self.offset_ns + at.as_nanos(),
            dur_ns: 0,
            track,
            phase: TracePhase::Begin,
            cat,
            name: name.to_string(),
            args: args.to_vec(),
        });
    }

    /// Emits a span end (balances the latest [`Tracer::begin`] on the
    /// same track).
    #[inline]
    pub fn end(&self, at: SimTime, track: TrackId, cat: &'static str) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().event(TraceRecord {
            at_ns: self.offset_ns + at.as_nanos(),
            dur_ns: 0,
            track,
            phase: TracePhase::End,
            cat,
            name: String::new(),
            args: Vec::new(),
        });
    }

    /// Emits a complete span with an explicit duration.
    #[inline]
    pub fn complete(
        &self,
        at: SimTime,
        dur: SimDuration,
        track: TrackId,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().event(TraceRecord {
            at_ns: self.offset_ns + at.as_nanos(),
            dur_ns: dur.as_nanos(),
            track,
            phase: TracePhase::Complete,
            cat,
            name: name.to_string(),
            args: args.to_vec(),
        });
    }

    /// Emits a counter sample. `name` is the counter series; distinct
    /// series need distinct names within one process.
    #[inline]
    pub fn counter(&self, at: SimTime, track: TrackId, cat: &'static str, name: &str, value: f64) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().event(TraceRecord {
            at_ns: self.offset_ns + at.as_nanos(),
            dur_ns: 0,
            track,
            phase: TracePhase::Counter,
            cat,
            name: name.to_string(),
            args: vec![("value", ArgValue::F64(value))],
        });
    }

    /// Emits an instant event.
    #[inline]
    pub fn instant(
        &self,
        at: SimTime,
        track: TrackId,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, ArgValue)],
    ) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().event(TraceRecord {
            at_ns: self.offset_ns + at.as_nanos(),
            dur_ns: 0,
            track,
            phase: TracePhase::Instant,
            cat,
            name: name.to_string(),
            args: args.to_vec(),
        });
    }
}

/// One job's worth of trace data for merged export: the job `name`
/// becomes the Chrome process name, and the job's position in the slice
/// becomes its `pid` (index + 1).
#[derive(Debug, Clone)]
pub struct TraceJob {
    /// Process name shown in the trace viewer (e.g. `"job0 SC1-CF1"`).
    pub name: String,
    /// The job's collected buffer.
    pub buffer: TraceBuffer,
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats integer nanoseconds as a microsecond JSON number with
/// exactly three decimals (`1234` → `1.234`). String formatting keeps
/// the output byte-deterministic; the value is still a valid JSON
/// number.
fn push_ts(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn push_arg_value(out: &mut String, value: &ArgValue) {
    match value {
        ArgValue::U64(v) => out.push_str(&format!("{v}")),
        ArgValue::I64(v) => out.push_str(&format!("{v}")),
        ArgValue::F64(v) => {
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => {
            out.push('"');
            push_escaped(out, s);
            out.push('"');
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push_str("\"args\":{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        push_escaped(out, key);
        out.push_str("\":");
        push_arg_value(out, value);
    }
    out.push('}');
}

/// Serializes per-job buffers to Chrome trace-event JSON.
///
/// Jobs map to Chrome processes (`pid` = job index + 1) in slice order,
/// tracks to threads (`tid` = track id + 1); metadata events name both.
/// Everything is emitted in deterministic vector order, one event per
/// line, so equal inputs produce byte-identical output.
pub fn chrome_trace_json(jobs: &[TraceJob]) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for (job_index, job) in jobs.iter().enumerate() {
        let pid = job_index + 1;
        sep(&mut out);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\""
        ));
        push_escaped(&mut out, &job.name);
        out.push_str("\"}}");
        for (track_id, track) in job.buffer.tracks.iter().enumerate() {
            let tid = track_id + 1;
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
            ));
            push_escaped(&mut out, &track.process);
            out.push(':');
            push_escaped(&mut out, &track.track);
            out.push_str("\"}}");
        }
        for rec in &job.buffer.records {
            let tid = rec.track as usize + 1;
            sep(&mut out);
            let ph = match rec.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Complete => "X",
                TracePhase::Counter => "C",
                TracePhase::Instant => "i",
            };
            out.push_str(&format!(
                "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
            ));
            push_ts(&mut out, rec.at_ns);
            if rec.phase == TracePhase::Complete {
                out.push_str(",\"dur\":");
                push_ts(&mut out, rec.dur_ns);
            }
            out.push_str(",\"cat\":\"");
            push_escaped(&mut out, rec.cat);
            out.push_str("\"");
            if rec.phase != TracePhase::End {
                out.push_str(",\"name\":\"");
                push_escaped(&mut out, &rec.name);
                out.push('"');
            }
            if rec.phase == TracePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push(',');
            push_args(&mut out, &rec.args);
            out.push('}');
        }
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Tiny in-tree JSON parser + Chrome-trace validator (no external deps).
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep key order as a vector of pairs so
/// round-trip inspection stays deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrows the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one complete JSON document. Rejects trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(value)
}

/// Structural summary of a Chrome trace-event file, for tests and the
/// CI smoke checker.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total number of events (including metadata).
    pub events: usize,
    /// Number of span events (`B`/`E`/`X`).
    pub spans: usize,
    /// Number of counter samples.
    pub counters: usize,
    /// Number of span begins (`B`).
    pub begins: usize,
    /// Number of span ends (`E`).
    pub ends: usize,
    /// Number of complete spans (`X`).
    pub completes: usize,
    /// Number of instant events (`i`).
    pub instants: usize,
    /// Number of metadata events (`M`).
    pub metadata: usize,
    /// Distinct categories seen on span events, with span counts,
    /// sorted by category name.
    pub span_cats: Vec<(String, usize)>,
}

impl TraceStats {
    /// Span count for one category (0 when absent).
    pub fn spans_in_cat(&self, cat: &str) -> usize {
        self.span_cats
            .iter()
            .find(|(c, _)| c == cat)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Parses and structurally validates a Chrome trace-event JSON file:
/// top-level object with a `traceEvents` array whose elements are
/// objects carrying a string `ph`, (for non-metadata events) numeric
/// `ts`, and (for counter events) an `args` object with a numeric
/// `value` — the shape [`Tracer::counter`] always emits, so a counter
/// that lost its payload fails validation instead of rendering as an
/// empty series. Returns per-phase event counts and per-category span
/// counts.
pub fn chrome_trace_stats(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        if ph == "M" {
            stats.metadata += 1;
            continue;
        }
        match ev.get("ts") {
            Some(Json::Num(_)) => {}
            _ => return Err(format!("event {i}: missing numeric 'ts'")),
        }
        match ph {
            "B" | "E" | "X" => {
                stats.spans += 1;
                match ph {
                    "B" => stats.begins += 1,
                    "E" => stats.ends += 1,
                    _ => stats.completes += 1,
                }
                let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("");
                match stats.span_cats.iter_mut().find(|(c, _)| c == cat) {
                    Some((_, n)) => *n += 1,
                    None => stats.span_cats.push((cat.to_string(), 1)),
                }
            }
            "C" => {
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i}: counter missing 'args'"))?;
                if !matches!(args, Json::Obj(_)) {
                    return Err(format!("event {i}: counter 'args' is not an object"));
                }
                match args.get("value") {
                    Some(Json::Num(_)) => {}
                    _ => return Err(format!("event {i}: counter 'args' missing numeric 'value'")),
                }
                stats.counters += 1;
            }
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    stats.span_cats.sort();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_secs_f64(ms / 1e3)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.register_track("p", "t"), 0);
        tracer.begin(t(1.0), 0, "soc", "job", &[]);
        tracer.end(t(2.0), 0, "soc");
        tracer.counter(t(2.0), 0, "soc", "queue", 3.0);
    }

    #[test]
    fn chrome_sink_buffers_in_order() {
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let tracer = Tracer::with_sink(sink.clone());
        let a = tracer.register_track("soc", "CPU slot0");
        let b = tracer.register_track("soc", "GPU");
        assert_eq!((a, b), (0, 1));
        tracer.begin(t(1.0), a, "soc", "detector", &[("seq", 7u64.into())]);
        tracer.end(t(3.5), a, "soc");
        tracer.counter(t(3.5), b, "soc", "GPU resident", 2.0);
        let buf = sink.borrow().snapshot();
        assert_eq!(buf.tracks.len(), 2);
        assert_eq!(buf.records.len(), 3);
        assert_eq!(buf.records[0].phase, TracePhase::Begin);
        assert_eq!(buf.records[0].at_ns, 1_000_000);
        assert_eq!(buf.records[2].phase, TracePhase::Counter);
    }

    #[test]
    fn export_is_valid_chrome_json_and_deterministic() {
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
        let tracer = Tracer::with_sink(sink.clone());
        let cpu = tracer.register_track("soc", "CPU slot0");
        tracer.begin(t(0.25), cpu, "soc", "job \"x\"", &[("seq", 1u64.into())]);
        tracer.end(t(1.75), cpu, "soc");
        tracer.complete(
            t(2.0),
            SimDuration::from_millis_f64(0.5),
            cpu,
            "hbo",
            "window",
            &[("epsilon", 0.125f64.into()), ("alloc", "CGN".into())],
        );
        tracer.counter(t(2.5), cpu, "soc", "queue", 4.0);
        tracer.instant(t(2.5), cpu, "bo", "suggest", &[]);
        let job = TraceJob {
            name: "job0".to_string(),
            buffer: sink.borrow().snapshot(),
        };
        let one = chrome_trace_json(&[job.clone()]);
        let two = chrome_trace_json(&[job.clone()]);
        assert_eq!(one, two, "serialization must be deterministic");
        let stats = chrome_trace_stats(&one).expect("valid chrome trace");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.spans_in_cat("soc"), 2);
        assert_eq!(stats.spans_in_cat("hbo"), 1);

        // Multi-job merge: pids follow job order.
        let merged = chrome_trace_json(&[job.clone(), job]);
        let doc = parse_json(&merged).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<f64> = events
            .iter()
            .filter_map(|e| match e.get("pid") {
                Some(Json::Num(n)) => Some(*n),
                _ => None,
            })
            .collect();
        assert!(pids.contains(&1.0) && pids.contains(&2.0));
    }

    #[test]
    fn trace_stats_count_phases_and_validate_counter_payloads() {
        let good = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"j"}},
            {"ph":"B","pid":1,"tid":1,"ts":1.0,"cat":"soc","name":"a","args":{}},
            {"ph":"E","pid":1,"tid":1,"ts":2.0,"cat":"soc","args":{}},
            {"ph":"i","pid":1,"tid":1,"ts":2.0,"cat":"bo","name":"s","s":"t","args":{}},
            {"ph":"C","pid":1,"tid":1,"ts":2.0,"cat":"soc","name":"q","args":{"value":3}}
        ]}"#;
        let stats = chrome_trace_stats(good).expect("valid trace");
        assert_eq!((stats.begins, stats.ends, stats.completes), (1, 1, 0));
        assert_eq!((stats.counters, stats.instants, stats.metadata), (1, 1, 1));
        // Counters must carry the numeric payload Tracer::counter emits.
        let empty_args = r#"{"traceEvents":[{"ph":"C","ts":1.0,"name":"q","args":{}}]}"#;
        assert!(chrome_trace_stats(empty_args)
            .unwrap_err()
            .contains("value"));
        let null_value =
            r#"{"traceEvents":[{"ph":"C","ts":1.0,"name":"q","args":{"value":null}}]}"#;
        assert!(chrome_trace_stats(null_value).is_err());
        let no_args = r#"{"traceEvents":[{"ph":"C","ts":1.0,"name":"q"}]}"#;
        assert!(chrome_trace_stats(no_args).unwrap_err().contains("args"));
    }

    #[test]
    fn tee_sink_feeds_both_children_with_shared_ids() {
        let sink = Rc::new(RefCell::new(TeeSink {
            first: ChromeTraceSink::new(),
            second: ChromeTraceSink::new(),
        }));
        let tracer = Tracer::with_sink(sink.clone());
        let a = tracer.register_track("soc", "CPU");
        assert_eq!(tracer.register_track("soc", "CPU"), a);
        tracer.begin(t(1.0), a, "soc", "job", &[]);
        tracer.end(t(2.0), a, "soc");
        let tee = sink.borrow();
        let (one, two) = (tee.first.snapshot(), tee.second.snapshot());
        assert_eq!(one.tracks.len(), 1);
        assert_eq!(two.tracks.len(), 1);
        assert_eq!(one.records.len(), 2);
        assert_eq!(two.records.len(), 2);
        assert_eq!(one.records[0].at_ns, two.records[0].at_ns);
    }

    #[test]
    fn ts_formatting_is_exact_microseconds() {
        let mut s = String::new();
        push_ts(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        let mut s = String::new();
        push_ts(&mut s, 42);
        assert_eq!(s, "0.042");
    }

    #[test]
    fn json_parser_round_trips_edge_cases() {
        let v = parse_json(r#"{"a":[1,-2.5,1e3],"b":"x\"\\\nA","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\"\\\nA"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2], Json::Num(1000.0));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("").is_err());
    }
}
