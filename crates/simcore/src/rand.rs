//! In-tree deterministic random-number generation.
//!
//! This workspace builds hermetically — no registry crates — so the PRNG
//! machinery the simulators and optimizers need lives here instead of in
//! the external `rand` crate. The module deliberately mirrors the subset
//! of `rand`'s API surface the workspace uses ([`SeedableRng`],
//! [`RngCore`], [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SliceRandom::shuffle`], and a Box–Muller [`Normal`] distribution) so
//! call sites read identically to idiomatic `rand` code.
//!
//! The generator is xoshiro256++ seeded through splitmix64: fast, well
//! tested statistically, and — crucially for reproducible experiments —
//! fully specified in this file, so a seed printed in a failure report
//! today replays bit-identically forever.
//!
//! # Example
//!
//! ```
//! use simcore::rand::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();             // uniform in [0, 1)
//! let k = rng.gen_range(0..10usize);  // uniform integer
//! assert!((0.0..1.0).contains(&x));
//! assert!(k < 10);
//! // Same seed, same stream.
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng2.gen::<f64>(), x);
//! ```

use std::ops::{Range, RangeInclusive};

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation used for
/// seeding and seed derivation.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A source of raw random 64-bit words.
///
/// Object safe (`&mut dyn RngCore` works), mirroring `rand::RngCore` so
/// optimizer APIs can take type-erased generators.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — the workspace's standard generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush. Named `StdRng`
/// so ported `rand` call sites keep reading naturally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    /// Seeds the four state words from a splitmix64 sequence, the
    /// initialization recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(x);
        }
        // A xoshiro state of all zeros is a fixed point; splitmix64 of a
        // four-step sequence can never produce one, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Values drawable uniformly from a generator's raw words ("standard"
/// distribution): `f64`/`f32` in `[0, 1)`, full-range integers, `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection over a widening multiply
/// (Lemire's method), bias-free for every span.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection threshold: multiples of span fit evenly below 2^64 - t.
    let t = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= t {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $ty)
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, usize, i64, i32);

macro_rules! impl_float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$ty as StandardSample>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard the open upper bound against rounding.
                if v >= self.end {
                    <$ty>::max(self.start, self.end - (self.end - self.start) * <$ty>::EPSILON)
                } else {
                    v
                }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$ty as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_sample_range!(f64, f32);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut dyn RngCore`), mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws one value from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distribution: &D) -> T {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A parameterized distribution that can be sampled with any generator.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Normal (Gaussian) distribution via the Box–Muller transform.
///
/// # Example
///
/// ```
/// use simcore::rand::{Distribution, Normal, SeedableRng, StdRng};
///
/// let n = Normal::new(10.0, 2.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let mean: f64 = (0..4096).map(|_| n.sample(&mut rng)).sum::<f64>() / 4096.0;
/// assert!((mean - 10.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite(),
            "bad normal parameters (mean {mean}, std_dev {std_dev})"
        );
        Normal { mean, std_dev }
    }

    /// Draws one standard-normal variate (mean 0, std-dev 1).
    pub fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept away from 0 so ln() stays finite.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Normal::standard_sample(rng)
    }
}

/// In-place slice randomization, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Picks a uniformly random element, or `None` if empty.
    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Compatibility alias module so ported call sites can keep writing
/// `rngs::StdRng` paths.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference output of xoshiro256++ from the canonical C code with
        // state seeded to [1, 2, 3, 4]. Pins the exact algorithm so seed
        // replays survive refactors.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_floats_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x), "{x}");
            let y = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_ints_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
            let j = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "not all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        // χ²-style sanity: 6 buckets, 60k draws, each within 5% of 10k.
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for c in counts {
            assert!((9_500..10_500).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        let mut rng = StdRng::seed_from_u64(8);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn normal_moments() {
        let n = Normal::new(3.0, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(10);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        // Same seed reproduces the same permutation.
        let mut v2: Vec<u32> = (0..20).collect();
        let mut rng2 = StdRng::seed_from_u64(10);
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1, 2, 3, 4];
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_works_like_rand() {
        // The optimizer APIs take `&mut dyn RngCore`; gen_range must work
        // through the erased type exactly as it does in `rand`.
        let mut rng = StdRng::seed_from_u64(12);
        let erased: &mut dyn RngCore = &mut rng;
        let x: f64 = erased.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let k = erased.gen_range(0..5usize);
        assert!(k < 5);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 17];
        rng.fill_bytes(&mut buf);
        // 17 zero bytes from a uniform source is a 2^-136 event.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
