//! `simcore::metrics` — bounded streaming aggregation of trace events.
//!
//! [`crate::trace::ChromeTraceSink`] buffers every event, so its memory
//! grows with simulated work: at fleet scale (thousands of sessions,
//! millions of events per cell) you can have a trace or you can have
//! the run, not both. This module is the layer between that firehose
//! and a totals-only summary line:
//!
//! * [`AggregatingSink`] implements [`TraceSink`] and folds span
//!   begin/end/complete events into per-`(track, span-name)` streaming
//!   statistics — count, total/max duration, and a [`LogHistogram`] of
//!   durations for p50/p95/p99 — and counter samples into fixed-capacity
//!   time series.
//! * [`DownsampleRing`] is that time series: a bounded bucket array at
//!   power-of-two resolution. When a sample lands beyond the last
//!   bucket, adjacent bucket pairs merge in place and the bucket width
//!   doubles — O(1) amortized per sample, capacity never grows, so
//!   aggregator memory is bounded by configuration instead of by
//!   simulated time.
//! * [`MetricsBuffer`] is the plain-data snapshot (`Send`, mergeable in
//!   job-index order exactly like trace buffers) with a deterministic
//!   Prometheus-style text exposition
//!   ([`MetricsBuffer::render_prometheus`]).
//! * [`head_sample`] is the seed-derived sampling decision that gives k
//!   jobs of a sweep full Chrome-trace detail while every job feeds an
//!   aggregator — the sampled set is a pure function of the seeds, so
//!   it is identical across reruns and worker-thread counts.
//!
//! Everything here iterates vectors in first-seen order (no hash maps),
//! so snapshots, merges, and the rendered text are byte-identical
//! across reruns and `--threads` settings.

use std::cell::RefCell;
use std::rc::Rc;

use crate::rng::mix;
use crate::stats::LogHistogram;
use crate::trace::{
    ArgValue, ChromeTraceSink, TeeSink, TraceBuffer, TracePhase, TraceRecord, TraceSink, Tracer,
    TrackDef, TrackId,
};

/// Domain-separation tag for [`head_sample`] draws, so the sampling
/// decision shares no stream with any simulation RNG.
const SAMPLE_TAG: u64 = 0x0B5E_4B1E;

/// Duration histogram layout shared by every span series: 100 ns to
/// ~130 s in 30% steps (81 buckets + overflow). One fixed layout keeps
/// snapshots mergeable ([`LogHistogram::merge`] requires it).
fn duration_histogram() -> LogHistogram {
    LogHistogram::new(100.0, 1.3, 80)
}

/// Memory configuration of an [`AggregatingSink`]. Every bound is a
/// hard cap: the sink's footprint depends on this struct, never on how
/// many events flow through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggConfig {
    /// Bucket count of each counter series' [`DownsampleRing`]. Must be
    /// a power of two ≥ 2.
    pub ring_capacity: usize,
    /// Initial ring bucket width in nanoseconds; doubles on every
    /// downsample. Must be ≥ 1.
    pub ring_bucket_ns: u64,
    /// Cap on distinct `(track, name)` series per kind (spans and
    /// counters separately). Events for series beyond the cap are
    /// counted in [`MetricsBuffer::overflow_events`] and dropped.
    pub max_series: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            // 512 buckets × 1 ms initial width covers a 512 ms cell at
            // full resolution and a 30 s horizon after 6 downsamples
            // (~59 ms buckets) — a few tens of KB per counter series.
            ring_capacity: 512,
            ring_bucket_ns: 1_000_000,
            max_series: 256,
        }
    }
}

/// One bucket of a [`DownsampleRing`]: the fold of every counter sample
/// whose timestamp fell inside the bucket's window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingBucket {
    /// Samples folded into this bucket (0 = the window saw none).
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
}

impl RingBucket {
    const EMPTY: RingBucket = RingBucket {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    fn fold_sample(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn fold_bucket(&mut self, other: &RingBucket) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bounded, fixed-capacity time series: buckets of width `bucket_ns`
/// starting at t = 0. When a sample lands past the last bucket, the
/// ring halves its resolution in place (adjacent pairs merge, width
/// doubles) until the sample fits — O(1) amortized, and the allocation
/// made at construction is never exceeded.
#[derive(Debug, Clone)]
pub struct DownsampleRing {
    bucket_ns: u64,
    capacity: usize,
    buckets: Vec<RingBucket>,
}

impl DownsampleRing {
    /// Creates an empty ring.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two ≥ 2 or `bucket_ns`
    /// is 0.
    pub fn new(capacity: usize, bucket_ns: u64) -> Self {
        assert!(
            capacity >= 2 && capacity.is_power_of_two(),
            "ring capacity must be a power of two >= 2: {capacity}"
        );
        assert!(bucket_ns >= 1, "ring bucket width must be >= 1 ns");
        DownsampleRing {
            bucket_ns,
            capacity,
            buckets: Vec::with_capacity(capacity),
        }
    }

    /// Current bucket width in nanoseconds (doubles per downsample).
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// The configured bucket-count bound. The backing allocation never
    /// exceeds it (asserted by the capacity-bound test).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buckets in use so far (≤ [`DownsampleRing::capacity`]).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.count == 0)
    }

    /// The used buckets, index `i` covering
    /// `[i × bucket_ns, (i+1) × bucket_ns)`.
    pub fn buckets(&self) -> &[RingBucket] {
        &self.buckets
    }

    /// Merges adjacent bucket pairs in place and doubles the width.
    fn downsample(&mut self) {
        let new_len = self.buckets.len().div_ceil(2);
        for i in 0..new_len {
            let mut merged = self.buckets[2 * i];
            if let Some(right) = self.buckets.get(2 * i + 1).copied() {
                if merged.count == 0 {
                    merged = right;
                } else {
                    merged.fold_bucket(&right);
                }
            }
            self.buckets[i] = merged;
        }
        self.buckets.truncate(new_len);
        self.bucket_ns *= 2;
    }

    /// Records one sample at simulated time `at_ns`.
    pub fn record(&mut self, at_ns: u64, value: f64) {
        let mut idx = (at_ns / self.bucket_ns) as usize;
        while idx >= self.capacity {
            self.downsample();
            idx = (at_ns / self.bucket_ns) as usize;
        }
        while self.buckets.len() <= idx {
            self.buckets.push(RingBucket::EMPTY);
        }
        self.buckets[idx].fold_sample(value);
    }

    /// Folds another ring into this one. Both rings are first coarsened
    /// to the coarser of the two widths, so the merge is exactly the
    /// ring that would have recorded both sample streams (bucket
    /// counts/sums/extrema are order-independent).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ or the widths are not
    /// power-of-two multiples of one another (they always are when both
    /// rings share an [`AggConfig`]).
    pub fn merge(&mut self, other: &DownsampleRing) {
        assert_eq!(
            self.capacity, other.capacity,
            "ring capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
        let mut o;
        let other = if other.bucket_ns < self.bucket_ns {
            o = other.clone();
            while o.bucket_ns < self.bucket_ns {
                o.downsample();
            }
            &o
        } else {
            while self.bucket_ns < other.bucket_ns {
                self.downsample();
            }
            other
        };
        assert_eq!(
            self.bucket_ns, other.bucket_ns,
            "ring widths are not power-of-two multiples: {} vs {}",
            self.bucket_ns, other.bucket_ns
        );
        while self.buckets.len() < other.buckets.len() {
            self.buckets.push(RingBucket::EMPTY);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            mine.fold_bucket(theirs);
        }
    }
}

/// Streaming statistics for one `(track, span-name)` series.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// Subsystem of the owning track (e.g. `"edgelink"`).
    pub process: String,
    /// Lane name of the owning track (e.g. `"server0"`).
    pub track: String,
    /// Span name.
    pub name: String,
    /// Category of the first event seen for the series.
    pub cat: String,
    /// Completed spans folded in.
    pub count: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Log-bucketed duration histogram (ns) for p50/p95/p99.
    pub histogram: LogHistogram,
}

impl SpanStats {
    /// Mean span duration in nanoseconds, `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }
}

/// Streaming statistics plus the bounded time series for one
/// `(track, counter-name)` series.
#[derive(Debug, Clone)]
pub struct CounterStats {
    /// Subsystem of the owning track.
    pub process: String,
    /// Lane name of the owning track.
    pub track: String,
    /// Counter series name.
    pub name: String,
    /// Samples folded in.
    pub samples: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Timestamp of the latest sample (merge tie-break: the buffer
    /// merged later wins at equal timestamps, and merges happen in
    /// job-index order).
    pub last_at_ns: u64,
    /// Latest sample value.
    pub last: f64,
    /// The bounded time series.
    pub ring: DownsampleRing,
}

/// Plain-data snapshot of everything an [`AggregatingSink`] collected.
/// `Send`-safe, so parallel runner workers can return one per job for
/// deterministic job-index-order merging — the aggregated counterpart
/// of [`TraceBuffer`].
#[derive(Debug, Clone, Default)]
pub struct MetricsBuffer {
    /// Span series, in first-seen order.
    pub spans: Vec<SpanStats>,
    /// Counter series, in first-seen order.
    pub counters: Vec<CounterStats>,
    /// Instant events seen (not aggregated further).
    pub instants: u64,
    /// Span begins still open at snapshot time.
    pub open_spans: u64,
    /// Span ends with no matching begin on their track.
    pub unmatched_ends: u64,
    /// Events dropped because the `max_series` cap was reached.
    pub overflow_events: u64,
    /// Counter events whose `value` argument was missing or
    /// non-numeric.
    pub malformed_counters: u64,
}

fn find_series<'a, T>(
    items: &'a mut [T],
    key: impl Fn(&T) -> (&str, &str, &str),
    process: &str,
    track: &str,
    name: &str,
) -> Option<&'a mut T> {
    items.iter_mut().find(|s| key(s) == (process, track, name))
}

impl MetricsBuffer {
    /// Folds another snapshot into this one. Series match by
    /// `(process, track, name)`; unmatched series append in the other
    /// buffer's order, so merging per-job buffers in job-index order is
    /// independent of worker scheduling.
    pub fn merge(&mut self, other: &MetricsBuffer) {
        for s in &other.spans {
            match find_series(
                &mut self.spans,
                |x| (&x.process, &x.track, &x.name),
                &s.process,
                &s.track,
                &s.name,
            ) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.total_ns += s.total_ns;
                    mine.max_ns = mine.max_ns.max(s.max_ns);
                    mine.histogram.merge(&s.histogram);
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            match find_series(
                &mut self.counters,
                |x| (&x.process, &x.track, &x.name),
                &c.process,
                &c.track,
                &c.name,
            ) {
                Some(mine) => {
                    mine.samples += c.samples;
                    mine.sum += c.sum;
                    mine.min = mine.min.min(c.min);
                    mine.max = mine.max.max(c.max);
                    if c.last_at_ns >= mine.last_at_ns {
                        mine.last_at_ns = c.last_at_ns;
                        mine.last = c.last;
                    }
                    mine.ring.merge(&c.ring);
                }
                None => self.counters.push(c.clone()),
            }
        }
        self.instants += other.instants;
        self.open_spans += other.open_spans;
        self.unmatched_ends += other.unmatched_ends;
        self.overflow_events += other.overflow_events;
        self.malformed_counters += other.malformed_counters;
    }

    /// Renders the snapshot as Prometheus-style text exposition:
    /// `# TYPE` headers followed by `name{label="…"} value` lines, one
    /// family at a time, in deterministic series order — byte-identical
    /// for equal snapshots.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let span_labels = |s: &SpanStats| {
            format!(
                "process=\"{}\",track=\"{}\",name=\"{}\",cat=\"{}\"",
                escape_label(&s.process),
                escape_label(&s.track),
                escape_label(&s.name),
                escape_label(&s.cat)
            )
        };
        let counter_labels = |c: &CounterStats| {
            format!(
                "process=\"{}\",track=\"{}\",name=\"{}\"",
                escape_label(&c.process),
                escape_label(&c.track),
                escape_label(&c.name)
            )
        };
        if !self.spans.is_empty() {
            out.push_str("# TYPE mar_span_count counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "mar_span_count{{{}}} {}\n",
                    span_labels(s),
                    s.count
                ));
            }
            out.push_str("# TYPE mar_span_duration_ns_sum counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "mar_span_duration_ns_sum{{{}}} {}\n",
                    span_labels(s),
                    s.total_ns
                ));
            }
            out.push_str("# TYPE mar_span_duration_ns_max gauge\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "mar_span_duration_ns_max{{{}}} {}\n",
                    span_labels(s),
                    s.max_ns
                ));
            }
            out.push_str("# TYPE mar_span_duration_ns gauge\n");
            for s in &self.spans {
                for q in [0.5, 0.95, 0.99] {
                    if let Some(v) = s.histogram.quantile(q) {
                        out.push_str(&format!(
                            "mar_span_duration_ns{{{},quantile=\"{q}\"}} {}\n",
                            span_labels(s),
                            fmt_f64(v)
                        ));
                    }
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("# TYPE mar_counter_samples counter\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_samples{{{}}} {}\n",
                    counter_labels(c),
                    c.samples
                ));
            }
            out.push_str("# TYPE mar_counter_sum counter\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_sum{{{}}} {}\n",
                    counter_labels(c),
                    fmt_f64(c.sum)
                ));
            }
            out.push_str("# TYPE mar_counter_min gauge\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_min{{{}}} {}\n",
                    counter_labels(c),
                    fmt_f64(c.min)
                ));
            }
            out.push_str("# TYPE mar_counter_max gauge\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_max{{{}}} {}\n",
                    counter_labels(c),
                    fmt_f64(c.max)
                ));
            }
            out.push_str("# TYPE mar_counter_last gauge\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_last{{{}}} {}\n",
                    counter_labels(c),
                    fmt_f64(c.last)
                ));
            }
            out.push_str("# TYPE mar_counter_resolution_ns gauge\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "mar_counter_resolution_ns{{{}}} {}\n",
                    counter_labels(c),
                    c.ring.bucket_ns()
                ));
            }
        }
        out.push_str("# TYPE mar_agg_instants counter\n");
        out.push_str(&format!("mar_agg_instants {}\n", self.instants));
        out.push_str("# TYPE mar_agg_open_spans gauge\n");
        out.push_str(&format!("mar_agg_open_spans {}\n", self.open_spans));
        out.push_str("# TYPE mar_agg_unmatched_ends counter\n");
        out.push_str(&format!("mar_agg_unmatched_ends {}\n", self.unmatched_ends));
        out.push_str("# TYPE mar_agg_overflow_events counter\n");
        out.push_str(&format!(
            "mar_agg_overflow_events {}\n",
            self.overflow_events
        ));
        out.push_str("# TYPE mar_agg_malformed_counters counter\n");
        out.push_str(&format!(
            "mar_agg_malformed_counters {}\n",
            self.malformed_counters
        ));
        out
    }

    /// Span series lookup by `(process, track, name)`, for tests.
    pub fn span(&self, process: &str, track: &str, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| {
            (s.process.as_str(), s.track.as_str(), s.name.as_str()) == (process, track, name)
        })
    }

    /// Counter series lookup by `(process, track, name)`, for tests.
    pub fn counter(&self, process: &str, track: &str, name: &str) -> Option<&CounterStats> {
        self.counters.iter().find(|c| {
            (c.process.as_str(), c.track.as_str(), c.name.as_str()) == (process, track, name)
        })
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip float formatting (deterministic for a fixed
/// binary); non-finite values render as `NaN`/`+Inf`/`-Inf` like the
/// Prometheus text format expects.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Internal span series keyed by raw [`TrackId`] while collecting.
#[derive(Debug, Clone)]
struct SpanSeries {
    track: TrackId,
    name: String,
    cat: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
    histogram: LogHistogram,
}

/// Internal counter series keyed by raw [`TrackId`] while collecting.
#[derive(Debug, Clone)]
struct CounterSeries {
    track: TrackId,
    name: String,
    samples: u64,
    sum: f64,
    min: f64,
    max: f64,
    last_at_ns: u64,
    last: f64,
    ring: DownsampleRing,
}

/// A [`TraceSink`] that folds the event stream into bounded streaming
/// aggregates instead of buffering it: per-`(track, span-name)` duration
/// statistics and per-`(track, counter-name)` [`DownsampleRing`] time
/// series. Memory is bounded by its [`AggConfig`], never by the number
/// of events. Snapshot with [`AggregatingSink::snapshot`].
#[derive(Debug, Clone)]
pub struct AggregatingSink {
    config: AggConfig,
    tracks: Vec<TrackDef>,
    spans: Vec<SpanSeries>,
    counters: Vec<CounterSeries>,
    /// Per-track stack of open `Begin` spans: `(name, cat, at_ns)`.
    open: Vec<Vec<(String, &'static str, u64)>>,
    /// Index of the last span series hit — trace streams repeat the same
    /// series in bursts, so checking it first turns the common-case
    /// lookup into one comparison. Pure cache: series order (and
    /// therefore every observable output) is unchanged.
    last_span: usize,
    /// Index of the last counter series hit (same memo for counters).
    last_counter: usize,
    instants: u64,
    unmatched_ends: u64,
    overflow_events: u64,
    malformed_counters: u64,
}

impl Default for AggregatingSink {
    fn default() -> Self {
        Self::new(AggConfig::default())
    }
}

impl AggregatingSink {
    /// Creates an empty sink with the given memory bounds.
    pub fn new(config: AggConfig) -> Self {
        assert!(config.max_series >= 1, "max_series must be >= 1");
        // Validate the ring parameters once here, not on first sample.
        drop(DownsampleRing::new(
            config.ring_capacity,
            config.ring_bucket_ns,
        ));
        AggregatingSink {
            config,
            tracks: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
            open: Vec::new(),
            last_span: 0,
            last_counter: 0,
            instants: 0,
            unmatched_ends: 0,
            overflow_events: 0,
            malformed_counters: 0,
        }
    }

    /// The sink's memory bounds.
    pub fn config(&self) -> &AggConfig {
        &self.config
    }

    /// Resolves the collected aggregates into a plain-data
    /// [`MetricsBuffer`] (track ids become `(process, track)` names so
    /// buffers from different jobs merge by identity, not by
    /// registration order).
    pub fn snapshot(&self) -> MetricsBuffer {
        let resolve = |track: TrackId| -> (String, String) {
            self.tracks
                .get(track as usize)
                .map(|t| (t.process.clone(), t.track.clone()))
                .unwrap_or_else(|| (String::new(), format!("track{track}")))
        };
        MetricsBuffer {
            spans: self
                .spans
                .iter()
                .map(|s| {
                    let (process, track) = resolve(s.track);
                    SpanStats {
                        process,
                        track,
                        name: s.name.clone(),
                        cat: s.cat.to_owned(),
                        count: s.count,
                        total_ns: s.total_ns,
                        max_ns: s.max_ns,
                        histogram: s.histogram.clone(),
                    }
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|c| {
                    let (process, track) = resolve(c.track);
                    CounterStats {
                        process,
                        track,
                        name: c.name.clone(),
                        samples: c.samples,
                        sum: c.sum,
                        min: c.min,
                        max: c.max,
                        last_at_ns: c.last_at_ns,
                        last: c.last,
                        ring: c.ring.clone(),
                    }
                })
                .collect(),
            instants: self.instants,
            open_spans: self.open.iter().map(|s| s.len() as u64).sum(),
            unmatched_ends: self.unmatched_ends,
            overflow_events: self.overflow_events,
            malformed_counters: self.malformed_counters,
        }
    }

    fn record_span(&mut self, track: TrackId, name: &str, cat: &'static str, dur_ns: u64) {
        let hit = match self.spans.get(self.last_span) {
            Some(s) if s.track == track && s.name == name => Some(self.last_span),
            _ => self
                .spans
                .iter()
                .position(|s| s.track == track && s.name == name),
        };
        if let Some(i) = hit {
            self.last_span = i;
            let s = &mut self.spans[i];
            s.count += 1;
            s.total_ns += dur_ns;
            s.max_ns = s.max_ns.max(dur_ns);
            s.histogram.record(dur_ns as f64);
            return;
        }
        if self.spans.len() >= self.config.max_series {
            self.overflow_events += 1;
            return;
        }
        let mut histogram = duration_histogram();
        histogram.record(dur_ns as f64);
        self.last_span = self.spans.len();
        self.spans.push(SpanSeries {
            track,
            name: name.to_owned(),
            cat,
            count: 1,
            total_ns: dur_ns,
            max_ns: dur_ns,
            histogram,
        });
    }

    fn record_counter(&mut self, track: TrackId, name: &str, at_ns: u64, value: f64) {
        let hit = match self.counters.get(self.last_counter) {
            Some(c) if c.track == track && c.name == name => Some(self.last_counter),
            _ => self
                .counters
                .iter()
                .position(|c| c.track == track && c.name == name),
        };
        if let Some(i) = hit {
            self.last_counter = i;
            let c = &mut self.counters[i];
            c.samples += 1;
            c.sum += value;
            c.min = c.min.min(value);
            c.max = c.max.max(value);
            if at_ns >= c.last_at_ns {
                c.last_at_ns = at_ns;
                c.last = value;
            }
            c.ring.record(at_ns, value);
            return;
        }
        if self.counters.len() >= self.config.max_series {
            self.overflow_events += 1;
            return;
        }
        let mut ring = DownsampleRing::new(self.config.ring_capacity, self.config.ring_bucket_ns);
        ring.record(at_ns, value);
        self.last_counter = self.counters.len();
        self.counters.push(CounterSeries {
            track,
            name: name.to_owned(),
            samples: 1,
            sum: value,
            min: value,
            max: value,
            last_at_ns: at_ns,
            last: value,
            ring,
        });
    }
}

impl TraceSink for AggregatingSink {
    fn register_track(&mut self, process: &str, track: &str) -> TrackId {
        // Identical dedupe rule (and therefore identical id assignment)
        // to ChromeTraceSink, so a TeeSink can feed both from one
        // registration call.
        if let Some(i) = self
            .tracks
            .iter()
            .position(|t| t.process == process && t.track == track)
        {
            return i as TrackId;
        }
        let id = self.tracks.len() as TrackId;
        self.tracks.push(TrackDef {
            process: process.to_string(),
            track: track.to_string(),
        });
        self.open.push(Vec::new());
        id
    }

    fn event(&mut self, record: TraceRecord) {
        let track = record.track as usize;
        match record.phase {
            TracePhase::Begin => {
                while self.open.len() <= track {
                    self.open.push(Vec::new());
                }
                self.open[track].push((record.name, record.cat, record.at_ns));
            }
            TracePhase::End => match self.open.get_mut(track).and_then(Vec::pop) {
                Some((name, cat, begin_ns)) => {
                    let dur_ns = record.at_ns.saturating_sub(begin_ns);
                    self.record_span(record.track, &name, cat, dur_ns);
                }
                None => self.unmatched_ends += 1,
            },
            TracePhase::Complete => {
                self.record_span(record.track, &record.name, record.cat, record.dur_ns);
            }
            TracePhase::Counter => {
                let value = record.args.iter().find_map(|(k, v)| {
                    (*k == "value").then(|| match v {
                        ArgValue::F64(x) => Some(*x),
                        ArgValue::U64(x) => Some(*x as f64),
                        ArgValue::I64(x) => Some(*x as f64),
                        ArgValue::Str(_) => None,
                    })?
                });
                match value {
                    Some(v) if v.is_finite() => {
                        self.record_counter(record.track, &record.name, record.at_ns, v);
                    }
                    _ => self.malformed_counters += 1,
                }
            }
            TracePhase::Instant => self.instants += 1,
        }
    }
}

/// Deterministic head-sampling for sweeps: picks the `k` jobs whose
/// seed-derived draw `mix(mix(master_seed, tag), seed)` is smallest
/// (ties break toward the lower job index) and returns one flag per
/// job. A pure function of `(master_seed, seeds, k)` — the sampled set
/// is identical across reruns and worker-thread counts, and adding jobs
/// to the end of a sweep never changes which earlier jobs with winning
/// draws are sampled.
pub fn head_sample(master_seed: u64, seeds: &[u64], k: usize) -> Vec<bool> {
    let mut keyed: Vec<(u64, usize)> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| (mix(mix(master_seed, SAMPLE_TAG), s), i))
        .collect();
    keyed.sort_unstable();
    let mut out = vec![false; seeds.len()];
    for &(_, i) in keyed.iter().take(k) {
        out[i] = true;
    }
    out
}

/// Runs `f` under the sink combination selected by `chrome` /
/// `metrics` and returns what each sink collected: the full-detail
/// Chrome buffer for sampled jobs, the bounded aggregate for metered
/// ones, both through one [`TeeSink`] when a job is both. The sweep
/// binaries and the runner share this so the four combinations live in
/// one place.
pub fn with_observers<R>(
    chrome: bool,
    metrics: bool,
    f: impl FnOnce(Tracer) -> R,
) -> (R, Option<TraceBuffer>, Option<MetricsBuffer>) {
    match (chrome, metrics) {
        (true, true) => {
            let sink = Rc::new(RefCell::new(TeeSink {
                first: ChromeTraceSink::new(),
                second: AggregatingSink::default(),
            }));
            let out = f(Tracer::with_sink(Rc::clone(&sink)));
            let sink = sink.borrow();
            (
                out,
                Some(sink.first.snapshot()),
                Some(sink.second.snapshot()),
            )
        }
        (true, false) => {
            let sink = Rc::new(RefCell::new(ChromeTraceSink::new()));
            let out = f(Tracer::with_sink(Rc::clone(&sink)));
            let buffer = sink.borrow().snapshot();
            (out, Some(buffer), None)
        }
        (false, true) => {
            let sink = Rc::new(RefCell::new(AggregatingSink::default()));
            let out = f(Tracer::with_sink(Rc::clone(&sink)));
            let buffer = sink.borrow().snapshot();
            (out, None, Some(buffer))
        }
        (false, false) => (f(Tracer::disabled()), None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use crate::{SimDuration, SimTime};

    fn t(ms: f64) -> SimTime {
        SimTime::from_secs_f64(ms / 1e3)
    }

    #[test]
    fn ring_capacity_never_grows_and_resolution_halves() {
        // The acceptance bound: feed samples far past the configured
        // window and assert the backing allocation never exceeds the
        // configured capacity while the width doubles as needed.
        let mut ring = DownsampleRing::new(8, 1_000);
        for i in 0..10_000u64 {
            ring.record(i * 937, i as f64);
            assert!(ring.len() <= ring.capacity(), "ring grew past capacity");
            assert!(
                ring.buckets().len() <= 8,
                "backing allocation exceeded configuration"
            );
        }
        // 10_000 × 937 ns ≈ 9.37 ms needs ~1172 initial buckets; with 8
        // buckets the width must have doubled to ≥ 2^8 × initial.
        assert!(ring.bucket_ns() >= 1_000 * 128, "width never doubled");
        assert!(ring.bucket_ns().is_power_of_two() || ring.bucket_ns() % 1_000 == 0);
        // No samples were lost to the downsampling.
        let total: u64 = ring.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 10_000);
        let sum: f64 = ring.buckets().iter().map(|b| b.sum).sum();
        assert_eq!(sum, (0..10_000u64).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn ring_merge_equals_single_recording() {
        // Two rings fed disjoint halves of one sample stream merge to
        // exactly the ring that recorded the whole stream.
        let samples: Vec<(u64, f64)> = (0..5_000u64).map(|i| (i * 613, (i % 97) as f64)).collect();
        let mut whole = DownsampleRing::new(16, 1_000);
        let mut a = DownsampleRing::new(16, 1_000);
        let mut b = DownsampleRing::new(16, 1_000);
        for (i, &(at, v)) in samples.iter().enumerate() {
            whole.record(at, v);
            if i % 2 == 0 {
                a.record(at, v);
            } else {
                b.record(at, v);
            }
        }
        a.merge(&b);
        assert_eq!(a.bucket_ns(), whole.bucket_ns());
        assert_eq!(a.buckets().len(), whole.buckets().len());
        for (x, y) in a.buckets().iter().zip(whole.buckets()) {
            assert_eq!(x.count, y.count);
            assert_eq!(x.min, y.min);
            assert_eq!(x.max, y.max);
            assert!((x.sum - y.sum).abs() < 1e-9 * (1.0 + y.sum.abs()));
        }
    }

    #[test]
    fn sink_folds_begin_end_and_complete_spans() {
        let sink = Rc::new(RefCell::new(AggregatingSink::default()));
        let tracer = Tracer::with_sink(Rc::clone(&sink));
        let cpu = tracer.register_track("soc", "CPU slot0");
        tracer.begin(t(1.0), cpu, "soc", "job", &[]);
        tracer.end(t(3.5), cpu, "soc");
        tracer.complete(
            t(4.0),
            SimDuration::from_millis_f64(0.5),
            cpu,
            "soc",
            "job",
            &[],
        );
        tracer.counter(t(4.0), cpu, "soc", "queue", 3.0);
        tracer.counter(t(5.0), cpu, "soc", "queue", 5.0);
        let snap = sink.borrow().snapshot();
        let job = snap.span("soc", "CPU slot0", "job").expect("series exists");
        assert_eq!(job.count, 2);
        assert_eq!(job.total_ns, 2_500_000 + 500_000);
        assert_eq!(job.max_ns, 2_500_000);
        assert_eq!(job.histogram.total(), 2);
        let q = snap.counter("soc", "CPU slot0", "queue").expect("series");
        assert_eq!(q.samples, 2);
        assert_eq!(q.sum, 8.0);
        assert_eq!((q.min, q.max, q.last), (3.0, 5.0, 5.0));
        assert_eq!(snap.open_spans, 0);
        assert_eq!(snap.unmatched_ends, 0);
    }

    #[test]
    fn sink_counts_unbalanced_spans_instead_of_guessing() {
        let sink = Rc::new(RefCell::new(AggregatingSink::default()));
        let tracer = Tracer::with_sink(Rc::clone(&sink));
        let a = tracer.register_track("p", "t");
        tracer.end(t(1.0), a, "soc");
        tracer.begin(t(2.0), a, "soc", "dangling", &[]);
        let snap = sink.borrow().snapshot();
        assert_eq!(snap.unmatched_ends, 1);
        assert_eq!(snap.open_spans, 1);
        assert!(snap.span("p", "t", "dangling").is_none());
    }

    #[test]
    fn series_cap_bounds_memory_and_counts_overflow() {
        let sink = Rc::new(RefCell::new(AggregatingSink::new(AggConfig {
            max_series: 2,
            ..AggConfig::default()
        })));
        let tracer = Tracer::with_sink(Rc::clone(&sink));
        let a = tracer.register_track("p", "t");
        for i in 0..5 {
            tracer.complete(
                t(1.0),
                SimDuration::from_millis_f64(1.0),
                a,
                "soc",
                &format!("span{i}"),
                &[],
            );
        }
        let snap = sink.borrow().snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.overflow_events, 3);
    }

    #[test]
    fn merge_matches_series_by_name_across_jobs() {
        // Two jobs with the same track names but different registration
        // orders must merge by identity.
        let make = |first: &str, second: &str, n_first: u64| {
            let sink = Rc::new(RefCell::new(AggregatingSink::default()));
            let tracer = Tracer::with_sink(Rc::clone(&sink));
            let x = tracer.register_track("edgelink", first);
            let y = tracer.register_track("edgelink", second);
            for _ in 0..n_first {
                tracer.complete(
                    t(1.0),
                    SimDuration::from_millis_f64(1.0),
                    x,
                    "edgelink",
                    "serve",
                    &[],
                );
            }
            tracer.complete(
                t(2.0),
                SimDuration::from_millis_f64(2.0),
                y,
                "edgelink",
                "serve",
                &[],
            );
            let s = sink.borrow().snapshot();
            s
        };
        let mut a = make("server0", "server1", 3);
        let b = make("server1", "server0", 5);
        a.merge(&b);
        assert_eq!(a.span("edgelink", "server0", "serve").unwrap().count, 3 + 1);
        assert_eq!(a.span("edgelink", "server1", "serve").unwrap().count, 1 + 5);
    }

    #[test]
    fn render_is_deterministic_and_carries_quantiles() {
        let sink = Rc::new(RefCell::new(AggregatingSink::default()));
        let tracer = Tracer::with_sink(Rc::clone(&sink));
        let a = tracer.register_track("soc", "CPU");
        for i in 1..=100u64 {
            tracer.complete(
                t(i as f64),
                SimDuration::from_millis_f64(i as f64 / 10.0),
                a,
                "soc",
                "job",
                &[],
            );
            tracer.counter(t(i as f64), a, "soc", "queue", (i % 7) as f64);
        }
        let snap = sink.borrow().snapshot();
        let one = snap.render_prometheus();
        let two = snap.render_prometheus();
        assert_eq!(one, two);
        assert!(one.contains("# TYPE mar_span_count counter\n"));
        assert!(one.contains(
            "mar_span_count{process=\"soc\",track=\"CPU\",name=\"job\",cat=\"soc\"} 100\n"
        ));
        assert!(one.contains("quantile=\"0.95\""));
        assert!(
            one.contains("mar_counter_samples{process=\"soc\",track=\"CPU\",name=\"queue\"} 100\n")
        );
        // Label escaping is applied.
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn head_sample_is_deterministic_and_exact_k() {
        let seeds: Vec<u64> = (0..50).map(|i| mix(99, i)).collect();
        let a = head_sample(7, &seeds, 5);
        let b = head_sample(7, &seeds, 5);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x).count(), 5);
        // A different master seed picks a different set (overwhelmingly).
        let c = head_sample(8, &seeds, 5);
        assert_ne!(a, c);
        // k larger than the population samples everything.
        assert!(head_sample(7, &seeds, 100).iter().all(|&x| x));
        // Extending the job list keeps earlier winners' draws intact:
        // every sampled job of the short list whose draw beats the new
        // jobs' draws stays sampled.
        let extended: Vec<u64> = seeds
            .iter()
            .copied()
            .chain((50..60).map(|i| mix(99, i)))
            .collect();
        let d = head_sample(7, &extended, 5);
        assert_eq!(d.len(), 60);
        assert_eq!(d.iter().filter(|&&x| x).count(), 5);
    }

    #[test]
    fn tee_feeds_chrome_and_aggregate_identically() {
        let ((), chrome, agg) = with_observers(true, true, |tracer| {
            let a = tracer.register_track("soc", "CPU");
            tracer.begin(t(1.0), a, "soc", "job", &[]);
            tracer.end(t(2.0), a, "soc");
            tracer.counter(t(2.0), a, "soc", "queue", 1.0);
        });
        let chrome = chrome.expect("chrome buffer");
        let agg = agg.expect("metrics buffer");
        assert_eq!(chrome.records.len(), 3);
        assert_eq!(chrome.tracks.len(), 1);
        assert_eq!(agg.span("soc", "CPU", "job").unwrap().count, 1);
        assert_eq!(agg.counter("soc", "CPU", "queue").unwrap().samples, 1);
        // Other combinations produce exactly the requested buffers.
        let ((), c2, a2) = with_observers(false, true, |tr| {
            assert!(tr.is_enabled());
        });
        assert!(c2.is_none() && a2.is_some());
        let ((), c3, a3) = with_observers(false, false, |tr| {
            assert!(!tr.is_enabled());
        });
        assert!(c3.is_none() && a3.is_none());
    }
}
