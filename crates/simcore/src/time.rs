//! Simulated time types.
//!
//! Simulated time is kept as an integer number of nanoseconds so that it is
//! totally ordered, hashable, and safe to use as a heap key. All arithmetic
//! saturates rather than wrapping: a simulation that runs "past the end of
//! time" pins at [`SimTime::MAX`] instead of silently jumping backwards.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds per second.
const NANOS_PER_SEC: f64 = 1e9;
/// Number of nanoseconds per millisecond.
const NANOS_PER_MILLI: f64 = 1e6;
/// Number of nanoseconds per microsecond.
const NANOS_PER_MICRO: f64 = 1e3;

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * NANOS_PER_SEC).round() as u64)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "invalid time: {millis}"
        );
        SimTime((millis * NANOS_PER_MILLI).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Milliseconds since simulation start, as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * NANOS_PER_SEC).round() as u64)
    }

    /// Creates a duration of `millis` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "invalid duration: {millis}"
        );
        SimDuration((millis * NANOS_PER_MILLI).round() as u64)
    }

    /// Creates a duration of `micros` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros_f64(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "invalid duration: {micros}"
        );
        SimDuration((micros * NANOS_PER_MICRO).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Milliseconds, as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, saturating at the max.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Saturating difference: if `rhs` is later than `self` the result is
    /// zero rather than a panic, which is the behaviour metric code wants.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);

        let d = SimDuration::from_millis_f64(16.7);
        assert!((d.as_millis_f64() - 16.7).abs() < 1e-9);
        let d = SimDuration::from_micros_f64(250.0);
        assert_eq!(d.as_nanos(), 250_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(0.5);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);

        let diff = SimTime::from_secs_f64(2.0) - SimTime::from_secs_f64(0.5);
        assert!((diff.as_secs_f64() - 1.5).abs() < 1e-12);

        // Saturating subtraction never goes negative.
        let diff = SimTime::from_secs_f64(0.5) - SimTime::from_secs_f64(2.0);
        assert_eq!(diff, SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_pins_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs_f64(10.0);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_millis_f64(10.0).mul_f64(2.5);
        assert!((d.as_millis_f64() - 25.0).abs() < 1e-9);
        let d = SimDuration::from_nanos(u64::MAX).mul_f64(3.0);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.0)), "1.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis_f64(2.5)), "2.500ms");
    }
}
