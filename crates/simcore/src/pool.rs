//! A dependency-free scoped worker-thread pool for embarrassingly
//! parallel experiment sweeps.
//!
//! The workspace builds hermetically (no registry crates), so instead of
//! `rayon` this module offers the one primitive the experiment runner
//! needs: [`map`] — apply a function to every element of a slice on `N`
//! worker threads and return the results **in input order**, regardless
//! of how the OS schedules the workers.
//!
//! Design:
//!
//! * workers are spawned with [`std::thread::scope`], so borrowed data
//!   (the input slice, the closure) needs no `'static` bound and no
//!   reference counting;
//! * work is handed out through a chunked atomic cursor — each worker
//!   claims the next `chunk` indices with one `fetch_add`, which keeps
//!   contention negligible even for sub-millisecond jobs;
//! * every result is tagged with its input index and the output is
//!   reassembled by index, so `map(n, items, f)` is bit-identical to the
//!   serial `items.iter().map(f)` for any thread count.
//!
//! Determinism therefore only requires that `f` itself is a pure function
//! of `(index, item)` — exactly the contract the experiment runner
//! enforces by deriving every job's RNG stream from `(master_seed,
//! job_index)`.
//!
//! # Example
//!
//! ```
//! use simcore::pool;
//!
//! let squares = pool::map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available, falling back to 1 when the
/// platform cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` on up to `threads` scoped
/// worker threads, returning results in input order (chunk size 1).
///
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// calling thread — the parallel and serial paths produce bit-identical
/// output, so callers can treat the thread count as a pure performance
/// knob.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_chunked(threads, 1, items, f)
}

/// Like [`map`], but workers claim `chunk` consecutive indices per queue
/// operation — use a larger chunk when individual jobs are tiny.
///
/// # Panics
///
/// Propagates the first panic raised inside `f` (after all workers have
/// stopped), like [`std::thread::scope`].
pub fn map_chunked<T, R, F>(threads: usize, chunk: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk = chunk.max(1);
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    // More workers than chunks would only spawn threads that immediately
    // exit; cap at the number of chunks.
    let workers = threads.min(items.len().div_ceil(chunk));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for i in start..end {
                        local.push((i, f(i, &items[i])));
                    }
                }
                // One lock per worker lifetime, not per job.
                results
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .append(&mut local);
            });
        }
    });
    let mut tagged = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    assert_eq!(tagged.len(), items.len(), "worker lost results");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = map(1, &items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 4, 8, 64] {
            let parallel = map(threads, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_matches_serial() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for chunk in [1, 3, 7, 100, 1000] {
            assert_eq!(
                map_chunked(4, chunk, &items, |_, &x| x + 1),
                serial,
                "chunk = {chunk}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(map(4, &empty, |_, &x: &u64| x).is_empty());
        assert_eq!(map(4, &[7u64], |_, &x| x * 2), vec![14]);
    }

    #[test]
    fn zero_threads_behaves_as_one() {
        assert_eq!(map(0, &[1u64, 2, 3], |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn results_keep_input_order_under_skewed_job_times() {
        // Early indices sleep longest, so a naive completion-order
        // collection would reverse them.
        let items: Vec<u64> = (0..16).collect();
        let out = map(4, &items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_micros(
                (items.len() - i) as u64 * 50,
            ));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map(2, &[1u64, 2, 3, 4], |_, &x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err(), "panic inside a worker must propagate");
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
