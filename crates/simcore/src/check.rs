//! `simcore::check` — a small, fully in-tree property-testing framework.
//!
//! Replaces the external `proptest` dependency in this hermetically built
//! workspace. The pieces:
//!
//! * [`Strategy`] — generates random values and proposes shrunk
//!   candidates (integer, float, vec, and tuple strategies are built in).
//! * [`check`] / [`check_with`] — run a property over many seeded cases
//!   (256 by default), greedily shrink the first counterexample, and
//!   panic with a replayable seed.
//! * [`prop_assert!`](crate::prop_assert) /
//!   [`prop_assert_eq!`](crate::prop_assert_eq) — assertion macros that
//!   report failures as `Err(String)` so the shrinker can re-run the
//!   property silently.
//!
//! Every case derives its own seed from `(master seed, case index)`, so a
//! failure report names one `u64` that replays the exact input:
//! `SIMCORE_CHECK_SEED=<seed> cargo test -p <crate> <test>`. The case
//! count can be raised globally with `SIMCORE_CHECK_CASES`.
//!
//! # Example
//!
//! ```
//! use simcore::check::{self, Strategy};
//! use simcore::prop_assert;
//!
//! // Reversing a vec twice is the identity.
//! check::check(
//!     "double_reverse",
//!     check::vec(check::u64s(0..100), 0..16),
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert!(w == *v, "{w:?} != {v:?}");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::ops::{Bound, RangeBounds};

use crate::rand::{splitmix64, Rng, SeedableRng, StdRng};

/// Asserts a condition inside a [`check`] property, reporting failure as
/// `Err(String)` instead of panicking (so shrinking can re-run the
/// property without unwinding).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`check`] property; see
/// [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// A generator of random test inputs that can also propose simpler
/// variants of a failing input.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug;

    /// Draws one input from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "simpler" candidates for `value` (may be empty).
    /// Candidates need not fail the property; the runner filters.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Runner configuration. Usually obtained from [`Config::default`], which
/// honors the `SIMCORE_CHECK_CASES` and `SIMCORE_CHECK_SEED` environment
/// variables.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (default 256).
    pub cases: u32,
    /// Master seed from which per-case seeds derive.
    pub master_seed: u64,
    /// Single case seed to replay instead of the full sweep.
    pub replay_seed: Option<u64>,
    /// Cap on property re-evaluations spent shrinking one failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("SIMCORE_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let replay_seed = std::env::var("SIMCORE_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok());
        Config {
            cases,
            master_seed: 0x4842_4f5f_4348_4b31, // "HBO_CHK1"
            replay_seed,
            max_shrink_steps: 512,
        }
    }
}

/// Runs `prop` over randomly generated inputs with the default
/// [`Config`]; panics with a replayable report on the first failure.
pub fn check<S, P>(name: &str, strategy: S, prop: P)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    check_with(&Config::default(), name, strategy, prop)
}

/// [`check`] with an explicit configuration.
pub fn check_with<S, P>(config: &Config, name: &str, strategy: S, prop: P)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    if let Some(seed) = config.replay_seed {
        run_case(config, name, &strategy, &prop, seed, 0);
        return;
    }
    for case in 0..config.cases {
        let case_seed = splitmix64(config.master_seed ^ splitmix64(case as u64));
        run_case(config, name, &strategy, &prop, case_seed, case);
    }
}

/// Replays one derived seed against the property; panics on failure.
fn run_case<S, P>(config: &Config, name: &str, strategy: &S, prop: &P, case_seed: u64, case: u32)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let value = strategy.generate(&mut rng);
    if let Err(error) = prop(&value) {
        let (shrunk, shrunk_error, steps) = shrink_failure(
            strategy,
            prop,
            value.clone(),
            error.clone(),
            config.max_shrink_steps,
        );
        panic!(
            "property '{name}' falsified at case {case}\n  \
             replay: SIMCORE_CHECK_SEED={case_seed} cargo test\n  \
             original input: {value:?}\n  \
             original error: {error}\n  \
             shrunk input ({steps} accepted steps): {shrunk:?}\n  \
             shrunk error: {shrunk_error}"
        );
    }
}

/// Greedy shrink loop: repeatedly adopt the first candidate that still
/// fails, until no candidate fails or the evaluation budget runs out.
fn shrink_failure<S, P>(
    strategy: &S,
    prop: &P,
    mut failing: S::Value,
    mut error: String,
    budget: u32,
) -> (S::Value, String, u32)
where
    S: Strategy,
    P: Fn(&S::Value) -> Result<(), String>,
{
    let mut evals = 0;
    let mut accepted = 0;
    'outer: loop {
        for candidate in strategy.shrink(&failing) {
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if let Err(e) = prop(&candidate) {
                failing = candidate;
                error = e;
                accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    (failing, error, accepted)
}

// ---------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------

fn f64_bounds(range: impl RangeBounds<f64>) -> (f64, f64, bool) {
    let lo = match range.start_bound() {
        Bound::Included(&v) | Bound::Excluded(&v) => v,
        Bound::Unbounded => f64::MIN,
    };
    let (hi, inclusive) = match range.end_bound() {
        Bound::Included(&v) => (v, true),
        Bound::Excluded(&v) => (v, false),
        Bound::Unbounded => (f64::MAX, true),
    };
    (lo, hi, inclusive)
}

/// Uniform `f64` strategy over a range; shrinks toward the lower bound.
#[derive(Debug, Clone)]
pub struct F64Strategy {
    lo: f64,
    hi: f64,
    inclusive: bool,
}

/// Uniform `f64`s drawn from `range` (half-open or inclusive).
pub fn f64s(range: impl RangeBounds<f64>) -> F64Strategy {
    let (lo, hi, inclusive) = f64_bounds(range);
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "bad f64 range [{lo}, {hi}]"
    );
    F64Strategy { lo, hi, inclusive }
}

impl Strategy for F64Strategy {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else if self.inclusive {
            rng.gen_range(self.lo..=self.hi)
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        // Toward the lower bound: the bound itself, then the midpoint.
        if v != self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid != v && mid != self.lo {
                out.push(mid);
            }
            // A "rounder" value often reads better in reports.
            let rounded = v.round();
            if rounded != v && rounded > self.lo && rounded < v {
                out.push(rounded);
            }
        }
        out
    }
}

fn u64_bounds(range: impl RangeBounds<u64>) -> (u64, u64) {
    let lo = match range.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v + 1,
        Bound::Unbounded => 0,
    };
    let hi = match range.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.checked_sub(1).expect("empty u64 range"),
        Bound::Unbounded => u64::MAX,
    };
    (lo, hi)
}

/// Uniform `u64` strategy over an inclusive-normalized range; shrinks
/// toward the lower bound.
#[derive(Debug, Clone)]
pub struct U64Strategy {
    lo: u64,
    hi: u64,
}

/// Uniform `u64`s drawn from `range`.
pub fn u64s(range: impl RangeBounds<u64>) -> U64Strategy {
    let (lo, hi) = u64_bounds(range);
    assert!(lo <= hi, "bad u64 range [{lo}, {hi}]");
    U64Strategy { lo, hi }
}

impl Strategy for U64Strategy {
    type Value = u64;

    fn generate(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != v && mid != self.lo {
                out.push(mid);
            }
            out.push(v - 1);
        }
        out.dedup();
        out
    }
}

/// Uniform `usize` strategy; shrinks toward the lower bound.
#[derive(Debug, Clone)]
pub struct UsizeStrategy {
    inner: U64Strategy,
}

/// Uniform `usize`s drawn from `range`.
pub fn usizes(range: impl RangeBounds<usize>) -> UsizeStrategy {
    let lo = match range.start_bound() {
        Bound::Included(&v) => v as u64,
        Bound::Excluded(&v) => v as u64 + 1,
        Bound::Unbounded => 0,
    };
    let hi = match range.end_bound() {
        Bound::Included(&v) => v as u64,
        Bound::Excluded(&v) => (v as u64).checked_sub(1).expect("empty usize range"),
        Bound::Unbounded => usize::MAX as u64,
    };
    assert!(lo <= hi, "bad usize range [{lo}, {hi}]");
    UsizeStrategy {
        inner: U64Strategy { lo, hi },
    }
}

impl Strategy for UsizeStrategy {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        self.inner.generate(rng) as usize
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        self.inner
            .shrink(&(*value as u64))
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

/// Vec strategy: random length from a range, elements from an inner
/// strategy. Shrinks by truncating, removing single elements, and
/// shrinking individual elements.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

/// Vecs of `element` values with a length drawn from `len` (half-open or
/// inclusive; a degenerate range like `4..=4` pins the length).
pub fn vec<S: Strategy>(element: S, len: impl RangeBounds<usize>) -> VecStrategy<S> {
    let min_len = match len.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v + 1,
        Bound::Unbounded => 0,
    };
    let max_len = match len.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.checked_sub(1).expect("empty length range"),
        Bound::Unbounded => 64,
    };
    assert!(
        min_len <= max_len,
        "bad length range [{min_len}, {max_len}]"
    );
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: shorter inputs localize bugs fastest.
        if len > self.min_len {
            let half = (len / 2).max(self.min_len);
            if half < len {
                out.push(value[..half].to_vec());
            }
            for i in 0..len.min(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Then element-wise shrinks (bounded fan-out).
        for i in 0..len.min(8) {
            for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx).into_iter().take(3) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut config = Config::default();
        config.cases = 300;
        config.replay_seed = None;
        let seen = std::cell::Cell::new(0u32);
        check_with(&config, "counts_cases", f64s(0.0..1.0), |x| {
            seen.set(seen.get() + 1);
            prop_assert!((0.0..1.0).contains(x));
            Ok(())
        });
        assert_eq!(seen.get(), 300);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = vec(f64s(0.0..1.0), 1..10);
        let a = s.generate(&mut StdRng::seed_from_u64(99));
        let b = s.generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn failure_panics_with_replay_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            let mut config = Config::default();
            config.replay_seed = None;
            check_with(&config, "gt_ten_fails", u64s(0..1000), |&x| {
                prop_assert!(x < 10, "{x} >= 10");
                Ok(())
            });
        });
        let msg = *result
            .expect_err("property should fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("SIMCORE_CHECK_SEED="), "{msg}");
        assert!(msg.contains("falsified"), "{msg}");
        // Greedy shrink must reach the boundary counterexample.
        assert!(
            msg.contains("shrunk input") && msg.contains(": 10"),
            "{msg}"
        );
    }

    #[test]
    fn vec_shrink_reaches_minimal_failing_length() {
        // Property: "no vec of length >= 3 exists" — minimal
        // counterexample is any length-3 vec; shrinking must reach len 3.
        let result = std::panic::catch_unwind(|| {
            let mut config = Config::default();
            config.replay_seed = None;
            check_with(&config, "len3", vec(u64s(0..5), 0..32), |v| {
                prop_assert!(v.len() < 3, "len {}", v.len());
                Ok(())
            });
        });
        let msg = *result
            .expect_err("should fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("len 3"), "{msg}");
    }

    #[test]
    fn float_shrink_moves_toward_lower_bound() {
        let s = f64s(1.0..4.0);
        let cands = s.shrink(&3.0);
        assert!(cands.contains(&1.0));
        assert!(cands.iter().all(|&c| (1.0..3.0).contains(&c)), "{cands:?}");
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let s = (u64s(0..10), u64s(0..10));
        for (a, b) in s.shrink(&(5, 7)) {
            assert!((a, b) != (5, 7));
            assert!(a == 5 || b == 7, "both moved: ({a}, {b})");
        }
    }

    #[test]
    fn replay_seed_runs_exactly_one_case() {
        let mut config = Config::default();
        config.replay_seed = Some(1234);
        let seen = std::cell::Cell::new(0u32);
        check_with(&config, "replay", u64s(0..100), |_| {
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 1);
    }

    #[test]
    fn degenerate_ranges_are_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(f64s(0.5..=0.5).generate(&mut rng), 0.5);
        assert_eq!(
            vec(u64s(3..=3), 4..=4).generate(&mut rng),
            std::vec![3, 3, 3, 3]
        );
    }
}
