//! Calendar queue: a bucketed time wheel with an overflow list and
//! automatic resize (Brown, CACM 1988), as the alternative future-event
//! list behind [`FutureEventList`].
//!
//! # Shape
//!
//! Time is quantized into buckets of `2^width_log2` nanoseconds; an
//! entry at time `t` has *virtual bucket* `vb = t >> width_log2` and
//! lives in slot `vb & (nbuckets - 1)` (the bucket count is a power of
//! two). A *hand* `cur_vb` tracks the virtual bucket of the last pop;
//! entries whose `vb` lies within one wheel revolution of the hand
//! (`vb < cur_vb + nbuckets`) go on the wheel, everything farther goes
//! to an unsorted overflow list whose minimum is cached so peeks stay
//! O(1) against it.
//!
//! # Resize policy
//!
//! The wheel grows (doubling, capped at 2^20 buckets) when the
//! population exceeds twice the bucket count and shrinks (halving, floor
//! 16) when it falls below a quarter of it. Each rebuild re-derives the
//! bucket width from the median inter-event gap of a bounded sample of
//! pending entries, aiming for roughly one entry per bucket — this is
//! what makes schedule/pop amortized O(1) when the event population's
//! spacing is reasonably stationary.
//!
//! # Determinism
//!
//! Pop order is exactly `(time, seq)` — identical to
//! [`EventQueue`](crate::EventQueue), pinned by `tests/differential.rs`.
//! Nothing here consults wall-clock time or randomness; bucket sizing
//! only changes *where* entries wait, never the order they leave.

use std::cell::Cell;

use crate::queue::FutureEventList;
use crate::time::SimTime;

/// Minimum (and initial) bucket count.
const MIN_BUCKETS: usize = 16;
/// Bucket-count cap: 2^20 buckets ≈ 8 MiB of empty `Vec` headers, far
/// beyond any event population the simulators reach.
const MAX_BUCKETS: usize = 1 << 20;
/// At most this many entries are sampled to estimate the bucket width.
const WIDTH_SAMPLE: usize = 64;
/// Initial bucket width: 2^16 ns ≈ 65.5 µs, in the right decade for the
/// per-frame event spacing of the MAR workloads; rebuilds re-measure.
const INITIAL_WIDTH_LOG2: u32 = 16;

struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

/// Where the cached minimum entry physically lives. Indices stay valid
/// between mutations because inserts only append and the cache is
/// invalidated on every pop, rebuild, and clear.
#[derive(Clone, Copy, Debug)]
enum Loc {
    Bucket { slot: u32, idx: u32 },
    Overflow { idx: u32 },
}

#[derive(Clone, Copy, Debug)]
struct CachedMin {
    time: u64,
    seq: u64,
    loc: Loc,
}

/// Calendar-queue future-event list. See the module docs for the
/// algorithm; see [`FutureEventList`] for the contract it shares with
/// [`EventQueue`](crate::EventQueue).
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Entries beyond the current wheel horizon, unsorted.
    overflow: Vec<Entry<E>>,
    /// `(time, seq, index)` of the overflow minimum, kept exact so the
    /// rotation scan never has to walk the overflow list on peek.
    overflow_min: Option<(u64, u64, u32)>,
    width_log2: u32,
    /// Virtual bucket of the hand: no pending entry precedes it.
    cur_vb: u64,
    len: usize,
    next_seq: u64,
    /// Minimum found by the last peek, reused by the following pop so
    /// `peek_time` + `pop` (the `run_until` pattern) scans once, not
    /// twice. `Cell` keeps `peek_time(&self)` zero-cost to cache; the
    /// type stays `Send`, which is all the thread-pool runners need.
    cached_min: Cell<Option<CachedMin>>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the initial bucket count and width.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_min: None,
            width_log2: INITIAL_WIDTH_LOG2,
            cur_vb: 0,
            len: 0,
            next_seq: 0,
            cached_min: Cell::new(None),
        }
    }

    /// Current bucket count (test/diagnostic hook for resize behavior).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of entries currently parked on the overflow list
    /// (test/diagnostic hook).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Schedules `event` at `time` with the next sequence number.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_nanos();
        let vb = t >> self.width_log2;
        if self.len == 0 {
            // Empty wheel: park the hand at the new entry so the window
            // starts where the action is.
            self.cur_vb = vb;
        } else if vb < self.cur_vb {
            // An entry before the hand (e.g. scheduled from outside any
            // handler, or a test driving arbitrary times). Move the hand
            // back; entries already on the wheel beyond the (now
            // shrunken) window are still found, because the rotation
            // scan falls back to a full-wheel scan and any such entry is
            // strictly later than every in-window one.
            self.cur_vb = vb;
        }
        let loc = self.place(Entry {
            time: t,
            seq,
            event,
        });
        if let Some(c) = self.cached_min.get() {
            if (t, seq) < (c.time, c.seq) {
                self.cached_min.set(Some(CachedMin { time: t, seq, loc }));
            }
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Removes and returns the earliest `(time, seq, event)` entry.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        let min = self
            .cached_min
            .take()
            .or_else(|| self.find_min())
            .expect("non-empty queue must have a minimum");
        let entry = match min.loc {
            Loc::Bucket { slot, idx } => self.buckets[slot as usize].swap_remove(idx as usize),
            Loc::Overflow { idx } => self.overflow.swap_remove(idx as usize),
        };
        debug_assert_eq!((entry.time, entry.seq), (min.time, min.seq));
        self.len -= 1;
        self.cur_vb = entry.time >> self.width_log2;
        if matches!(min.loc, Loc::Overflow { .. }) {
            // The hand jumped to an overflow entry: entries that were
            // beyond the old horizon may be in-window now. Migrate them
            // and refresh the cached overflow minimum (swap_remove also
            // invalidated its index).
            self.migrate_overflow();
        }
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        Some((SimTime::from_nanos(entry.time), entry.seq, entry.event))
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// The firing time of the earliest pending event, if any. Caches the
    /// scan result for the pop that typically follows.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(c) = self.cached_min.get() {
            return Some(SimTime::from_nanos(c.time));
        }
        let min = self
            .find_min()
            .expect("non-empty queue must have a minimum");
        self.cached_min.set(Some(min));
        Some(SimTime::from_nanos(min.time))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending entries. Like
    /// [`EventQueue::clear`](crate::EventQueue::clear), the sequence
    /// counter is deliberately preserved.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.overflow_min = None;
        self.len = 0;
        self.cached_min.set(None);
    }

    /// The sequence number the next scheduled event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// First virtual bucket past the wheel window.
    fn horizon(&self) -> u64 {
        self.cur_vb.saturating_add(self.buckets.len() as u64)
    }

    /// Files an entry on the wheel or the overflow list according to the
    /// current hand/window, maintaining `overflow_min` and `len`. Does
    /// not touch the hand, the cache, or trigger resize — callers own
    /// those.
    fn place(&mut self, e: Entry<E>) -> Loc {
        let vb = e.time >> self.width_log2;
        let loc;
        if vb >= self.horizon() {
            let idx = self.overflow.len() as u32;
            if self
                .overflow_min
                .is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s))
            {
                self.overflow_min = Some((e.time, e.seq, idx));
            }
            loc = Loc::Overflow { idx };
            self.overflow.push(e);
        } else {
            let slot = (vb & (self.buckets.len() as u64 - 1)) as usize;
            loc = Loc::Bucket {
                slot: slot as u32,
                idx: self.buckets[slot].len() as u32,
            };
            self.buckets[slot].push(e);
        }
        self.len += 1;
        loc
    }

    /// Scans for the minimum `(time, seq)` entry. Three sources, in
    /// order of preference:
    ///
    /// 1. Rotation scan: walk virtual buckets from the hand; the first
    ///    one holding an in-window entry bounds the wheel minimum
    ///    (entries in later virtual buckets are strictly later).
    /// 2. Full-wheel fallback: only needed when wheel entries exist but
    ///    all lie beyond the window (possible after the hand moved
    ///    backwards); any such entry is later than any in-window one, so
    ///    this never races case 1.
    /// 3. The cached overflow minimum, compared last.
    fn find_min(&self) -> Option<CachedMin> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let mask = n - 1;
        let mut best: Option<CachedMin> = None;
        for d in 0..n {
            let vb = match self.cur_vb.checked_add(d) {
                Some(vb) => vb,
                None => break,
            };
            let slot = (vb & mask) as usize;
            for (i, e) in self.buckets[slot].iter().enumerate() {
                if e.time >> self.width_log2 == vb
                    && best.is_none_or(|b| (e.time, e.seq) < (b.time, b.seq))
                {
                    best = Some(CachedMin {
                        time: e.time,
                        seq: e.seq,
                        loc: Loc::Bucket {
                            slot: slot as u32,
                            idx: i as u32,
                        },
                    });
                }
            }
            if best.is_some() {
                break;
            }
        }
        if best.is_none() && self.len > self.overflow.len() {
            for (slot, bucket) in self.buckets.iter().enumerate() {
                for (i, e) in bucket.iter().enumerate() {
                    if best.is_none_or(|b| (e.time, e.seq) < (b.time, b.seq)) {
                        best = Some(CachedMin {
                            time: e.time,
                            seq: e.seq,
                            loc: Loc::Bucket {
                                slot: slot as u32,
                                idx: i as u32,
                            },
                        });
                    }
                }
            }
        }
        if let Some((t, s, idx)) = self.overflow_min {
            if best.is_none_or(|b| (t, s) < (b.time, b.seq)) {
                best = Some(CachedMin {
                    time: t,
                    seq: s,
                    loc: Loc::Overflow { idx },
                });
            }
        }
        best
    }

    /// Moves overflow entries that now fall inside the wheel window onto
    /// the wheel and recomputes the cached overflow minimum.
    fn migrate_overflow(&mut self) {
        self.overflow_min = None;
        let horizon = self.horizon();
        let mut i = 0;
        while i < self.overflow.len() {
            let vb = self.overflow[i].time >> self.width_log2;
            if vb < horizon {
                let e = self.overflow.swap_remove(i);
                self.len -= 1; // place() re-counts it
                self.place(e);
            } else {
                let e = &self.overflow[i];
                if self
                    .overflow_min
                    .is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s))
                {
                    self.overflow_min = Some((e.time, e.seq, i as u32));
                }
                i += 1;
            }
        }
    }

    /// Rebuilds the wheel with `new_buckets` buckets and a width
    /// re-derived from the pending population, then refiles every entry.
    fn rebuild(&mut self, new_buckets: usize) {
        let new_buckets = new_buckets.clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.append(&mut self.overflow);
        self.overflow_min = None;
        self.cached_min.set(None);
        if self.buckets.len() < new_buckets {
            self.buckets.resize_with(new_buckets, Vec::new);
        } else {
            self.buckets.truncate(new_buckets);
        }
        if let Some(w) = choose_width_log2(&all) {
            self.width_log2 = w;
        }
        // Park the hand at the earliest pending entry under the new
        // width (min over times; pop order is untouched by where the
        // hand sits, only scan cost is).
        if let Some(min_t) = all.iter().map(|e| e.time).min() {
            self.cur_vb = min_t >> self.width_log2;
        }
        self.len = 0;
        for e in all {
            self.place(e);
        }
    }
}

/// Picks `width_log2` so a bucket spans roughly twice the median
/// inter-event gap of a bounded sample — the classic calendar-queue
/// heuristic for ~O(1) buckets. Returns `None` when the sample has no
/// positive gap (fewer than two distinct times), meaning "keep the
/// current width".
fn choose_width_log2<E>(entries: &[Entry<E>]) -> Option<u32> {
    let mut sample: Vec<u64> = entries.iter().take(WIDTH_SAMPLE).map(|e| e.time).collect();
    sample.sort_unstable();
    let mut gaps: Vec<u64> = sample
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    let target = median.saturating_mul(2).max(1);
    // ceil(log2(target)), clamped so `time >> width_log2` keeps several
    // usable bits (2^40 ns ≈ 18 minutes per bucket at the top end).
    let w = 64 - target.leading_zeros();
    Some(w.min(40))
}

impl<E> FutureEventList<E> for CalendarQueue<E> {
    fn schedule(&mut self, time: SimTime, event: E) {
        CalendarQueue::schedule(self, time, event);
    }

    fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        CalendarQueue::pop_entry(self)
    }

    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn clear(&mut self) {
        CalendarQueue::clear(self);
    }

    fn next_seq(&self) -> u64 {
        CalendarQueue::next_seq(self)
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("pending", &self.len)
            .field("buckets", &self.buckets.len())
            .field("overflow", &self.overflow.len())
            .field("width_log2", &self.width_log2)
            .field("cur_vb", &self.cur_vb)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(q: &mut CalendarQueue<E>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| q.pop_entry().map(|(t, s, _)| (t.as_nanos(), s))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_burst_pops_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.schedule(SimTime::from_nanos(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_outlier_lands_in_overflow_and_still_pops_last() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(u64::MAX / 2), 'z');
        assert_eq!(q.overflow_len(), 0, "first entry parks the hand at itself");
        q.schedule(SimTime::from_nanos(5), 'a');
        // 'z' was re-judged nowhere; it sits on the wheel relative to the
        // old hand, but the moved-back hand makes the full-wheel fallback
        // find 'a' first.
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'z');
        assert!(q.pop().is_none());
    }

    #[test]
    fn growth_resize_triggers_and_preserves_order() {
        let mut q = CalendarQueue::new();
        let n0 = q.bucket_count();
        for i in 0..10_000u64 {
            // Spread: forces both in-window and overflow placements.
            q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
        }
        assert!(
            q.bucket_count() > n0,
            "population 10000 must grow the wheel"
        );
        let popped = drain(&mut q);
        let mut expected = popped.clone();
        expected.sort();
        assert_eq!(popped, expected);
        assert_eq!(popped.len(), 10_000);
    }

    #[test]
    fn shrink_resize_triggers_on_drain() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(i * 1000), i);
        }
        let grown = q.bucket_count();
        for _ in 0..9_990 {
            q.pop();
        }
        assert!(q.bucket_count() < grown, "draining must shrink the wheel");
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = CalendarQueue::new();
        let mut popped = Vec::new();
        for round in 0..50u64 {
            for i in 0..20u64 {
                q.schedule(SimTime::from_nanos(round * 1_000 + (i * 37) % 900), ());
            }
            for _ in 0..10 {
                let (t, s, ()) = q.pop_entry().unwrap();
                popped.push((t.as_nanos(), s));
            }
        }
        while let Some((t, s, ())) = q.pop_entry() {
            popped.push((t.as_nanos(), s));
        }
        assert_eq!(popped.len(), 1000);
        // Each pop's time is >= the previous pop's time *at the moment it
        // happened* only within a drain phase; the global sorted check
        // applies to the final full drain tail instead. Simplest robust
        // check: re-popping everything sorted by (time, seq) must match
        // what a reference sort says for the drain tail.
        let tail = &popped[500..];
        let mut sorted_tail = tail.to_vec();
        sorted_tail.sort();
        assert_eq!(tail, &sorted_tail[..]);
    }

    #[test]
    fn peek_then_pop_agree() {
        let mut q = CalendarQueue::new();
        for i in 0..200u64 {
            q.schedule(SimTime::from_nanos((i * 131) % 5000), i);
        }
        while let Some(t) = q.peek_time() {
            let (pt, _, _) = q.pop_entry().unwrap();
            assert_eq!(t, pt);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn clear_preserves_next_seq() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_nanos(1), 'a');
        q.schedule(SimTime::from_nanos(2), 'b');
        assert_eq!(q.next_seq(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_seq(), 2, "clear must not re-issue seq numbers");
        q.schedule(SimTime::from_nanos(3), 'c');
        let (_, seq, e) = q.pop_entry().unwrap();
        assert_eq!((seq, e), (2, 'c'));
    }

    #[test]
    fn zero_and_max_times() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::MAX, 'm');
        q.schedule(SimTime::ZERO, 'z');
        q.schedule(SimTime::MAX, 'n');
        assert_eq!(q.pop().unwrap().1, 'z');
        assert_eq!(q.pop().unwrap().1, 'm');
        assert_eq!(q.pop().unwrap().1, 'n');
    }
}
